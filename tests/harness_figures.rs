//! End-to-end: the harness regenerates every figure/table at micro scale.

use genbase::figures;
use genbase::harness::{Harness, HarnessConfig};
use genbase_datagen::SizeClass;
use std::time::Duration;

fn micro_harness() -> Harness {
    let cfg = HarnessConfig {
        scale: 0.014, // 70x70 "small"
        sizes: vec![SizeClass::Small],
        cutoff: Duration::from_secs(120),
        r_mem_bytes: u64::MAX,
        node_counts: vec![1, 2],
        ..HarnessConfig::quick()
    };
    Harness::new(cfg).unwrap()
}

#[test]
fn all_figures_and_tables_render() {
    let h = micro_harness();
    let f1 = figures::figure1(&h).unwrap();
    assert_eq!(f1.tables.len(), 5, "one table per query");
    let rendered = f1.render();
    for engine in [
        "Vanilla R",
        "Postgres + Madlib",
        "Postgres + R",
        "Column store + R",
        "Column store + UDFs",
        "SciDB",
        "Hadoop",
    ] {
        assert!(rendered.contains(engine), "figure 1 must list {engine}");
    }
    // Hadoop shows no bar for biclustering/SVD (missing functionality).
    assert!(rendered.contains('-'));

    let f2 = figures::figure2(&h).unwrap();
    assert_eq!(f2.tables.len(), 2);

    let f3 = figures::figure3(&h, SizeClass::Small).unwrap();
    assert_eq!(f3.tables.len(), 5);
    let rendered = f3.render();
    for engine in ["Column store + pbdR", "pbdR", "SciDB"] {
        assert!(rendered.contains(engine), "figure 3 must list {engine}");
    }

    let f4 = figures::figure4(&h, SizeClass::Small).unwrap();
    assert_eq!(f4.tables.len(), 2);

    let f5 = figures::figure5(&h).unwrap();
    assert_eq!(f5.tables.len(), 4, "the four offloadable queries");

    let t1 = figures::table1(&h, SizeClass::Small).unwrap();
    let rendered = t1.render();
    for bench in ["Covariance", "SVD", "Statistics", "Biclustering"] {
        assert!(rendered.contains(bench), "table 1 must list {bench}");
    }
}

#[test]
fn run_matrix_covers_all_cells() {
    let h = micro_harness();
    let engines = genbase::engines::single_node_engines();
    let records = h.run_matrix(&engines, &genbase::Query::ALL).unwrap();
    // 5 queries x 1 size x 7 engines.
    assert_eq!(records.len(), 35);
    let completed = records
        .iter()
        .filter(|r| matches!(r.outcome, genbase::RunOutcome::Completed(_)))
        .count();
    let unsupported = records
        .iter()
        .filter(|r| matches!(r.outcome, genbase::RunOutcome::Unsupported))
        .count();
    // Hadoop misses 2 queries, Madlib misses 1.
    assert_eq!(unsupported, 3);
    assert_eq!(completed, 32);
}

/// Configuration identical to the CI golden-snapshot runs
/// (`--scale 0.012 --sizes small --sim-only --threads 4`): output must be
/// deterministic across machines, so the committed goldens pin it.
fn golden_harness() -> Harness {
    let scale = 0.012f64;
    let cfg = HarnessConfig {
        scale,
        sizes: vec![SizeClass::Small],
        r_mem_bytes: (48e9 * scale * scale) as u64,
        threads: 4,
        ..HarnessConfig::default()
    }
    .sim_only();
    Harness::new(cfg).unwrap()
}

/// The per-op Figure 2 variant renders byte-identically to the committed
/// golden (regenerate with
/// `paper_harness fig2 --scale 0.012 --sizes small --sim-only --threads 4
/// --per-op > tests/golden/fig2_per_op.txt`).
#[test]
fn fig2_per_op_matches_golden() {
    use genbase::engines;
    use genbase::sched::{run_cells_serial, FigureId};
    let h = golden_harness();
    let cells = figures::plan(FigureId::Fig2, h.config(), SizeClass::Small);
    let grid = run_cells_serial(&h, &engines::all_engines(), &cells).unwrap();
    let fig = figures::render_per_op(FigureId::Fig2, &h, SizeClass::Small, &grid).unwrap();
    let got = format!("{}\n", fig.render());
    let want = std::fs::read_to_string("tests/golden/fig2_per_op.txt").unwrap();
    assert_eq!(got, want, "fig2 --per-op drifted from the golden snapshot");
    // The breakdown carries the memory dimension: some operator class
    // moves storage-layer bytes for every completing engine.
    assert!(got.contains("bytes moved per operator class"));
    assert!(got.contains("KiB"));
}

/// `explain --json` (the machine-readable trace surface) matches its
/// committed golden, parses as JSON, and carries the memory columns.
#[test]
fn explain_json_matches_golden() {
    let h = golden_harness();
    let got = format!(
        "{}\n",
        figures::explain_json(&h, SizeClass::Small, 1, None, None).unwrap()
    );
    let want = std::fs::read_to_string("tests/golden/explain_small.json").unwrap();
    assert_eq!(got, want, "explain --json drifted from the golden snapshot");
    let doc = genbase_util::Json::parse(want.trim()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(genbase_util::Json::as_str),
        Some("genbase-explain-v1")
    );
    let pairs = doc
        .get("pairs")
        .and_then(genbase_util::Json::as_arr)
        .unwrap();
    assert_eq!(pairs.len(), genbase::engines::all_engines().len() * 5);
    // Every completed pair reports the memory rollup and per-op columns.
    for pair in pairs {
        if pair.get("status").and_then(genbase_util::Json::as_str) == Some("completed") {
            let mem = pair.get("memory").expect("memory rollup");
            assert!(
                mem.get("peak_alloc")
                    .and_then(genbase_util::Json::as_u64)
                    .unwrap()
                    > 0
            );
            let ops = pair
                .get("ops")
                .and_then(genbase_util::Json::as_arr)
                .unwrap();
            assert!(ops.iter().all(|op| op.get("mem_peak").is_some()));
        }
    }
}
