//! End-to-end: the harness regenerates every figure/table at micro scale.

use genbase::figures;
use genbase::harness::{Harness, HarnessConfig};
use genbase_datagen::SizeClass;
use std::time::Duration;

fn micro_harness() -> Harness {
    let cfg = HarnessConfig {
        scale: 0.014, // 70x70 "small"
        sizes: vec![SizeClass::Small],
        cutoff: Duration::from_secs(120),
        r_mem_bytes: u64::MAX,
        node_counts: vec![1, 2],
        ..HarnessConfig::quick()
    };
    Harness::new(cfg).unwrap()
}

#[test]
fn all_figures_and_tables_render() {
    let h = micro_harness();
    let f1 = figures::figure1(&h).unwrap();
    assert_eq!(f1.tables.len(), 5, "one table per query");
    let rendered = f1.render();
    for engine in [
        "Vanilla R",
        "Postgres + Madlib",
        "Postgres + R",
        "Column store + R",
        "Column store + UDFs",
        "SciDB",
        "Hadoop",
    ] {
        assert!(rendered.contains(engine), "figure 1 must list {engine}");
    }
    // Hadoop shows no bar for biclustering/SVD (missing functionality).
    assert!(rendered.contains('-'));

    let f2 = figures::figure2(&h).unwrap();
    assert_eq!(f2.tables.len(), 2);

    let f3 = figures::figure3(&h, SizeClass::Small).unwrap();
    assert_eq!(f3.tables.len(), 5);
    let rendered = f3.render();
    for engine in ["Column store + pbdR", "pbdR", "SciDB"] {
        assert!(rendered.contains(engine), "figure 3 must list {engine}");
    }

    let f4 = figures::figure4(&h, SizeClass::Small).unwrap();
    assert_eq!(f4.tables.len(), 2);

    let f5 = figures::figure5(&h).unwrap();
    assert_eq!(f5.tables.len(), 4, "the four offloadable queries");

    let t1 = figures::table1(&h, SizeClass::Small).unwrap();
    let rendered = t1.render();
    for bench in ["Covariance", "SVD", "Statistics", "Biclustering"] {
        assert!(rendered.contains(bench), "table 1 must list {bench}");
    }
}

#[test]
fn run_matrix_covers_all_cells() {
    let h = micro_harness();
    let engines = genbase::engines::single_node_engines();
    let records = h.run_matrix(&engines, &genbase::Query::ALL).unwrap();
    // 5 queries x 1 size x 7 engines.
    assert_eq!(records.len(), 35);
    let completed = records
        .iter()
        .filter(|r| matches!(r.outcome, genbase::RunOutcome::Completed(_)))
        .count();
    let unsupported = records
        .iter()
        .filter(|r| matches!(r.outcome, genbase::RunOutcome::Unsupported))
        .count();
    // Hadoop misses 2 queries, Madlib misses 1.
    assert_eq!(unsupported, 3);
    assert_eq!(completed, 32);
}
