//! Multi-node runs must return the same answers as single-node runs: the
//! distributed kernels (TSQR, allreduce Gram, distributed Lanczos) are
//! algebraically identical to their serial counterparts.

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

fn dataset() -> genbase_datagen::Dataset {
    generate(&GeneratorConfig::new(SizeSpec::custom(72, 66, 9))).unwrap()
}

#[test]
fn every_multi_node_engine_matches_single_node_reference() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let single = ExecContext::single_node();
    let reference_engine = engines::SciDb::new();
    for query in Query::ALL {
        let reference = reference_engine
            .run(query, &data, &params, &single)
            .unwrap()
            .output;
        for engine in engines::multi_node_engines() {
            if !engine.supports(query) {
                continue;
            }
            for nodes in [2usize, 4] {
                let ctx = ExecContext::multi_node(nodes);
                let output = engine
                    .run(query, &data, &params, &ctx)
                    .unwrap_or_else(|e| panic!("{}/{query:?}/{nodes}: {e}", engine.name()))
                    .output;
                assert!(
                    output.consistency_error(&reference, 1e-5).is_none(),
                    "{} / {query:?} @ {nodes} nodes: {:?}",
                    engine.name(),
                    output.consistency_error(&reference, 1e-5)
                );
            }
        }
    }
}

#[test]
fn network_time_appears_only_on_multi_node_runs() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let engine = engines::SciDb::new();
    let single = engine
        .run(
            Query::Covariance,
            &data,
            &params,
            &ExecContext::single_node(),
        )
        .unwrap();
    let sim1 = single.phases.data_management.sim_secs + single.phases.analytics.sim_secs;
    assert_eq!(sim1, 0.0, "single node must not charge network time");
    let multi = engine
        .run(
            Query::Covariance,
            &data,
            &params,
            &ExecContext::multi_node(4),
        )
        .unwrap();
    let sim4 = multi.phases.data_management.sim_secs + multi.phases.analytics.sim_secs;
    assert!(sim4 > 0.0, "4 nodes must charge allreduce traffic");
}

#[test]
fn more_nodes_more_network_for_rooted_collectives() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let engine = engines::Pbdr::new();
    let sim_for = |nodes: usize| {
        let report = engine
            .run(Query::Svd, &data, &params, &ExecContext::multi_node(nodes))
            .unwrap();
        report.phases.data_management.sim_secs + report.phases.analytics.sim_secs
    };
    let two = sim_for(2);
    let four = sim_for(4);
    assert!(
        four > two,
        "gather/broadcast cost grows with node count: {four} vs {two}"
    );
}
