//! Distributed sweep conformance: a coordinator plus N workers over real
//! TCP sockets must produce exactly the single-process serial sweep —
//! byte-identical rendered figures under `--sim-only` — and must survive
//! worker death by re-issuing the dead worker's lease.

use genbase::coord::{run_worker, CoordOptions, Coordinator, PROTOCOL};
use genbase::figures;
use genbase::prelude::*;
use genbase::sched::config_fingerprint;
use genbase_datagen::SizeClass;
use genbase_util::frame::{read_frame_opt, write_frame};
use genbase_util::Json;
use std::net::TcpStream;
use std::time::Duration;

fn sim_config() -> HarnessConfig {
    HarnessConfig {
        scale: 0.012,
        sizes: vec![SizeClass::Small],
        r_mem_bytes: u64::MAX,
        ..HarnessConfig::quick()
    }
    .sim_only()
}

const FIGS: [FigureId; 2] = [FigureId::Fig1, FigureId::Table1];

/// Render every exhibit from a grid (the pure function both paths share).
fn render_all(grid: &genbase::ReportGrid) -> String {
    let harness = Harness::new(sim_config()).unwrap();
    FIGS.iter()
        .map(|&f| {
            figures::render(f, &harness, SizeClass::Small, grid)
                .unwrap()
                .render()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn two_worker_coordinated_sweep_is_byte_identical_to_serial() {
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        sim_config(),
        &FIGS,
        SizeClass::Small,
        CoordOptions::default(),
    )
    .unwrap();
    let addr = coordinator.local_addr().unwrap();
    let serve = std::thread::spawn(move || coordinator.serve());
    let workers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || run_worker(addr, sim_config(), Duration::from_secs(10)))
        })
        .collect();
    let reports: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().unwrap().unwrap())
        .collect();
    let outcome = serve.join().unwrap().unwrap();

    assert_eq!(outcome.executed, outcome.planned);
    assert_eq!(outcome.workers, 2);
    assert_eq!(
        reports.iter().map(|r| r.completed).sum::<usize>(),
        outcome.planned,
        "workers must partition the plan exactly"
    );
    // (No per-worker minimum: on a loaded machine one worker may
    // legitimately drain the whole small plan before the other is
    // scheduled. The partition-sum above is the real invariant.)

    // The serial single-process run, rendered from its own grid.
    let scheduler = Scheduler::new(sim_config()).unwrap();
    let serial = scheduler
        .run_sweep(&FIGS, SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    assert_eq!(serial.grid.to_json(), outcome.grid.to_json());
    assert_eq!(render_all(&serial.grid), render_all(&outcome.grid));
}

#[test]
fn killed_worker_leases_are_reissued_and_the_sweep_completes() {
    let ckpt =
        std::env::temp_dir().join(format!("genbase-coord-relase-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        sim_config(),
        &FIGS,
        SizeClass::Small,
        CoordOptions::default().with_checkpoint(&ckpt),
    )
    .unwrap();
    let addr = coordinator.local_addr().unwrap();
    let fingerprint = config_fingerprint(coordinator.config());
    let serve = std::thread::spawn(move || coordinator.serve());

    // A worker that takes a lease and dies: raw handshake, one request,
    // read the lease, then drop the connection without answering.
    let mut doomed = TcpStream::connect(addr).unwrap();
    let mut hello = Json::obj();
    hello.set("type", Json::from("hello"));
    hello.set("protocol", Json::from(PROTOCOL));
    hello.set("config", Json::from(fingerprint.as_str()));
    write_frame(&mut doomed, &hello).unwrap();
    let welcome = read_frame_opt(&mut doomed).unwrap().unwrap();
    assert_eq!(welcome.get("type").and_then(Json::as_str), Some("welcome"));
    let mut request = Json::obj();
    request.set("type", Json::from("request"));
    write_frame(&mut doomed, &request).unwrap();
    let lease = read_frame_opt(&mut doomed).unwrap().unwrap();
    assert_eq!(lease.get("type").and_then(Json::as_str), Some("lease"));
    let abandoned = CellKey::from_json(lease.get("cell").unwrap()).unwrap();
    drop(doomed); // worker dies holding the lease

    // A healthy worker drains the whole sweep, including the re-issued cell.
    let report = run_worker(addr, sim_config(), Duration::from_secs(10)).unwrap();
    let outcome = serve.join().unwrap().unwrap();

    assert!(
        outcome.reissued >= 1,
        "dead worker's lease must be re-issued"
    );
    assert_eq!(outcome.executed, outcome.planned);
    assert_eq!(report.completed, outcome.planned);
    assert!(
        outcome.grid.contains(&abandoned),
        "abandoned cell {} must still be executed",
        abandoned.id()
    );

    // The checkpoint path doubles as the coordinator's resume file: a
    // fresh coordinator restores everything and needs no workers at all.
    let resumed = Coordinator::bind(
        "127.0.0.1:0",
        sim_config(),
        &FIGS,
        SizeClass::Small,
        CoordOptions::default().with_checkpoint(&ckpt),
    )
    .unwrap();
    let resumed_outcome = resumed.serve().unwrap();
    assert_eq!(resumed_outcome.restored, resumed_outcome.planned);
    assert_eq!(resumed_outcome.executed, 0);
    assert_eq!(resumed_outcome.grid.to_json(), outcome.grid.to_json());

    // And the result is still the serial run, byte for byte.
    let serial = Scheduler::new(sim_config())
        .unwrap()
        .run_sweep(&FIGS, SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    assert_eq!(render_all(&serial.grid), render_all(&outcome.grid));
    let _ = std::fs::remove_file(&ckpt);
}
