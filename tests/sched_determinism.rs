//! Paper-conformance tier: the sharded scheduler must be a pure
//! reorganization of the serial sweep — same cells, same grid, byte-for-byte
//! the same rendered figures — for every sharding/concurrency configuration.
//!
//! All sweeps here run in `TimingMode::SimOnly`, which zeroes measured wall
//! seconds so completed cells are deterministic and whole-output equality
//! is meaningful.

use genbase::figures;
use genbase::prelude::*;
use genbase_datagen::SizeClass;
use std::collections::BTreeSet;
use std::time::Duration;

fn micro_config() -> HarnessConfig {
    HarnessConfig {
        scale: 0.012, // 60x60 small
        sizes: vec![SizeClass::Small],
        cutoff: Duration::from_secs(120),
        r_mem_bytes: u64::MAX,
        node_counts: vec![1, 2],
        ..HarnessConfig::quick()
    }
    .sim_only()
}

fn render_all(sched: &Scheduler, grid: &ReportGrid, figs: &[FigureId]) -> String {
    figs.iter()
        .map(|&f| {
            figures::render(f, sched.harness(), SizeClass::Small, grid)
                .unwrap_or_else(|e| panic!("render {}: {e}", f.name()))
                .render()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fig1_sweep_is_byte_identical_serial_vs_sharded() {
    // Serial reference: the classic figures::figure1 path.
    let serial_sched = Scheduler::new(micro_config()).unwrap();
    let serial_text = figures::figure1(serial_sched.harness()).unwrap().render();

    let mut grids = Vec::new();
    for cells_in_flight in [1usize, 2, 8] {
        let sched = Scheduler::new(micro_config()).unwrap();
        let sweep = SweepOptions::default().with_cells_in_flight(cells_in_flight);
        let outcome = sched
            .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
            .unwrap();
        // 5 queries x 1 size x 7 engines.
        assert_eq!(outcome.planned, 35, "jobs={cells_in_flight}");
        assert_eq!(outcome.executed, 35);
        let text = render_all(&sched, &outcome.grid, &[FigureId::Fig1]);
        assert_eq!(
            text, serial_text,
            "jobs={cells_in_flight}: sharded rendering must be byte-identical to serial"
        );
        grids.push(outcome.grid.to_json());
    }
    // The grids themselves (not just the rendering) must agree bytewise.
    assert_eq!(grids[0], grids[1]);
    assert_eq!(grids[0], grids[2]);
}

#[test]
fn shard_partitions_cover_every_cell_exactly_once() {
    let sched = Scheduler::new(micro_config()).unwrap();
    let all_cells: Vec<String> = sched
        .plan(&[FigureId::Fig1], SizeClass::Small)
        .iter()
        .map(|c| c.id())
        .collect();
    assert_eq!(all_cells.len(), 35);

    let mut merged = ReportGrid::default();
    let mut seen = Vec::new();
    for shard_id in 0..3 {
        let shard_sched = Scheduler::new(micro_config()).unwrap();
        let sweep = SweepOptions::default()
            .with_cells_in_flight(4)
            .with_shard(3, shard_id);
        let outcome = shard_sched
            .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
            .unwrap();
        for id in outcome.grid.ids() {
            seen.push(id.to_string());
        }
        merged.merge(outcome.grid).unwrap();
    }
    // Exactly once: no shard overlap, nothing missing.
    assert_eq!(seen.len(), all_cells.len(), "no cell may run twice");
    let seen_set: BTreeSet<&String> = seen.iter().collect();
    let all_set: BTreeSet<&String> = all_cells.iter().collect();
    assert_eq!(seen_set, all_set, "shards must cover the full plan");

    // The merged sharded sweep renders byte-identically to the serial path.
    let serial_text = figures::figure1(sched.harness()).unwrap().render();
    assert_eq!(render_all(&sched, &merged, &[FigureId::Fig1]), serial_text);
}

#[test]
fn every_figure_renders_identically_from_one_shared_sweep() {
    // One sweep over all six exhibits at once (cells interleaved across
    // figures, 4 in flight) must reproduce each classic serial wrapper.
    let sched = Scheduler::new(micro_config()).unwrap();
    let sweep = SweepOptions::default().with_cells_in_flight(4);
    let outcome = sched
        .run_sweep(&FigureId::ALL, SizeClass::Small, &sweep)
        .unwrap();

    let reference = Scheduler::new(micro_config()).unwrap();
    let h = reference.harness();
    let serial = [
        figures::figure1(h).unwrap(),
        figures::figure2(h).unwrap(),
        figures::figure3(h, SizeClass::Small).unwrap(),
        figures::figure4(h, SizeClass::Small).unwrap(),
        figures::figure5(h).unwrap(),
        figures::table1(h, SizeClass::Small).unwrap(),
    ];
    for (fig, expect) in FigureId::ALL.into_iter().zip(&serial) {
        let got = figures::render(fig, sched.harness(), SizeClass::Small, &outcome.grid)
            .unwrap()
            .render();
        assert_eq!(
            got,
            expect.render(),
            "{} drifted from the serial path",
            fig.name()
        );
    }
}

#[test]
fn grid_json_survives_disk_round_trip() {
    let sched = Scheduler::new(micro_config()).unwrap();
    let outcome = sched
        .run_sweep(&[FigureId::Fig5], SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    let path = std::env::temp_dir().join(format!(
        "genbase-grid-roundtrip-{}.json",
        std::process::id()
    ));
    outcome.grid.save(&path).unwrap();
    let back = ReportGrid::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(back, outcome.grid);
    assert_eq!(back.to_json(), outcome.grid.to_json());
}

#[test]
fn per_cell_thread_budget_divides_the_pool() {
    // 8 configured threads split across 4 in-flight cells = 2 per cell; the
    // outcome must still be byte-identical to the 1-in-flight (8 threads
    // per cell) run — thread budgets never leak into results. Fig3 is the
    // sharp edge: Hadoop's multi-node shuffle cost model sizes its task
    // slots from the *simulated machine* (ExecContext.sim_threads); sizing
    // from the per-cell execution budget would make simulated costs vary
    // with cells_in_flight.
    let mut config = micro_config();
    config.threads = 8;
    let figs = [FigureId::Fig1, FigureId::Fig3];
    let wide = Scheduler::new(config.clone()).unwrap();
    let wide_out = wide
        .run_sweep(
            &figs,
            SizeClass::Small,
            &SweepOptions::default().with_cells_in_flight(4),
        )
        .unwrap();
    let narrow = Scheduler::new(config).unwrap();
    let narrow_out = narrow
        .run_sweep(&figs, SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    assert_eq!(wide_out.grid.to_json(), narrow_out.grid.to_json());
}
