//! Streaming-execution conformance tier: morsel-driven streaming must be a
//! pure *memory* optimization — byte-identical `QueryReport` output and
//! rendered figures at every batch size and thread count, with only the
//! trace's memory dimension (`peak_alloc`, `batches`, `spill_bytes`)
//! allowed to differ from the materializing lowerings.
//!
//! All runs use `TimingMode::SimOnly`, which zeroes measured wall seconds
//! so whole-report equality is meaningful.

use genbase::engine::StreamConfig;
use genbase::figures;
use genbase::prelude::*;
use genbase_datagen::SizeClass;
use genbase_relational::{DataType, Schema};
use genbase_storage::{
    batch_ranges, carve_view, reassemble, Column, ColumnarTable, MemTracker, SelVec,
};
use genbase_util::CostReport;
use proptest::prelude::*;
use std::time::Duration;

/// The engines whose SQL-family lowerings stream (vanilla R, SciDB, Hadoop
/// and the pbdR configurations keep their materializing lowerings).
const STREAMING_ENGINES: [&str; 4] = [
    "Postgres + Madlib",
    "Postgres + R",
    "Column store + R",
    "Column store + UDFs",
];

const QUERIES: [Query; 5] = [
    Query::Regression,
    Query::Covariance,
    Query::Biclustering,
    Query::Svd,
    Query::Statistics,
];

fn base_config() -> HarnessConfig {
    HarnessConfig {
        scale: 0.012, // 60x60 small
        sizes: vec![SizeClass::Small],
        cutoff: Duration::from_secs(120),
        r_mem_bytes: u64::MAX,
        node_counts: vec![1, 2],
        ..HarnessConfig::quick()
    }
    .sim_only()
}

fn streaming_config(batch_rows: usize) -> HarnessConfig {
    let mut config = base_config();
    config.stream = Some(StreamConfig {
        batch_rows,
        spill_dir: None,
        fused: false,
    });
    config
}

/// The fused morsel pipeline: same streaming reel, but filters/semijoins
/// mark survivors with selection vectors and the per-morsel operators run
/// as one fused pass.
fn fused_config(batch_rows: usize) -> HarnessConfig {
    let mut config = streaming_config(batch_rows);
    if let Some(stream) = &mut config.stream {
        stream.fused = true;
    }
    config
}

fn engines_by_name(names: &[&str]) -> Vec<Box<dyn Engine>> {
    engines::single_node_engines()
        .into_iter()
        .filter(|e| names.contains(&e.name()))
        .collect()
}

fn completed(record: &genbase::harness::RunRecord, what: &str) -> QueryReport {
    match &record.outcome {
        RunOutcome::Completed(report) => report.clone(),
        other => panic!("{what}: expected completion, got {other:?}"),
    }
}

fn assert_cost_bits(base: CostReport, got: CostReport, what: &str) {
    assert_eq!(
        got.wall_secs.to_bits(),
        base.wall_secs.to_bits(),
        "{what}: wall seconds drifted"
    );
    assert_eq!(
        got.sim_secs.to_bits(),
        base.sim_secs.to_bits(),
        "{what}: simulated seconds drifted"
    );
    assert_eq!(
        got.sim_bytes, base.sim_bytes,
        "{what}: simulated bytes drifted"
    );
}

/// The streaming identity contract: same typed output, bitwise-identical
/// phase split. (The memory columns of the trace are *expected* to differ —
/// that is the point of streaming.)
fn assert_reports_identical(base: &QueryReport, got: &QueryReport, what: &str) {
    assert_eq!(got.output, base.output, "{what}: query output drifted");
    assert_cost_bits(
        base.phases.data_management,
        got.phases.data_management,
        &format!("{what} (data management)"),
    );
    assert_cost_bits(
        base.phases.analytics,
        got.phases.analytics,
        &format!("{what} (analytics)"),
    );
}

/// The ISSUE's core matrix: batch sizes {1, 7, 64, 4096, exact table size,
/// table size + 1} x threads {1, 3, 8}, every streaming engine, every
/// supported query — each cell must reproduce the materializing report.
#[test]
fn streaming_is_byte_identical_across_batch_sizes_and_threads() {
    let baseline_harness = Harness::new(base_config()).unwrap();
    let data = baseline_harness.dataset(SizeClass::Small).unwrap();
    let table_rows = data.expression.rows() * data.expression.cols();
    drop(data);

    let engines = engines_by_name(&STREAMING_ENGINES);
    assert_eq!(engines.len(), STREAMING_ENGINES.len());

    // Materializing baselines, one per (engine, query).
    let mut baselines = Vec::new();
    for engine in &engines {
        for query in QUERIES {
            if !engine.supports(query) {
                continue;
            }
            let record = baseline_harness
                .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
                .unwrap();
            let report = completed(
                &record,
                &format!("{} {query:?} materializing", engine.name()),
            );
            baselines.push((engine.name(), query, report));
        }
    }
    assert!(
        baselines.len() >= 15,
        "expected a substantial baseline matrix, got {}",
        baselines.len()
    );

    let batch_sizes = [1usize, 7, 64, 4096, table_rows, table_rows + 1];
    for batch_rows in batch_sizes {
        let harness = Harness::new(streaming_config(batch_rows)).unwrap();
        let fused = Harness::new(fused_config(batch_rows)).unwrap();
        for (name, query, baseline) in &baselines {
            let engine = engines
                .iter()
                .find(|e| e.name() == *name)
                .expect("engine present");
            for threads in [1usize, 3, 8] {
                let what = format!("{name} {query:?} batch_rows={batch_rows} threads={threads}");
                let record = harness
                    .run_cell_with_threads(engine.as_ref(), *query, SizeClass::Small, 1, threads)
                    .unwrap();
                let report = completed(&record, &what);
                assert_reports_identical(baseline, &report, &what);
                // The streaming run must actually have streamed: the trace
                // records the morsel batches the reel replayed.
                assert!(
                    report.memory().batches > 0,
                    "{what}: no batches recorded — did the lowering stream?"
                );

                // The fused pipeline must reproduce the same report while
                // strictly shrinking data movement: selection vectors
                // replace the copied intermediates, so the fused cell moves
                // fewer storage-layer bytes than its staged counterpart at
                // no cost in peak residency.
                let fwhat = format!("{what} (fused)");
                let frecord = fused
                    .run_cell_with_threads(engine.as_ref(), *query, SizeClass::Small, 1, threads)
                    .unwrap();
                let freport = completed(&frecord, &fwhat);
                assert_reports_identical(baseline, &freport, &fwhat);
                let smem = report.memory();
                let fmem = freport.memory();
                assert!(fmem.batches > 0, "{fwhat}: no batches recorded");
                assert!(
                    fmem.bytes_in + fmem.bytes_out < smem.bytes_in + smem.bytes_out,
                    "{fwhat}: moved {} bytes, not below the staged path's {}",
                    fmem.bytes_in + fmem.bytes_out,
                    smem.bytes_in + smem.bytes_out,
                );
                assert!(
                    fmem.peak_alloc_bytes <= smem.peak_alloc_bytes,
                    "{fwhat}: peak {} exceeds the staged path's {}",
                    fmem.peak_alloc_bytes,
                    smem.peak_alloc_bytes,
                );
            }
        }
    }
}

/// Materializing traces must not grow batch/spill columns: streaming
/// counters stay zero when `stream` is off.
#[test]
fn materializing_traces_have_no_streaming_counters() {
    let harness = Harness::new(base_config()).unwrap();
    let engines = engines_by_name(&STREAMING_ENGINES);
    for engine in &engines {
        let record = harness
            .run_cell(engine.as_ref(), Query::Covariance, SizeClass::Small, 1)
            .unwrap();
        let report = completed(&record, &format!("{} covariance", engine.name()));
        let mem = report.memory();
        assert_eq!(mem.batches, 0, "{}: phantom batches", engine.name());
        assert_eq!(mem.spill_bytes, 0, "{}: phantom spill", engine.name());
    }
}

/// Figure-level identity: a whole Figure 1 sweep with streaming enabled
/// renders byte-for-byte the same text as the materializing sweep, and the
/// streaming sweep itself is invariant under the sharded scheduler.
#[test]
fn fig1_streaming_sweep_renders_byte_identically() {
    let mat_sched = Scheduler::new(base_config()).unwrap();
    let mat_out = mat_sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    let mat_text = figures::render(
        FigureId::Fig1,
        mat_sched.harness(),
        SizeClass::Small,
        &mat_out.grid,
    )
    .unwrap()
    .render();

    let stream_sched = Scheduler::new(streaming_config(64)).unwrap();
    let stream_out = stream_sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    assert_eq!(stream_out.planned, mat_out.planned);
    let stream_text = figures::render(
        FigureId::Fig1,
        stream_sched.harness(),
        SizeClass::Small,
        &stream_out.grid,
    )
    .unwrap()
    .render();
    assert_eq!(
        stream_text, mat_text,
        "streaming Fig1 must render byte-identically to the materializing sweep"
    );

    // The fused pipeline renders the same figure text too.
    let fused_sched = Scheduler::new(fused_config(64)).unwrap();
    let fused_out = fused_sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    assert_eq!(fused_out.planned, mat_out.planned);
    let fused_text = figures::render(
        FigureId::Fig1,
        fused_sched.harness(),
        SizeClass::Small,
        &fused_out.grid,
    )
    .unwrap()
    .render();
    assert_eq!(
        fused_text, mat_text,
        "fused Fig1 must render byte-identically to the materializing sweep"
    );

    // Sharded streaming sweep: identical grid bytes (fingerprints match —
    // both carry the same `;stream=batch64` suffix).
    let sharded = Scheduler::new(streaming_config(64)).unwrap();
    let sharded_out = sharded
        .run_sweep(
            &[FigureId::Fig1],
            SizeClass::Small,
            &SweepOptions::default().with_cells_in_flight(4),
        )
        .unwrap();
    assert_eq!(sharded_out.grid.to_json(), stream_out.grid.to_json());
}

/// The spill contract: a streaming cell whose working set exceeds
/// `--mem-budget` completes (spilling reel batches to disk) with output
/// identical to the unbudgeted run, while the materializing lowering on the
/// same cell reports an infinite (out-of-memory) outcome.
#[test]
fn over_budget_streaming_cell_spills_and_completes() {
    let engines = engines_by_name(&["Postgres + Madlib"]);
    let engine = engines.first().expect("Postgres + Madlib");
    let query = Query::Statistics;

    // Reference: unbudgeted materializing run, for the output and the peak.
    let free = Harness::new(base_config()).unwrap();
    let reference = completed(
        &free
            .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
            .unwrap(),
        "unbudgeted materializing",
    );
    let peak = reference.memory().peak_alloc_bytes;
    let data = free.dataset(SizeClass::Small).unwrap();
    let reel_span = (data.expression.rows() * data.expression.cols() * 3 * 8) as u64;
    drop(data);
    // A budget the materializing path cannot fit but the streaming path can:
    // under the peak (so materializing OOMs), and small enough that the
    // reel's resident cap (budget / 4) cannot hold the whole triple span
    // (so the streaming run must spill).
    let budget = (peak * 3 / 4).min(2 * reel_span);
    assert!(
        budget > 0 && budget < peak,
        "budget {budget} vs peak {peak}"
    );

    let mut mat_config = base_config();
    mat_config.mem_budget = Some(budget);
    let mat = Harness::new(mat_config).unwrap();
    let mat_record = mat
        .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
        .unwrap();
    match &mat_record.outcome {
        RunOutcome::Infinite { reason } => {
            assert!(
                reason.contains("memory") || reason.contains("budget"),
                "materializing over-budget cell failed for the wrong reason: {reason}"
            );
        }
        other => panic!("materializing over-budget cell should be infinite, got {other:?}"),
    }

    let mut stream_cfg = streaming_config(64);
    stream_cfg.mem_budget = Some(budget);
    let streaming = Harness::new(stream_cfg).unwrap();
    let stream_report = completed(
        &streaming
            .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
            .unwrap(),
        "budgeted streaming",
    );
    assert_eq!(
        stream_report.output, reference.output,
        "spilling run drifted from the unbudgeted output"
    );
    let mem = stream_report.memory();
    assert!(
        mem.spill_bytes > 0,
        "over-budget streaming run never spilled"
    );
    assert!(mem.batches > 0, "over-budget streaming run never streamed");
    assert!(
        mem.peak_alloc_bytes <= budget,
        "streaming peak {} exceeded the budget {budget}",
        mem.peak_alloc_bytes
    );

    // Same budget, fused pipeline: identical output, same spill behavior.
    let mut fused_cfg = fused_config(64);
    fused_cfg.mem_budget = Some(budget);
    let fused = Harness::new(fused_cfg).unwrap();
    let fused_report = completed(
        &fused
            .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
            .unwrap(),
        "budgeted fused streaming",
    );
    assert_eq!(
        fused_report.output, reference.output,
        "fused spilling run drifted from the unbudgeted output"
    );
    let fmem = fused_report.memory();
    assert!(fmem.spill_bytes > 0, "over-budget fused run never spilled");
    assert!(
        fmem.peak_alloc_bytes <= budget,
        "fused peak {} exceeded the budget {budget}",
        fmem.peak_alloc_bytes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Carving a table into morsels and reassembling them is the identity,
    // for every (row count, batch size) — including ragged tails, batches
    // larger than the table, and the empty table.
    #[test]
    fn morsel_carve_reassemble_round_trip(n_rows in 0usize..400, batch_rows in 1usize..97) {
        let tracker = MemTracker::unlimited();
        let schema = Schema::new(&[
            ("gene_id", DataType::Int),
            ("patient_id", DataType::Int),
            ("expr_value", DataType::Float),
        ]).unwrap();
        let genes: Vec<i64> = (0..n_rows as i64).map(|i| i * 7 % 13).collect();
        let patients: Vec<i64> = (0..n_rows as i64).map(|i| i * 3 % 11).collect();
        let values: Vec<f64> = (0..n_rows).map(|i| i as f64 * 0.5 - 3.0).collect();
        let table = ColumnarTable::from_columns(
            &tracker,
            schema.clone(),
            vec![
                Column::Ints(genes.clone()),
                Column::Ints(patients.clone()),
                Column::Floats(values.clone()),
            ],
        ).unwrap();

        // The carve plan covers every row exactly once, in order, with only
        // the final range ragged.
        let ranges = batch_ranges(n_rows, batch_rows).unwrap();
        let mut covered = 0;
        for (i, (start, end)) in ranges.iter().enumerate() {
            prop_assert_eq!(*start, covered);
            prop_assert!(end > start);
            if i + 1 < ranges.len() {
                prop_assert_eq!(end - start, batch_rows);
            }
            covered = *end;
        }
        prop_assert_eq!(covered, n_rows);

        let morsels = carve_view(&tracker, &table.view(), batch_rows).unwrap();
        prop_assert_eq!(morsels.iter().map(|m| m.n_rows()).sum::<usize>(), n_rows);
        let back = reassemble(&tracker, schema, morsels).unwrap();
        prop_assert_eq!(back.n_rows(), n_rows);
        prop_assert_eq!(back.int_col(0).unwrap(), &genes[..]);
        prop_assert_eq!(back.int_col(1).unwrap(), &patients[..]);
        prop_assert_eq!(back.float_col(2).unwrap(), &values[..]);

        // Memory accounting balances: everything charged during the round
        // trip is released once both tables drop.
        drop(table);
        drop(back);
        prop_assert_eq!(tracker.current(), 0);
    }

    // Selection-vector filtering is the identity against the copying
    // filter: carve into morsels, mark survivors with a SelVec, gather,
    // reassemble — exactly the rows a plain row-copying filter keeps, in
    // the same order, with all charged bytes released on drop.
    #[test]
    fn selvec_filter_matches_copying_filter(
        n_rows in 0usize..400,
        batch_rows in 1usize..97,
        modulus in 1i64..7,
    ) {
        let tracker = MemTracker::unlimited();
        let schema = Schema::new(&[
            ("gene_id", DataType::Int),
            ("patient_id", DataType::Int),
            ("expr_value", DataType::Float),
        ]).unwrap();
        let genes: Vec<i64> = (0..n_rows as i64).map(|i| i * 7 % 13).collect();
        let patients: Vec<i64> = (0..n_rows as i64).map(|i| i * 3 % 11).collect();
        let values: Vec<f64> = (0..n_rows).map(|i| i as f64 * 0.5 - 3.0).collect();
        let table = ColumnarTable::from_columns(
            &tracker,
            schema.clone(),
            vec![
                Column::Ints(genes.clone()),
                Column::Ints(patients.clone()),
                Column::Floats(values.clone()),
            ],
        ).unwrap();
        let keep = |g: i64, p: i64| (g + p) % modulus == 0;

        // Reference: the copying filter over the whole table.
        let mut expect_g = Vec::new();
        let mut expect_p = Vec::new();
        let mut expect_v = Vec::new();
        for i in 0..n_rows {
            if keep(genes[i], patients[i]) {
                expect_g.push(genes[i]);
                expect_p.push(patients[i]);
                expect_v.push(values[i]);
            }
        }

        let morsels = carve_view(&tracker, &table.view(), batch_rows).unwrap();
        let mut survivors = Vec::new();
        for m in &morsels {
            let g = m.int_col(0).unwrap();
            let p = m.int_col(1).unwrap();
            let sel = SelVec::from_predicate(m.n_rows(), |i| keep(g[i], p[i]));
            prop_assert!(sel.len() <= m.n_rows());
            survivors.push(m.gather(sel.positions()).unwrap());
        }
        drop(morsels);
        let back = reassemble(&tracker, schema, survivors).unwrap();
        prop_assert_eq!(back.n_rows(), expect_g.len());
        prop_assert_eq!(back.int_col(0).unwrap(), &expect_g[..]);
        prop_assert_eq!(back.int_col(1).unwrap(), &expect_p[..]);
        prop_assert_eq!(back.float_col(2).unwrap(), &expect_v[..]);

        drop(table);
        drop(back);
        prop_assert_eq!(tracker.current(), 0);
    }
}
