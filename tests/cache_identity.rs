//! Artifact-cache identity: attaching a `--cache-budget` cache to a
//! harness must never change a cell's outcome bytes. A cache hit replays
//! the cold path's accounting (inputs, outputs, budget charges, batch
//! counts) and skips only the compute, so for every engine × query —
//! materializing and streaming — the warm run's [`CellOutcome::to_json`]
//! is byte-equal to the cold run's, while the cache's hit counter proves
//! the replays actually happened. Eviction, pinning and single-flight
//! mechanics are covered by the unit tests in `genbase_storage::cache`;
//! this file covers the end-to-end identity contract those mechanics
//! must preserve.

use genbase::engine::StreamConfig;
use genbase::harness::HarnessConfig;
use genbase::sched::{CellKey, FigureId, Scheduler};
use genbase::Query;
use genbase_datagen::SizeClass;
use genbase_storage::ArtifactCache;
use std::sync::Arc;

fn sim_config(stream: bool) -> HarnessConfig {
    let mut config = HarnessConfig {
        threads: 2,
        ..HarnessConfig::quick()
    }
    .sim_only();
    if stream {
        config.stream = Some(StreamConfig {
            batch_rows: 64,
            spill_dir: None,
            fused: false,
        });
    }
    config
}

fn scheduler(config: HarnessConfig, cache: Option<&Arc<ArtifactCache>>) -> Scheduler {
    let mut scheduler = Scheduler::new(config).expect("scheduler");
    if let Some(cache) = cache {
        scheduler
            .harness_mut()
            .set_artifact_cache(Arc::clone(cache));
    }
    scheduler
}

/// Every single-node engine × query cell at the quick scale.
fn all_cells() -> Vec<CellKey> {
    let mut cells = Vec::new();
    for engine in genbase::engines::single_node_engines() {
        for query in Query::ALL {
            cells.push(CellKey {
                figure: FigureId::Fig1,
                query,
                size: SizeClass::Small,
                nodes: 1,
                engine: engine.name().to_string(),
            });
        }
    }
    cells
}

/// Run every cell and render each outcome to its wire/grid JSON.
fn outcome_bytes(scheduler: &Scheduler, cells: &[CellKey]) -> Vec<String> {
    cells
        .iter()
        .map(|key| {
            scheduler
                .run_cell(key, 2)
                .unwrap_or_else(|e| panic!("cell {} failed: {e}", key.id()))
                .to_json()
                .render()
        })
        .collect()
}

fn identity_across_cache_states(stream: bool) {
    let cold = scheduler(sim_config(stream), None);
    let cells = all_cells();
    let cold_bytes = outcome_bytes(&cold, &cells);

    let cache = ArtifactCache::new(256 << 20);
    let warm = scheduler(sim_config(stream), Some(&cache));
    // First pass fills the cache, second pass replays from it; both must
    // be byte-identical to the cache-less run, cell by cell.
    let fill_bytes = outcome_bytes(&warm, &cells);
    let fills = cache.miss_count();
    let replay_bytes = outcome_bytes(&warm, &cells);
    for ((key, cold), (fill, replay)) in cells
        .iter()
        .zip(&cold_bytes)
        .zip(fill_bytes.iter().zip(&replay_bytes))
    {
        assert_eq!(cold, fill, "fill pass diverged on {}", key.id());
        assert_eq!(cold, replay, "replay pass diverged on {}", key.id());
    }
    assert!(
        fills > 0,
        "the fill pass should have run cold conversions through the cache"
    );
    assert!(
        cache.hit_count() > 0,
        "the replay pass should have hit cached artifacts"
    );
    assert_eq!(
        cache.miss_count(),
        fills,
        "the replay pass must not re-fill entries the fill pass created"
    );
}

#[test]
fn warm_cells_are_byte_identical_to_cold_cells_materializing() {
    identity_across_cache_states(false);
}

#[test]
fn warm_cells_are_byte_identical_to_cold_cells_streaming() {
    identity_across_cache_states(true);
}

#[test]
fn a_config_fingerprint_mismatch_bypasses_cached_artifacts() {
    // One shared cache, two configurations (materializing vs streaming
    // changes the fingerprint): the second scheduler must not replay the
    // first's artifacts — its keys live under a different prefix.
    let cache = ArtifactCache::new(256 << 20);
    let a = scheduler(sim_config(false), Some(&cache));
    let cell = CellKey {
        figure: FigureId::Fig1,
        query: Query::Covariance,
        size: SizeClass::Small,
        nodes: 1,
        engine: "SciDB".to_string(),
    };
    a.run_cell(&cell, 2).expect("cold fill run");
    let hits_before = cache.hit_count();
    let misses_before = cache.miss_count();
    assert!(
        misses_before > 0,
        "run under config A should fill the cache"
    );

    let b = scheduler(sim_config(true), Some(&cache));
    let b_cold = scheduler(sim_config(true), None);
    let from_shared_cache = b.run_cell(&cell, 2).expect("mismatched-config run");
    let cold = b_cold.run_cell(&cell, 2).expect("cache-less run");
    assert_eq!(
        from_shared_cache.to_json().render(),
        cold.to_json().render(),
        "a bypassed cache must leave the outcome untouched"
    );
    assert_eq!(
        cache.hit_count(),
        hits_before,
        "config B must not hit config A's artifacts"
    );
    assert!(
        cache.miss_count() > misses_before,
        "config B's conversions are cold under its own fingerprint"
    );
}

#[test]
fn repeat_runs_share_artifacts_across_queries_on_the_same_dataset() {
    // Regression and SVD both pivot the same gene-filtered join; the
    // second query's restructure should hit the artifact the first filled.
    let cache = ArtifactCache::new(256 << 20);
    let s = scheduler(sim_config(false), Some(&cache));
    let cell = |query| CellKey {
        figure: FigureId::Fig1,
        query,
        size: SizeClass::Small,
        nodes: 1,
        engine: "Postgres + R".to_string(),
    };
    s.run_cell(&cell(Query::Regression), 2).expect("regression");
    let hits_before = cache.hit_count();
    s.run_cell(&cell(Query::Svd), 2).expect("svd");
    assert!(
        cache.hit_count() > hits_before,
        "svd should reuse regression's join/pivot artifacts"
    );
}
