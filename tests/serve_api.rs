//! Resident benchmark server conformance: `paper_harness serve` answers
//! concurrent framed and HTTP clients with outcomes byte-identical to the
//! batch scheduler path under `--sim-only`, exposes Prometheus metrics,
//! rejects over-budget work cleanly instead of OOMing, and drains on stop.

use genbase::coord::PROTOCOL;
use genbase::figures;
use genbase::prelude::*;
use genbase::sched::config_fingerprint;
use genbase::serve::{
    client_request, working_set_estimate, BenchServer, ServeOptions, ServeReport,
};
use genbase_datagen::SizeClass;
use genbase_util::frame::{read_frame_opt, write_frame};
use genbase_util::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn sim_config() -> HarnessConfig {
    HarnessConfig {
        threads: 2,
        ..HarnessConfig::quick()
    }
    .sim_only()
}

/// A server running on its own thread, stoppable via the external flag.
struct Running {
    frame: SocketAddr,
    http: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<genbase_util::Result<ServeReport>>,
}

impl Running {
    fn shutdown(self) -> ServeReport {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap().unwrap()
    }
}

/// Bind on ephemeral ports and serve on a fresh thread. The server is built
/// inside the thread because the scheduler's engine registry is `Sync` but
/// not `Send`; the bound addresses come back over a channel.
fn start_server(options: ServeOptions) -> Running {
    start_server_with(sim_config(), options)
}

fn start_server_with(config: HarnessConfig, options: ServeOptions) -> Running {
    let stop = Arc::new(AtomicBool::new(false));
    let options = options.with_stop(Arc::clone(&stop));
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let server = BenchServer::bind("127.0.0.1:0", "127.0.0.1:0", config, options).unwrap();
        tx.send((server.frame_addr().unwrap(), server.http_addr().unwrap()))
            .unwrap();
        server.serve()
    });
    let (frame, http) = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("server failed to bind");
    Running {
        frame,
        http,
        stop,
        handle,
    }
}

/// One-shot HTTP exchange (the server is `Connection: close`); returns the
/// status code and body.
fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let extra: String = headers
        .iter()
        .map(|(n, v)| format!("{n}: {v}\r\n"))
        .collect();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    let body = raw.split_once("\r\n\r\n").expect("header break").1;
    (status, body.to_string())
}

fn query_frame(engine: &str, query: &str) -> Json {
    let mut req = Json::obj();
    req.set("type", Json::from("query"));
    req.set("engine", Json::from(engine));
    req.set("query", Json::from(query));
    req
}

#[test]
fn concurrent_served_queries_are_byte_identical_to_the_batch_path() {
    let cases = [
        ("SciDB", "covariance"),
        ("Vanilla R", "regression"),
        ("Column store + UDFs", "statistics"),
    ];
    let server = start_server(ServeOptions::default());

    // The batch side of the identity: the same cells through the plain
    // scheduler, rendered with the same deterministic JSON.
    let config = sim_config();
    let threads = config.threads.max(1);
    let scheduler = Scheduler::new(config).unwrap();
    let expected: Vec<(CellKey, String)> = cases
        .iter()
        .map(|&(engine, query)| {
            let key = CellKey {
                figure: FigureId::Fig1,
                query: Query::from_name(query).unwrap(),
                size: SizeClass::Small,
                nodes: 1,
                engine: engine.to_string(),
            };
            let outcome = scheduler
                .run_cell(&key, threads)
                .unwrap()
                .to_json()
                .render();
            (key, outcome)
        })
        .collect();

    // Concurrent framed clients; one spells its engine in the wrong case
    // to exercise canonicalization.
    let frame = server.frame;
    let handles: Vec<_> = expected
        .iter()
        .map(|(key, _)| {
            let engine = if key.engine == "SciDB" {
                "scidb".to_string()
            } else {
                key.engine.clone()
            };
            let query = key.query.name().to_string();
            std::thread::spawn(move || client_request(frame, None, &query_frame(&engine, &query)))
        })
        .collect();
    for (handle, (key, outcome)) in handles.into_iter().zip(&expected) {
        let reply = handle.join().unwrap().unwrap();
        assert_eq!(reply.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(
            reply.get("cell").and_then(Json::as_str),
            Some(key.id().as_str()),
            "served cell ids use the canonical engine spelling"
        );
        assert_eq!(
            reply.get("outcome").expect("outcome").render(),
            *outcome,
            "served outcome for {} must be byte-identical to batch",
            key.id()
        );
    }

    // The HTTP front returns the very same bytes.
    let (key, outcome) = &expected[0];
    let body = format!(
        "{{\"engine\": \"{}\", \"query\": \"{}\", \"size\": \"small\"}}",
        key.engine,
        key.query.name()
    );
    let (status, reply) = http_request(server.http, "POST", "/query", &body, &[]);
    assert_eq!(status, 200, "{reply}");
    let reply = Json::parse(&reply).unwrap();
    assert_eq!(reply.get("outcome").expect("outcome").render(), *outcome);

    let report = server.shutdown();
    assert_eq!(
        report,
        ServeReport {
            served: cases.len() as u64 + 1,
            failed: 0,
            rejected: 0
        }
    );
}

/// The served path honors the harness's streaming configuration: a server
/// built with `--stream` answers with bytes identical to the streaming
/// batch path, and the Prometheus surface counts the morsel batches.
#[test]
fn streaming_server_matches_the_streaming_batch_path() {
    let mut config = sim_config();
    config.stream = Some(genbase::engine::StreamConfig {
        batch_rows: 64,
        spill_dir: None,
        fused: false,
    });
    let threads = config.threads.max(1);
    let server = start_server_with(config.clone(), ServeOptions::default());

    let key = CellKey {
        figure: FigureId::Fig1,
        query: Query::Covariance,
        size: SizeClass::Small,
        nodes: 1,
        engine: "Column store + R".to_string(),
    };
    let scheduler = Scheduler::new(config).unwrap();
    let expected = scheduler
        .run_cell(&key, threads)
        .unwrap()
        .to_json()
        .render();

    let reply = client_request(
        server.frame,
        None,
        &query_frame(&key.engine, key.query.name()),
    )
    .unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(
        reply.get("outcome").expect("outcome").render(),
        expected,
        "served streaming outcome must be byte-identical to the streaming batch path"
    );

    let (_, metrics) = http_request(server.http, "GET", "/metrics", "", &[]);
    let batches: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("genbase_stream_batches_total "))
        .expect("stream batches metric")
        .parse()
        .unwrap();
    assert!(batches > 0, "streaming server served without streaming");

    // Per-request override: the same resident server answers both paths.
    // A "staged" override replays the configured path byte-identically; a
    // "fused" override keeps the phase costs identical while moving
    // strictly fewer storage-layer bytes (scraped from the same server's
    // bytes-moved counter around each run).
    let scrape_moved = || -> u64 {
        let (_, metrics) = http_request(server.http, "GET", "/metrics", "", &[]);
        metrics
            .lines()
            .find_map(|l| l.strip_prefix("genbase_bytes_moved_total "))
            .expect("bytes-moved counter")
            .parse()
            .unwrap()
    };
    let before = scrape_moved();
    let (status, body) = http_request(
        server.http,
        "POST",
        "/query",
        r#"{"engine": "Column store + R", "query": "covariance", "stream": "staged"}"#,
        &[],
    );
    assert_eq!(status, 200, "{body}");
    let staged_moved = scrape_moved() - before;
    let staged_reply = Json::parse(&body).unwrap();
    assert_eq!(
        staged_reply.get("outcome").expect("outcome").render(),
        expected,
        "a staged override must replay the configured streaming path"
    );

    let before = scrape_moved();
    let (status, body) = http_request(
        server.http,
        "POST",
        "/query",
        r#"{"engine": "Column store + R", "query": "covariance", "stream": "fused"}"#,
        &[],
    );
    assert_eq!(status, 200, "{body}");
    let fused_moved = scrape_moved() - before;
    let fused_reply = Json::parse(&body).unwrap();
    let fused_outcome = fused_reply.get("outcome").expect("outcome");
    let staged_outcome = staged_reply.get("outcome").expect("outcome");
    assert_eq!(
        fused_outcome.get("status").and_then(Json::as_str),
        Some("completed")
    );
    for phase in ["dm", "an"] {
        assert_eq!(
            fused_outcome.get(phase).expect(phase).render(),
            staged_outcome.get(phase).expect(phase).render(),
            "fused override drifted the {phase} phase costs"
        );
    }
    assert!(
        fused_moved < staged_moved,
        "fused override moved {fused_moved} bytes, not below the staged {staged_moved}"
    );

    // An unknown mode is a clean request error.
    let (status, body) = http_request(
        server.http,
        "POST",
        "/query",
        r#"{"engine": "Column store + R", "query": "covariance", "stream": "bogus"}"#,
        &[],
    );
    assert_eq!(status, 400, "{body}");
    server.shutdown();
}

#[test]
fn explain_frames_match_the_direct_render() {
    let server = start_server(ServeOptions::default());
    let mut req = Json::obj();
    req.set("type", Json::from("explain"));
    req.set("engine", Json::from("SciDB"));
    req.set("query", Json::from("covariance"));
    req.set("json", Json::Bool(true));
    let reply = client_request(server.frame, None, &req).unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("result"));

    let harness = Harness::new(sim_config()).unwrap();
    let expected = figures::explain_json(
        &harness,
        SizeClass::Small,
        1,
        Some("SciDB"),
        Some(Query::from_name("covariance").unwrap()),
    )
    .unwrap();
    assert_eq!(
        reply.get("explain_json").and_then(Json::as_str),
        Some(expected.as_str())
    );
    server.shutdown();
}

#[test]
fn http_status_metrics_and_error_paths() {
    let server = start_server(ServeOptions::default().with_queue_depth(16));

    let (status, body) = http_request(server.http, "GET", "/status", "", &[]);
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("service").and_then(Json::as_str), Some("serve"));
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("serving"));
    assert_eq!(
        doc.get("fingerprint").and_then(Json::as_str),
        Some(config_fingerprint(&sim_config()).as_str())
    );
    assert_eq!(doc.get("plans").and_then(Json::as_u64), Some(5));
    assert_eq!(doc.get("queue_depth").and_then(Json::as_u64), Some(16));

    // One served query populates every counter family.
    let (status, reply) = http_request(
        server.http,
        "POST",
        "/query",
        r#"{"engine": "SciDB", "query": "covariance"}"#,
        &[],
    );
    assert_eq!(status, 200, "{reply}");
    let (status, metrics) = http_request(server.http, "GET", "/metrics", "", &[]);
    assert_eq!(status, 200);
    assert!(metrics.contains("genbase_queries_total{engine=\"SciDB\"} 1"));
    assert!(metrics.contains("genbase_served_total 1"));
    assert!(metrics.contains("genbase_query_failures_total 0"));
    assert!(metrics.contains("genbase_phase_sim_nanos_total{phase=\"dm\"}"));
    assert!(metrics.contains("genbase_phase_sim_nanos_total{phase=\"analytics\"}"));
    assert!(metrics.contains("genbase_rejected_total{reason=\"over_budget\"} 0"));
    assert!(metrics.contains("genbase_rejected_total{reason=\"queue_full\"} 0"));
    assert!(metrics.contains("genbase_queue_depth 0"));
    assert!(metrics.contains("genbase_mem_reserved_bytes 0"));
    // A materializing server streams nothing: the counters exist but stay 0.
    assert!(metrics.contains("genbase_stream_batches_total 0"));
    assert!(metrics.contains("genbase_spill_bytes_total 0"));
    let moved: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("genbase_bytes_moved_total "))
        .expect("bytes-moved counter")
        .parse()
        .unwrap();
    assert!(moved > 0, "a completed query must move storage-layer bytes");

    // Error paths answer with named statuses, never a closed socket.
    // A stream override needs a server started with --stream.
    let (status, body) = http_request(
        server.http,
        "POST",
        "/query",
        r#"{"engine": "SciDB", "query": "covariance", "stream": "fused"}"#,
        &[],
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("--stream"), "{body}");
    assert_eq!(http_request(server.http, "GET", "/nope", "", &[]).0, 404);
    assert_eq!(http_request(server.http, "GET", "/query", "", &[]).0, 405);
    assert_eq!(
        http_request(server.http, "POST", "/query", "not json", &[]).0,
        400
    );
    assert_eq!(
        http_request(server.http, "POST", "/query", r#"{"engine": "SciDB"}"#, &[]).0,
        400
    );
    assert_eq!(
        http_request(
            server.http,
            "POST",
            "/query",
            r#"{"engine": "NoDB", "query": "covariance"}"#,
            &[]
        )
        .0,
        400
    );
    server.shutdown();
}

#[test]
fn over_budget_requests_get_clean_rejections_not_ooms() {
    let estimate = working_set_estimate(&sim_config(), SizeClass::Small);
    let server = start_server(
        ServeOptions::default()
            .with_mem_budget(estimate - 1)
            .with_queue_depth(4),
    );

    // Framed: a `busy` frame with retry=false — this estimate can never fit.
    let reply = client_request(server.frame, None, &query_frame("SciDB", "covariance")).unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("busy"));
    assert!(
        matches!(reply.get("retry"), Some(Json::Bool(false))),
        "an estimate over the whole budget is not retryable"
    );
    assert!(reply
        .get("reason")
        .and_then(Json::as_str)
        .unwrap()
        .contains("memory budget"));

    // HTTP: a clean 429 with the same reason.
    let (status, body) = http_request(
        server.http,
        "POST",
        "/query",
        r#"{"engine": "SciDB", "query": "covariance"}"#,
        &[],
    );
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("memory budget"));

    let (_, metrics) = http_request(server.http, "GET", "/metrics", "", &[]);
    assert!(metrics.contains("genbase_rejected_total{reason=\"over_budget\"} 2"));
    assert!(metrics.contains(&format!("genbase_mem_budget_bytes {}", estimate - 1)));

    let report = server.shutdown();
    assert_eq!(
        report,
        ServeReport {
            served: 0,
            failed: 0,
            rejected: 2
        }
    );
}

#[test]
fn a_budget_for_one_admits_contending_clients_in_turn() {
    let estimate = working_set_estimate(&sim_config(), SizeClass::Small);
    let server = start_server(
        ServeOptions::default()
            .with_mem_budget(estimate)
            .with_queue_depth(8),
    );

    // Four clients contend for a budget that fits exactly one working set:
    // whoever collides queues, is admitted when the reservation frees, and
    // everyone gets a real answer.
    let frame = server.frame;
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                client_request(frame, None, &query_frame("SciDB", "covariance"))
            })
        })
        .collect();
    for handle in handles {
        let reply = handle.join().unwrap().unwrap();
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("result"),
            "{}",
            reply.render()
        );
    }

    let (_, body) = http_request(server.http, "GET", "/status", "", &[]);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("mem_reserved").and_then(Json::as_u64),
        Some(0),
        "all reservations released after the runs"
    );
    let report = server.shutdown();
    assert_eq!(report.served, 4);
    assert_eq!((report.failed, report.rejected), (0, 0));
}

#[test]
fn auth_token_gates_query_submission() {
    let server = start_server(ServeOptions::default().with_auth_token("sesame"));

    // Framed: no token → rejected at the handshake, token never echoed.
    let err = client_request(server.frame, None, &query_frame("SciDB", "covariance")).unwrap_err();
    assert!(err.to_string().contains("auth token"), "{err}");
    assert!(!err.to_string().contains("sesame"));
    let mut status_req = Json::obj();
    status_req.set("type", Json::from("status"));
    let reply = client_request(server.frame, Some("sesame"), &status_req).unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("status"));
    assert!(!reply.render().contains("sesame"));

    // HTTP: /query needs the bearer token; observability stays open.
    let body = r#"{"engine": "SciDB", "query": "covariance"}"#;
    assert_eq!(
        http_request(server.http, "POST", "/query", body, &[]).0,
        401
    );
    assert_eq!(
        http_request(
            server.http,
            "POST",
            "/query",
            body,
            &[("Authorization", "Bearer wrong")]
        )
        .0,
        401
    );
    assert_eq!(
        http_request(
            server.http,
            "POST",
            "/query",
            body,
            &[("Authorization", "Bearer sesame")]
        )
        .0,
        200
    );
    assert_eq!(http_request(server.http, "GET", "/status", "", &[]).0, 200);
    assert_eq!(http_request(server.http, "GET", "/metrics", "", &[]).0, 200);
    server.shutdown();
}

/// Extract one metric's value from a Prometheus text exposition.
fn metric(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} not an integer"))
}

#[test]
fn repeat_queries_replay_byte_identically_from_the_caches() {
    let server = start_server(
        ServeOptions::default()
            .with_cache_budget(256 << 20)
            .with_result_cache(),
    );

    // The batch side of the identity: the cold scheduler's rendering of
    // the same cell, which every served answer — cold, artifact-warm, and
    // result-replayed — must match byte for byte.
    let config = sim_config();
    let key = CellKey {
        figure: FigureId::Fig1,
        query: Query::Covariance,
        size: SizeClass::Small,
        nodes: 1,
        engine: "Postgres + R".to_string(),
    };
    let expected = Scheduler::new(config)
        .unwrap()
        .run_cell(&key, 2)
        .unwrap()
        .to_json()
        .render();

    // Framed: cold, then replayed — the full reply frames must be equal.
    let request = query_frame(&key.engine, key.query.name());
    let cold = client_request(server.frame, None, &request).unwrap();
    let warm = client_request(server.frame, None, &request).unwrap();
    assert_eq!(cold.get("outcome").expect("outcome").render(), expected);
    assert_eq!(
        cold.render(),
        warm.render(),
        "a result-cache replay must be byte-identical to the cold reply"
    );

    // HTTP: the same two requests, the same byte-identity on raw bodies.
    let body = format!(
        "{{\"engine\": \"{}\", \"query\": \"{}\"}}",
        key.engine,
        key.query.name()
    );
    let (status_a, first) = http_request(server.http, "POST", "/query", &body, &[]);
    let (status_b, second) = http_request(server.http, "POST", "/query", &body, &[]);
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(first, second, "HTTP replay must be byte-identical");
    assert_eq!(
        Json::parse(&first)
            .unwrap()
            .get("outcome")
            .expect("outcome")
            .render(),
        expected
    );

    // The caches actually did the work: the artifact cache filled on the
    // cold run, and three of the four requests replayed the stored result.
    let (_, metrics) = http_request(server.http, "GET", "/metrics", "", &[]);
    assert!(metric(&metrics, "genbase_cache_hits_total") > 0);
    assert!(metric(&metrics, "genbase_cache_misses_total") > 0);
    assert_eq!(metric(&metrics, "genbase_result_cache_hits_total"), 3);
    assert!(metric(&metrics, "genbase_cache_bytes") > 0);

    let (_, body) = http_request(server.http, "GET", "/status", "", &[]);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("result_cache"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("result_cache_hits").and_then(Json::as_u64), Some(3));
    assert_eq!(
        doc.get("result_cache_entries").and_then(Json::as_u64),
        Some(1)
    );
    // The artifact cache filled on the cold run; the repeats never reached
    // it (the result cache answered first), so its own hits stay 0 here —
    // artifact hits are exercised by the admission-estimate test below.
    assert!(doc.get("cache_misses").and_then(Json::as_u64).unwrap() > 0);

    let report = server.shutdown();
    assert_eq!(report.served, 4, "replays count as served queries");
    assert_eq!((report.failed, report.rejected), (0, 0));
}

#[test]
fn warm_artifacts_shrink_the_admission_estimate() {
    // The quick scale floors the working-set estimate, which would mask
    // the shrink; 0.048 puts Small at 240x240 (1.8 MB estimated), with a
    // 460 KB microarray artifact to subtract once it is resident.
    let mut config = sim_config();
    config.scale = 0.048;
    let cold_estimate = working_set_estimate(&config, SizeClass::Small);
    let server = start_server_with(
        config,
        // No result cache: the repeat query must reach admission to show
        // the smaller reservation.
        ServeOptions::default().with_cache_budget(256 << 20),
    );

    let request = query_frame("SciDB", "covariance");
    client_request(server.frame, None, &request).unwrap();
    let (_, metrics) = http_request(server.http, "GET", "/metrics", "", &[]);
    assert_eq!(
        metric(&metrics, "genbase_admission_estimate_bytes"),
        cold_estimate,
        "the first query reserves the full cold estimate"
    );

    client_request(server.frame, None, &request).unwrap();
    let (_, metrics) = http_request(server.http, "GET", "/metrics", "", &[]);
    let warm_estimate = metric(&metrics, "genbase_admission_estimate_bytes");
    assert!(
        warm_estimate < cold_estimate,
        "resident artifacts must shrink the reservation \
         (warm {warm_estimate} vs cold {cold_estimate})"
    );
    assert!(
        warm_estimate >= 1 << 20,
        "the estimate never shrinks below the admission floor"
    );
    server.shutdown();
}

#[test]
fn a_tiny_cache_budget_degrades_to_correct_cold_runs() {
    // A budget too small for any artifact forces every fill to fail or
    // evict; the server must still answer, byte-identical to batch.
    let server = start_server(ServeOptions::default().with_cache_budget(4096));
    let key = CellKey {
        figure: FigureId::Fig1,
        query: Query::Svd,
        size: SizeClass::Small,
        nodes: 1,
        engine: "Column store + UDFs".to_string(),
    };
    let expected = Scheduler::new(sim_config())
        .unwrap()
        .run_cell(&key, 2)
        .unwrap()
        .to_json()
        .render();
    for _ in 0..2 {
        let reply = client_request(
            server.frame,
            None,
            &query_frame(&key.engine, key.query.name()),
        )
        .unwrap();
        assert_eq!(reply.get("outcome").expect("outcome").render(), expected);
    }
    server.shutdown();
}

#[test]
fn drain_says_bye_to_idle_connections_and_reports_final_tallies() {
    let server = start_server(ServeOptions::default());

    // One answered query so the final report has something to count.
    let reply = client_request(server.frame, None, &query_frame("SciDB", "covariance")).unwrap();
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("result"));

    // An idle framed connection sits in the server's poll loop...
    let mut idle = TcpStream::connect(server.frame).unwrap();
    let mut hello = Json::obj();
    hello.set("type", Json::from("hello"));
    hello.set("protocol", Json::from(PROTOCOL));
    hello.set("role", Json::from("client"));
    write_frame(&mut idle, &hello).unwrap();
    let welcome = read_frame_opt(&mut idle).unwrap().unwrap();
    assert_eq!(welcome.get("type").and_then(Json::as_str), Some("welcome"));
    assert_eq!(
        welcome.get("fingerprint").and_then(Json::as_str),
        Some(config_fingerprint(&sim_config()).as_str())
    );

    // ...and is told goodbye when the server drains.
    server.stop.store(true, Ordering::Relaxed);
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let bye = read_frame_opt(&mut idle)
        .unwrap()
        .expect("bye before close");
    assert_eq!(bye.get("type").and_then(Json::as_str), Some("bye"));
    assert_eq!(bye.get("reason").and_then(Json::as_str), Some("draining"));

    let report = server.handle.join().unwrap().unwrap();
    assert_eq!(
        report,
        ServeReport {
            served: 1,
            failed: 0,
            rejected: 0
        }
    );
}
