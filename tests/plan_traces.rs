//! Trace-accounting conformance tier: for every engine × query (and node
//! count), the per-operator plan trace must be a *faithful decomposition*
//! of the reported phase split — every op cost finite and non-negative,
//! analytics kernels attributed to the analytics phase, and the per-phase
//! rollup equal to `PhaseTimes` bit-for-bit (not approximately: the phases
//! are defined as the rollup, and these tests pin that no engine sneaks
//! costs in behind the trace's back).

use genbase::plan::OpKind;
use genbase::prelude::*;
use genbase_datagen::SizeClass;
use std::time::Duration;

fn config() -> HarnessConfig {
    HarnessConfig {
        scale: 0.012, // 60x60 small
        sizes: vec![SizeClass::Small],
        cutoff: Duration::from_secs(120),
        r_mem_bytes: u64::MAX,
        node_counts: vec![1, 2],
        ..HarnessConfig::quick()
    }
}

fn completed_cells(h: &Harness) -> Vec<(String, Query, usize, QueryReport)> {
    let mut out = Vec::new();
    for engine in engines::all_engines() {
        for query in Query::ALL {
            for nodes in [1usize, 2] {
                let rec = h
                    .run_cell(engine.as_ref(), query, SizeClass::Small, nodes)
                    .unwrap_or_else(|e| panic!("{} / {query:?} / n{nodes}: {e}", engine.name()));
                if let RunOutcome::Completed(report) = rec.outcome {
                    out.push((engine.name().to_string(), query, nodes, report));
                }
            }
        }
    }
    out
}

/// Measured mode: walls are real, so exact rollup equality is the strong
/// form of the invariant.
#[test]
fn per_op_costs_sum_exactly_to_phase_times() {
    let h = Harness::new(config()).unwrap();
    let cells = completed_cells(&h);
    // All 12 engines contribute at least their single-node cells.
    assert!(cells.len() > 50, "got {} completed cells", cells.len());
    for (engine, query, nodes, report) in &cells {
        let tag = format!("{engine} / {query:?} / n{nodes}");
        assert!(!report.trace.ops.is_empty(), "{tag}: empty trace");
        for op in &report.trace.ops {
            let c = &op.cost;
            assert!(
                c.wall_secs.is_finite() && c.wall_secs >= 0.0,
                "{tag} op {:?}: bad wall {}",
                op.label,
                c.wall_secs
            );
            assert!(
                c.model_secs.is_finite() && c.model_secs >= 0.0,
                "{tag} op {:?}: bad model cost {}",
                op.label,
                c.model_secs
            );
            assert!(
                c.sim_secs().is_finite() && c.sim_secs() >= 0.0,
                "{tag} op {:?}: bad sim cost",
                op.label
            );
            // Kernel invocations are analytics; the datamgmt/analytics
            // attribution of everything else is each engine's own (that
            // difference is what the paper measures), but a kernel in the
            // DM phase would corrupt the Figure 2/4 split.
            if op.kind == OpKind::Analytics {
                assert_eq!(
                    op.phase,
                    genbase::plan::Phase::Analytics,
                    "{tag}: kernel op {:?} attributed to data management",
                    op.label
                );
            }
        }
        let roll = report.trace.phase_times();
        for (name, got, want) in [
            (
                "dm wall",
                roll.data_management.wall_secs,
                report.phases.data_management.wall_secs,
            ),
            (
                "dm sim",
                roll.data_management.sim_secs,
                report.phases.data_management.sim_secs,
            ),
            (
                "an wall",
                roll.analytics.wall_secs,
                report.phases.analytics.wall_secs,
            ),
            (
                "an sim",
                roll.analytics.sim_secs,
                report.phases.analytics.sim_secs,
            ),
        ] {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{tag}: {name} rollup {got} != phases {want}"
            );
        }
        assert_eq!(
            roll.data_management.sim_bytes, report.phases.data_management.sim_bytes,
            "{tag}: dm bytes"
        );
        assert_eq!(
            roll.analytics.sim_bytes, report.phases.analytics.sim_bytes,
            "{tag}: an bytes"
        );
    }
}

/// SimOnly mode: the harness zeroes the trace and the phases together, so
/// the sums-exactly invariant survives and every wall entry is zero.
#[test]
fn sim_only_zeroes_trace_walls_and_keeps_rollup_exact() {
    let h = Harness::new(config().sim_only()).unwrap();
    for (engine, query, nodes, report) in completed_cells(&h) {
        let tag = format!("{engine} / {query:?} / n{nodes}");
        for op in &report.trace.ops {
            assert_eq!(op.cost.wall_secs, 0.0, "{tag} op {:?}", op.label);
        }
        let roll = report.trace.phase_times();
        assert_eq!(
            roll.data_management.sim_secs.to_bits(),
            report.phases.data_management.sim_secs.to_bits(),
            "{tag}: dm sim"
        );
        assert_eq!(
            roll.analytics.sim_secs.to_bits(),
            report.phases.analytics.sim_secs.to_bits(),
            "{tag}: an sim"
        );
    }
}

/// The datamgmt vs analytics attribution of the physical lowering is pinned
/// for one representative of each engine family: these sequences *are* the
/// paper's per-system workflows, so a refactor that reshuffles them should
/// fail loudly.
#[test]
fn physical_lowering_sequences_are_pinned() {
    use genbase::plan::Phase::{Analytics as An, DataManagement as Dm};
    use OpKind::*;
    type Lowering = &'static [(OpKind, genbase::plan::Phase)];
    let h = Harness::new(config().sim_only()).unwrap();
    let expect: [(&str, Query, Lowering); 6] = [
        (
            // Export bridge: the paper's copy-and-reformat path.
            "Postgres + R",
            Query::Svd,
            &[
                (Filter, Dm),
                (Join, Dm),
                (Export, Dm),
                (Restructure, Dm),
                (Analytics, An),
            ],
        ),
        (
            // UDF bridge: marshalling penalty on the biclustering query.
            "Column store + UDFs",
            Query::Biclustering,
            &[
                (Filter, Dm),
                (Join, Dm),
                (Restructure, Dm),
                (Marshal, Dm),
                (Analytics, An),
            ],
        ),
        (
            // Madlib: covariance simulated in SQL — no restructure at all.
            "Postgres + Madlib",
            Query::Covariance,
            &[(Filter, Dm), (Join, Dm), (Analytics, An), (Join, Dm)],
        ),
        (
            // R: load + in-memory subsets; joins fold away.
            "Vanilla R",
            Query::Regression,
            &[
                (Restructure, Dm),
                (Filter, Dm),
                (Restructure, Dm),
                (Analytics, An),
            ],
        ),
        (
            // SciDB: dimension arithmetic; Query 5 group-agg is DM.
            "SciDB",
            Query::Statistics,
            &[(Filter, Dm), (GroupAgg, Dm), (Analytics, An)],
        ),
        (
            // Hadoop: one MR job pipeline per logical op.
            "Hadoop",
            Query::Regression,
            &[(Filter, Dm), (Join, Dm), (Restructure, Dm), (Analytics, An)],
        ),
    ];
    for (engine_name, query, want) in expect {
        let engine = engines::all_engines()
            .into_iter()
            .find(|e| e.name() == engine_name)
            .unwrap();
        let rec = h
            .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
            .unwrap();
        let report = rec.outcome.report().expect("completed").clone();
        let got: Vec<(OpKind, genbase::plan::Phase)> = report
            .trace
            .ops
            .iter()
            .map(|op| (op.kind, op.phase))
            .collect();
        assert_eq!(got, want, "{engine_name} / {query:?} lowering changed");
    }
}

/// The memory dimension: every engine × query × nodes cell reports sane
/// storage-layer counters, and the ops that *are* the paper's headline
/// cost — restructure, export, marshal — always show bytes moved.
#[test]
fn memory_columns_cover_every_cell_and_restructure_ops_move_bytes() {
    use genbase::plan::Phase;
    let h = Harness::new(config().sim_only()).unwrap();
    let cells = completed_cells(&h);
    assert!(cells.len() > 50, "got {} completed cells", cells.len());
    for (engine, query, nodes, report) in &cells {
        let tag = format!("{engine} / {query:?} / n{nodes}");
        let mut peak_max = 0u64;
        for op in &report.trace.ops {
            let c = &op.cost;
            // u64 counters are non-negative by type; pin the structural
            // relations instead: a peak can never be below the bytes the
            // op held... nothing resident can exceed the run peak.
            peak_max = peak_max.max(c.peak_alloc_bytes);
            if matches!(
                op.kind,
                OpKind::Restructure | OpKind::Export | OpKind::Marshal
            ) && op.phase == Phase::DataManagement
            {
                assert!(
                    c.bytes_moved() > 0,
                    "{tag} op {:?}: restructure-class op moved no bytes",
                    op.label
                );
                assert!(c.bytes_in > 0 || c.bytes_out > 0, "{tag} op {:?}", op.label);
            }
        }
        let roll = report.memory();
        assert_eq!(
            roll.peak_alloc_bytes, peak_max,
            "{tag}: rollup peak is the max over op peaks"
        );
        assert!(
            roll.bytes_in > 0 && roll.bytes_out > 0,
            "{tag}: every cell moves storage-layer bytes somewhere"
        );
        assert!(
            roll.peak_alloc_bytes > 0,
            "{tag}: resident working sets must register"
        );
    }
}

/// A cell that exhausts `--mem-budget` renders as the paper's "infinite"
/// bar — a surfaced failure, never a hard error or abort — and the budget
/// value is part of the config fingerprint only when set.
#[test]
fn mem_budget_exhaustion_renders_infinite() {
    let mut cfg = config().sim_only();
    cfg.mem_budget = Some(10_000); // chunked store alone needs ~28.8 KB
    let with_budget = genbase::sched::config_fingerprint(&cfg);
    assert!(with_budget.contains("membudget=10000"));
    let mut unlimited = cfg.clone();
    unlimited.mem_budget = None;
    assert!(
        !genbase::sched::config_fingerprint(&unlimited).contains("membudget"),
        "unlimited default keeps the pre-memory fingerprint (old checkpoints load)"
    );

    let h = Harness::new(cfg).unwrap();
    let scidb = engines::SciDb::new();
    let rec = h
        .run_cell(&scidb, Query::Covariance, SizeClass::Small, 1)
        .unwrap();
    match rec.outcome {
        RunOutcome::Infinite { reason } => {
            assert!(
                reason.contains("memory"),
                "reason names the failure: {reason}"
            )
        }
        other => panic!("expected Infinite, got {other:?}"),
    }
    // Same engine, same data, unlimited budget: completes.
    let h = Harness::new(unlimited).unwrap();
    let rec = h
        .run_cell(&scidb, Query::Covariance, SizeClass::Small, 1)
        .unwrap();
    assert!(matches!(rec.outcome, RunOutcome::Completed(_)));
}

/// Traces survive the grid/wire serialization round trip bit-for-bit
/// (SimOnly costs are deterministic, so equality is meaningful).
#[test]
fn traces_round_trip_through_cell_outcomes() {
    let h = Harness::new(config().sim_only()).unwrap();
    let hadoop = engines::Hadoop::new();
    let rec = h
        .run_cell(&hadoop, Query::Covariance, SizeClass::Small, 1)
        .unwrap();
    let outcome = CellOutcome::from_run(&rec.outcome);
    let trace = outcome.trace().expect("completed cell carries trace");
    assert!(trace.iter().any(|op| op.cost.sim_nanos > 0));
    let back = CellOutcome::from_json(&outcome.to_json()).unwrap();
    assert_eq!(back, outcome, "trace must survive the wire format");
}
