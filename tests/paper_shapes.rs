//! Shape assertions against the paper's qualitative findings. Absolute
//! numbers differ (our substrate is a simulator, not the authors' 2013
//! testbed), but who-beats-whom must hold. Timing margins are deliberately
//! generous (2x) to stay robust on noisy CI machines.

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

fn mid_dataset() -> genbase_datagen::Dataset {
    // Big enough for architectural differences to dominate noise.
    generate(&GeneratorConfig::new(SizeSpec::custom(360, 360, 30))).unwrap()
}

fn total(engine: &dyn Engine, query: Query, data: &genbase_datagen::Dataset) -> f64 {
    let params = QueryParams::for_dataset(data);
    let ctx = ExecContext::single_node();
    engine
        .run(query, data, &params, &ctx)
        .unwrap_or_else(|e| panic!("{}/{query:?}: {e}", engine.name()))
        .phases
        .total_secs()
}

#[test]
fn hadoop_is_an_order_of_magnitude_behind_scidb() {
    // Paper: "Hadoop ... offers between one and two orders of magnitude
    // worse performance than the best system."
    let data = mid_dataset();
    let scidb = engines::SciDb::new();
    let hadoop = engines::Hadoop::new();
    for query in [Query::Regression, Query::Covariance, Query::Statistics] {
        let fast = total(&scidb, query, &data);
        let slow = total(&hadoop, query, &data);
        assert!(
            slow > 5.0 * fast,
            "{query:?}: Hadoop {slow:.4}s should be >> SciDB {fast:.4}s"
        );
    }
}

#[test]
fn export_bridge_costs_more_than_udf_bridge() {
    // Paper: "Moving the analytics inside the DBMS as user-defined
    // functions should always improve performance" (except biclustering).
    let data = mid_dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let col_r = engines::ColumnR::new();
    let col_udf = engines::ColumnUdf::new();
    for query in [Query::Regression, Query::Covariance, Query::Svd] {
        let export_dm = col_r
            .run(query, &data, &params, &ctx)
            .unwrap()
            .phases
            .data_management
            .total_secs();
        let udf_dm = col_udf
            .run(query, &data, &params, &ctx)
            .unwrap()
            .phases
            .data_management
            .total_secs();
        assert!(
            export_dm > udf_dm,
            "{query:?}: CSV export DM ({export_dm:.4}s) must exceed UDF DM ({udf_dm:.4}s)"
        );
    }
}

#[test]
fn udf_marshalling_hurts_biclustering() {
    // Paper: "there seem to be some issues with this interface ... such as
    // the biclustering query, in which the column store + UDFs
    // configuration performs significantly worse."
    let data = mid_dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let with_penalty = engines::ColumnUdf::new()
        .run(Query::Biclustering, &data, &params, &ctx)
        .unwrap()
        .phases
        .data_management
        .total_secs();
    let without = engines::ColumnR::new()
        .run(Query::Biclustering, &data, &params, &ctx)
        .unwrap();
    // ColumnR pays the CSV export instead; compare against SciDB (no
    // penalty at all) for the clean contrast.
    let clean = engines::SciDb::new()
        .run(Query::Biclustering, &data, &params, &ctx)
        .unwrap()
        .phases
        .data_management
        .total_secs();
    assert!(
        with_penalty > clean,
        "UDF marshalling must cost more than the array path: {with_penalty:.4} vs {clean:.4}"
    );
    drop(without);
}

#[test]
fn scidb_wins_data_management_against_row_store() {
    // Paper: the array DBMS avoids recasting tables to arrays entirely.
    let data = mid_dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    for query in [Query::Regression, Query::Covariance] {
        let scidb_dm = engines::SciDb::new()
            .run(query, &data, &params, &ctx)
            .unwrap()
            .phases
            .data_management
            .total_secs();
        let pg_dm = engines::PostgresR::new()
            .run(query, &data, &params, &ctx)
            .unwrap()
            .phases
            .data_management
            .total_secs();
        assert!(
            pg_dm > 2.0 * scidb_dm,
            "{query:?}: Postgres+R DM {pg_dm:.4}s vs SciDB DM {scidb_dm:.4}s"
        );
    }
}

#[test]
fn vanilla_r_dies_on_large_but_db_backed_r_survives() {
    // Paper: "as data sets get larger ... it is sometimes beneficial to
    // have a data management backend as R by itself cannot load the data
    // into memory."
    let data = mid_dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::single_node();
    // Budget that fits the filtered export but not R's full load
    // (~56 B/cell * 129,600 cells ≈ 7.3 MB peak at load).
    ctx.r_mem_bytes = Some(4_000_000);
    let r_err = engines::VanillaR::new()
        .run(Query::Regression, &data, &params, &ctx)
        .unwrap_err();
    assert!(r_err.is_infinite_result(), "vanilla R must OOM: {r_err}");
    // Postgres + R exports only the filtered quarter of the columns.
    let ok = engines::PostgresR::new().run(Query::Regression, &data, &params, &ctx);
    assert!(ok.is_ok(), "DB-backed R must survive: {:?}", ok.err());
}

#[test]
fn madlib_simulated_sql_analytics_are_slow() {
    // Paper: Madlib's C++ regression is fast, but SVD "in effect simulates
    // matrix computations in SQL" and is much slower than native kernels.
    let data = mid_dataset();
    let madlib = engines::PostgresMadlib::new();
    let scidb = engines::SciDb::new();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let madlib_svd = madlib
        .run(Query::Svd, &data, &params, &ctx)
        .unwrap()
        .phases
        .analytics
        .total_secs();
    let scidb_svd = scidb
        .run(Query::Svd, &data, &params, &ctx)
        .unwrap()
        .phases
        .analytics
        .total_secs();
    assert!(
        madlib_svd > 3.0 * scidb_svd,
        "SQL-simulated SVD {madlib_svd:.4}s vs native {scidb_svd:.4}s"
    );
}

#[test]
fn phi_accelerates_compute_heavy_queries_not_biclustering() {
    // Paper Table 1: covariance/SVD gain 2.6-2.9x, biclustering ~1.2x.
    let data = mid_dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let scidb = engines::SciDb::new();
    let phi = engines::SciDbPhi::new();
    let analytics = |engine: &dyn Engine, q: Query| {
        engine
            .run(q, &data, &params, &ctx)
            .unwrap()
            .phases
            .analytics
            .total_secs()
    };
    let cov_speedup = analytics(&scidb, Query::Covariance) / analytics(&phi, Query::Covariance);
    let bic_speedup = analytics(&scidb, Query::Biclustering) / analytics(&phi, Query::Biclustering);
    assert!(
        cov_speedup > bic_speedup,
        "covariance must benefit more than biclustering: {cov_speedup:.2} vs {bic_speedup:.2}"
    );
}

#[test]
fn r_single_thread_loses_analytics_at_scale() {
    // Paper: SciDB performs analytics "much faster than R" on bigger data.
    let data = mid_dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    if ctx.threads < 2 {
        return; // single-core CI machine: the contrast cannot show
    }
    let r_an = engines::VanillaR::new()
        .run(Query::Covariance, &data, &params, &ctx)
        .unwrap()
        .phases
        .analytics
        .total_secs();
    let scidb_an = engines::SciDb::new()
        .run(Query::Covariance, &data, &params, &ctx)
        .unwrap()
        .phases
        .analytics
        .total_secs();
    assert!(
        r_an > scidb_an,
        "single-threaded R analytics {r_an:.4}s vs parallel SciDB {scidb_an:.4}s"
    );
}
