//! Storage-layer conformance tier: the unified conversion kernels must be
//! bit-identical to the representation-specific code they replaced, and
//! the allocation tracker's accounting must stay exact under concurrency
//! (many kernels charging one tracker; many concurrent cells each holding
//! their own).

use genbase_linalg::Matrix;
use genbase_relational::{
    pivot_to_dense, ColumnTable, DataType, Relation, RowTable, Schema, Value,
};
use genbase_storage::{
    columnar_from_column_table, columnar_from_relation, export_csv_tracked, gather_chunked,
    pivot_csv_tracked, pivot_dense, select_cols_tracked, select_rows_tracked, triples_from_dense,
    MemTracker,
};
use genbase_util::Budget;
use proptest::prelude::*;

fn triple_schema() -> Schema {
    Schema::new(&[
        ("gene_id", DataType::Int),
        ("patient_id", DataType::Int),
        ("value", DataType::Float),
    ])
    .unwrap()
}

/// Random triple tables: ids deliberately collide so duplicate-key
/// last-write-wins resolution is exercised.
fn triple_rows(max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(
        ((0i64..17), (0i64..13), (-1000.0f64..1000.0)),
        1..max.max(2),
    )
    .prop_map(|trips| {
        trips
            .into_iter()
            .map(|(g, p, v)| vec![Value::Int(g), Value::Int(p), Value::Float(v)])
            .collect()
    })
}

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    ((1..max_dim), (1..max_dim)).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The one pivot kernel == the relational pivot it replaced, for both
    // source stores and at every thread count.
    #[test]
    fn pivot_kernel_matches_relational_pivot(rows in triple_rows(300)) {
        let tracker = MemTracker::unlimited();
        let budget = Budget::unlimited();
        let row_ids: Vec<i64> = (0..13).rev().collect();
        let col_ids: Vec<i64> = (0..17).collect();
        let rt = RowTable::from_rows(triple_schema(), rows.clone()).unwrap();
        let reference =
            pivot_to_dense(&rt, 1, 0, 2, &row_ids, &col_ids, &budget).unwrap();
        let from_rows = columnar_from_relation(&tracker, &rt).unwrap();
        let ct = ColumnTable::from_rows(triple_schema(), rows).unwrap();
        let from_cols = columnar_from_column_table(&tracker, ct).unwrap();
        for table in [&from_rows, &from_cols] {
            for threads in [1usize, 3, 8] {
                let got = pivot_dense(
                    &table.view(), (1, 0, 2), &row_ids, &col_ids, threads, &tracker, &budget,
                ).unwrap();
                prop_assert_eq!(got.data(), &reference.data[..]);
            }
        }
    }

    // Row→column materialization preserves row order and content exactly
    // (the Madlib SQL-simulation paths scan in this order, so order is
    // part of the bit-exactness contract).
    #[test]
    fn row_to_columnar_preserves_rows(rows in triple_rows(200)) {
        let tracker = MemTracker::unlimited();
        let rt = RowTable::from_rows(triple_schema(), rows.clone()).unwrap();
        let table = columnar_from_relation(&tracker, &rt).unwrap();
        let mut got = Vec::new();
        table.for_each(&mut |r: &[Value]| got.push(r.to_vec()));
        prop_assert_eq!(got, rows);
        prop_assert_eq!(tracker.current(), table.heap_bytes());
    }

    // Dense → triples → dense round trip is exact, and the CSV export
    // bridge (triples → text → dense) reproduces the same matrix.
    #[test]
    fn dense_triples_and_csv_bridges_are_exact(m in small_matrix(12)) {
        let tracker = MemTracker::unlimited();
        let budget = Budget::unlimited();
        let triples = triples_from_dense(&tracker, &m, triple_schema()).unwrap();
        let patient_ids: Vec<i64> = (0..m.rows() as i64).collect();
        let gene_ids: Vec<i64> = (0..m.cols() as i64).collect();
        let back = pivot_dense(
            &triples.view(), (1, 0, 2), &patient_ids, &gene_ids, 2, &tracker, &budget,
        ).unwrap();
        prop_assert_eq!(&back, &m);
        let text = export_csv_tracked(&triples, &tracker, &budget).unwrap();
        let via_csv =
            pivot_csv_tracked(&text, &patient_ids, &gene_ids, &tracker, &budget).unwrap();
        prop_assert_eq!(&via_csv, &m);
    }

    // Chunked gather == direct dense subsetting, and the tracked dense
    // selects == the plain `Matrix` selects they wrap.
    #[test]
    fn chunked_gather_matches_dense_select(m in small_matrix(14)) {
        let tracker = MemTracker::unlimited();
        let budget = Budget::unlimited();
        let arr = genbase_storage::chunked_from_dense(&tracker, &m, &budget).unwrap();
        let rows: Vec<usize> = (0..m.rows()).step_by(2).collect();
        let cols: Vec<usize> = (0..m.cols()).step_by(3).collect();
        let gathered = gather_chunked(&arr, &rows, &cols, 4, &tracker, &budget).unwrap();
        let direct = m.select_rows(&rows).select_cols(&cols);
        prop_assert_eq!(&gathered, &direct);
        prop_assert_eq!(
            select_rows_tracked(&tracker, &m, &rows),
            m.select_rows(&rows)
        );
        prop_assert_eq!(
            select_cols_tracked(&tracker, &m, &cols),
            m.select_cols(&cols)
        );
    }
}

/// Tracker counters are exact when hammered from many threads — the shape
/// of many kernels charging one cell's tracker concurrently.
#[test]
fn tracker_counts_exact_under_concurrency() {
    let tracker = MemTracker::unlimited();
    let threads = 8;
    let iters = 2_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let tracker = tracker.clone();
            scope.spawn(move || {
                for i in 0..iters {
                    let bytes = (t * 131 + i % 97) + 1;
                    tracker.charge(bytes).unwrap();
                    tracker.note_input(bytes);
                    tracker.note_output(bytes * 2, 1);
                    tracker.release(bytes);
                }
            });
        }
    });
    let expected: u64 = (0..threads)
        .map(|t| (0..iters).map(|i| (t * 131 + i % 97) + 1).sum::<u64>())
        .sum();
    assert_eq!(tracker.current(), 0, "all charges released");
    let scope = tracker.op_begin();
    let delta = tracker.op_delta(scope);
    assert_eq!(delta.bytes_in, 0, "op scope excludes earlier notes");
    // Cumulative counters: re-derive via a fresh scope over the totals.
    let fresh = MemTracker::unlimited();
    let s = fresh.op_begin();
    fresh.note_input(expected);
    let d = fresh.op_delta(s);
    assert_eq!(d.bytes_in, expected);
    assert!(tracker.peak() > 0);
}

/// Concurrent *cells* — one tracker each, charged from parallel threads —
/// never bleed into each other, and a per-cell limit fails exactly the
/// cell that exceeds it.
#[test]
fn concurrent_cells_account_independently() {
    let cells: Vec<MemTracker> = (0..6).map(|_| MemTracker::new(Some(10_000))).collect();
    std::thread::scope(|scope| {
        for (i, cell) in cells.iter().enumerate() {
            let cell = cell.clone();
            scope.spawn(move || {
                let bytes = (i as u64 + 1) * 1_000;
                cell.charge(bytes).unwrap();
                assert!(cell.charge(10_000).is_err(), "cell {i} over budget");
                cell.note_output(bytes, i as u64);
            });
        }
    });
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.current(), (i as u64 + 1) * 1_000, "cell {i} isolated");
    }
}

/// Pre-memory-dimension artifacts — trace ops without the `mem_*` columns,
/// grids without traces — must still load (the wire/file compatibility
/// contract).
#[test]
fn old_memoryless_artifacts_still_load() {
    use genbase::plan::OpTrace;
    use genbase::sched::ReportGrid;
    use genbase_util::Json;

    // A trace op exactly as PR 4 serialized it: no mem_in/mem_out/
    // mem_peak/rows keys.
    let old_op = Json::parse(
        r#"{"op":"restructure","phase":"dm","label":"pivot","wall":0.5,"sim_nanos":42,"model":0.0,"bytes":7}"#,
    )
    .unwrap();
    let op = OpTrace::from_json(&old_op).unwrap();
    assert_eq!(op.cost.sim_nanos, 42);
    assert_eq!(op.cost.bytes_in, 0);
    assert_eq!(op.cost.bytes_out, 0);
    assert_eq!(op.cost.peak_alloc_bytes, 0);
    assert_eq!(op.cost.rows_materialized, 0);

    // A PR 3-era grid cell: no trace at all.
    let old_grid = format!(
        "{{\"schema\":\"{}\",\"cells\":{{\
         \"fig1/covariance/small/n1/SciDB\":\
         {{\"status\":\"completed\",\"dm\":[0.5,0.25,10],\"an\":[1.0,0.0,0]}}}}}}",
        genbase::sched::GRID_SCHEMA
    );
    let grid = ReportGrid::from_json(&old_grid).unwrap();
    assert_eq!(grid.len(), 1);
}
