//! Property tests for the shared-runtime packed kernels: the parallel
//! packed matmul and the symmetric rank-k covariance must match the naive
//! serial references within 1e-9 at every thread count in {1, 2, 8}, and
//! results must be *thread-count invariant* (bit-identical across thread
//! counts — every output element is owned by exactly one task with a fixed
//! reduction order).

use genbase_linalg::{covariance, gram, matmul, matmul_naive, ExecOpts, Matrix};
use genbase_util::Pcg64;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = Pcg64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.normal() * 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_matmul_matches_naive_across_thread_counts(
        m in 1usize..140,
        k in 1usize..90,
        n in 1usize..140,
        seed in 0u64..1000,
    ) {
        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 0xa5a5, k, n);
        let reference = matmul_naive(&a, &b, &ExecOpts::serial()).unwrap();
        for threads in THREAD_COUNTS {
            let fast = matmul(&a, &b, &ExecOpts::with_threads(threads)).unwrap();
            prop_assert!(
                fast.approx_eq(&reference, 1e-9),
                "threads={} diverged from naive by {}",
                threads,
                fast.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn packed_matmul_thread_count_invariant(
        m in 65usize..200,
        k in 1usize..80,
        n in 33usize..120,
        seed in 0u64..1000,
    ) {
        let a = random_matrix(seed, m, k);
        let b = random_matrix(seed ^ 0x5a5a, k, n);
        let one = matmul(&a, &b, &ExecOpts::with_threads(1)).unwrap();
        for threads in [2usize, 8] {
            let multi = matmul(&a, &b, &ExecOpts::with_threads(threads)).unwrap();
            // Bit-identical, not merely close.
            prop_assert!(multi.approx_eq(&one, 0.0), "threads={threads} changed bits");
        }
    }

    #[test]
    fn syrk_covariance_matches_serial_reference(
        m in 2usize..120,
        n in 1usize..150,
        seed in 0u64..1000,
    ) {
        let a = random_matrix(seed, m, n);
        // Naive reference: centered AᵀA / (m - 1), straight triple loop.
        let means: Vec<f64> = (0..n)
            .map(|c| (0..m).map(|r| a.get(r, c)).sum::<f64>() / m as f64)
            .collect();
        let reference = Matrix::from_fn(n, n, |i, j| {
            (0..m)
                .map(|r| (a.get(r, i) - means[i]) * (a.get(r, j) - means[j]))
                .sum::<f64>()
                / (m - 1) as f64
        });
        for threads in THREAD_COUNTS {
            let fast = covariance(&a, &ExecOpts::with_threads(threads)).unwrap();
            prop_assert!(
                fast.approx_eq(&reference, 1e-9),
                "threads={} diverged by {}",
                threads,
                fast.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn covariance_and_gram_thread_count_invariant(
        m in 2usize..300,
        n in 129usize..200,
        seed in 0u64..1000,
    ) {
        let a = random_matrix(seed, m, n);
        let cov_one = covariance(&a, &ExecOpts::with_threads(1)).unwrap();
        let gram_one = gram(&a, &ExecOpts::with_threads(1)).unwrap();
        for threads in [2usize, 8] {
            let opts = ExecOpts::with_threads(threads);
            prop_assert!(covariance(&a, &opts).unwrap().approx_eq(&cov_one, 0.0));
            prop_assert!(gram(&a, &opts).unwrap().approx_eq(&gram_one, 0.0));
        }
    }

    #[test]
    fn gram_is_symmetric_at_any_thread_count(
        m in 1usize..60,
        n in 1usize..170,
        seed in 0u64..1000,
        threads in 1usize..9,
    ) {
        let a = random_matrix(seed, m, n);
        let g = gram(&a, &ExecOpts::with_threads(threads)).unwrap();
        prop_assert!(g.approx_eq(&g.transpose(), 0.0), "mirror must be exact");
    }
}
