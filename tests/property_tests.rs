//! Property-based tests (proptest) over the core data structures and
//! numerical invariants of the substrate crates.

use genbase_datagen::{DatasetPool, SizeClass};
use genbase_linalg::{covariance, gram, matmul, ExecOpts, Matrix, QrFactor};
use genbase_relational::{ColumnTable, DataType, Pred, RowTable, Schema, Value};
use genbase_stats::{average_ranks, wilcoxon_rank_sum};
use genbase_util::{csv, Budget};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    ((1..max_dim), (1..max_dim)).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(12), b in small_matrix(12)) {
        // (A*B)*1-vector == A*(B*1-vector): associativity on a probe vector.
        prop_assume!(a.cols() == b.rows());
        let opts = ExecOpts::serial();
        let ab = matmul(&a, &b, &opts).unwrap();
        let ones = vec![1.0; b.cols()];
        let via_ab = genbase_linalg::matvec(&ab, &ones);
        let bv = genbase_linalg::matvec(&b, &ones);
        let via_chain = genbase_linalg::matvec(&a, &bv);
        for (x, y) in via_ab.iter().zip(&via_chain) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn transpose_is_involution(m in small_matrix(16)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gram_matrices_are_symmetric_psd(m in small_matrix(10)) {
        let g = gram(&m, &ExecOpts::serial()).unwrap();
        prop_assert!(g.approx_eq(&g.transpose(), 1e-9));
        // PSD: xᵀGx >= 0 for probe vectors.
        for probe in 0..3 {
            let x: Vec<f64> = (0..g.cols()).map(|i| ((i + probe) % 5) as f64 - 2.0).collect();
            let gx = genbase_linalg::matvec(&g, &x);
            let quad: f64 = x.iter().zip(&gx).map(|(a, b)| a * b).sum();
            prop_assert!(quad >= -1e-6);
        }
    }

    #[test]
    fn covariance_is_symmetric_with_nonneg_diagonal(m in small_matrix(10)) {
        prop_assume!(m.rows() >= 2);
        let c = covariance(&m, &ExecOpts::serial()).unwrap();
        prop_assert!(c.approx_eq(&c.transpose(), 1e-9));
        for i in 0..c.cols() {
            prop_assert!(c.get(i, i) >= -1e-12);
        }
    }

    #[test]
    fn qr_reconstructs_tall_matrices(
        cols in 1usize..6,
        extra in 0usize..8,
        seed in 0u64..1000,
    ) {
        let rows = cols + extra;
        let mut rng = genbase_util::Pcg64::new(seed);
        let a = Matrix::from_fn(rows, cols, |_, _| rng.normal());
        let f = QrFactor::factor(a.clone(), &ExecOpts::serial()).unwrap();
        let qr = matmul(&f.q(), &f.r(), &ExecOpts::serial()).unwrap();
        prop_assert!(qr.approx_eq(&a, 1e-8));
    }

    #[test]
    fn ranks_sum_to_triangle_number(values in proptest::collection::vec(-50.0f64..50.0, 1..60)) {
        let ranks = average_ranks(&values);
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn wilcoxon_is_antisymmetric(
        a in proptest::collection::vec(-10.0f64..10.0, 2..20),
        b in proptest::collection::vec(-10.0f64..10.0, 2..20),
    ) {
        let ab = wilcoxon_rank_sum(&a, &b).unwrap();
        let ba = wilcoxon_rank_sum(&b, &a).unwrap();
        prop_assert!((ab.z + ba.z).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    #[test]
    fn csv_matrix_round_trip(m in small_matrix(10)) {
        let text = csv::write_matrix(m.data(), m.rows(), m.cols());
        let (data, rows, cols) = csv::parse_matrix(&text).unwrap();
        prop_assert_eq!(rows, m.rows());
        prop_assert_eq!(cols, m.cols());
        prop_assert_eq!(data, m.data().to_vec());
    }

    #[test]
    fn row_and_column_stores_agree_on_filters(
        rows in proptest::collection::vec((0i64..100, 0i64..2), 0..200),
        age_limit in 0i64..100,
        gender in 0i64..2,
    ) {
        let schema = Schema::new(&[("age", DataType::Int), ("gender", DataType::Int)]).unwrap();
        let values: Vec<Vec<Value>> = rows
            .iter()
            .map(|&(a, g)| vec![Value::Int(a), Value::Int(g)])
            .collect();
        let rt = RowTable::from_rows(schema.clone(), values.clone()).unwrap();
        let ct = ColumnTable::from_rows(schema, values).unwrap();
        let pred = Pred::IntLt(0, age_limit).and(Pred::IntEq(1, gender));
        let b = Budget::unlimited();
        let rf = rt.filter(&pred, &b).unwrap();
        let cf = ct.filter(&pred, &b).unwrap();
        prop_assert_eq!(rf.n_rows(), cf.n_rows());
        let mut c_rows = Vec::new();
        use genbase_relational::Relation;
        cf.for_each(&mut |r: &[Value]| c_rows.push(r.to_vec()));
        prop_assert_eq!(c_rows, rf.scan());
    }

    #[test]
    fn bicluster_msr_nonnegative_and_bounded(
        seed in 0u64..500,
        rows in 3usize..12,
        cols in 3usize..12,
    ) {
        let mut rng = genbase_util::Pcg64::new(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.normal());
        let all_rows: Vec<usize> = (0..rows).collect();
        let all_cols: Vec<usize> = (0..cols).collect();
        let msr = genbase_bicluster::mean_squared_residue(&m, &all_rows, &all_cols);
        prop_assert!(msr >= 0.0);
        // MSR is bounded by the matrix variance (residue removes means).
        let mean: f64 = m.data().iter().sum::<f64>() / (rows * cols) as f64;
        let var: f64 = m.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (rows * cols) as f64;
        prop_assert!(msr <= var + 1e-9);
    }

    #[test]
    fn array_engine_select_matches_dense(
        seed in 0u64..200,
        chunk in 1usize..9,
    ) {
        let mut rng = genbase_util::Pcg64::new(seed);
        let m = Matrix::from_fn(17, 13, |_, _| rng.normal());
        let arr = genbase_array::Array2D::from_matrix_chunked(
            &m, chunk, chunk, &Budget::unlimited(),
        ).unwrap();
        let rows: Vec<usize> = (0..17).step_by(2).collect();
        let cols: Vec<usize> = (0..13).step_by(3).collect();
        let sel = arr
            .select(&rows, &cols, &Budget::unlimited())
            .unwrap()
            .to_matrix(&Budget::unlimited())
            .unwrap();
        let dense = m.select_rows(&rows).select_cols(&cols);
        prop_assert!(sel.approx_eq(&dense, 0.0));
    }

    #[test]
    fn dataset_pool_is_trigger_order_invariant(
        seed in 0u64..40,
        first_medium in proptest::bool::ANY,
        concurrency in 1usize..9,
    ) {
        // Same (scale, seed, class) must yield a bit-identical dataset no
        // matter which cell triggers generation, in what order, or how many
        // trigger it concurrently.
        let scale = 0.004; // 20x20 small, 60x80 medium — cheap enough to sweep
        let reference = DatasetPool::new(scale, seed);
        let ref_small = reference.get(SizeClass::Small).unwrap();

        let pool = DatasetPool::new(scale, seed);
        if first_medium {
            // A different class generating first must not perturb Small.
            let _m = pool.get(SizeClass::Medium).unwrap();
        }
        let handles = genbase_util::parallel_map(concurrency, concurrency, |_| {
            pool.get(SizeClass::Small).unwrap()
        });
        for h in &handles {
            // One generation, shared by every concurrent requester...
            prop_assert!(std::sync::Arc::ptr_eq(h, &handles[0]));
            // ...bit-identical to an independent pool's generation.
            prop_assert_eq!(h.expression.data(), ref_small.expression.data());
            prop_assert_eq!(&h.patients, &ref_small.patients);
            prop_assert_eq!(&h.genes, &ref_small.genes);
            prop_assert_eq!(&h.ontology, &ref_small.ontology);
        }
        prop_assert_eq!(pool.handle_count(SizeClass::Small), handles.len());
    }

    #[test]
    fn dataset_pool_seeds_are_independent(seed in 0u64..40) {
        // Different seeds must actually change the data (no accidental
        // seed-ignoring path in the pool).
        let scale = 0.004;
        let a = DatasetPool::new(scale, seed).get(SizeClass::Small).unwrap();
        let b = DatasetPool::new(scale, seed + 1).get(SizeClass::Small).unwrap();
        prop_assert_eq!(a.n_genes(), b.n_genes());
        prop_assert!(a.expression.data() != b.expression.data());
    }

    #[test]
    fn mapreduce_group_sum_matches_serial(
        pairs in proptest::collection::vec((0i64..20, -100.0f64..100.0), 0..300),
    ) {
        use genbase_mapreduce::hive::{Cell, HiveTable};
        use genbase_mapreduce::job::JobConfig;
        let table = HiveTable::new(
            pairs.iter().map(|&(k, v)| vec![Cell::I(k), Cell::F(v)]).collect(),
        );
        let cfg = JobConfig::local(3);
        let mr = table.group_sum(0, 1, &cfg).unwrap();
        let mut serial: std::collections::BTreeMap<i64, (f64, u64)> = Default::default();
        for &(k, v) in &pairs {
            let e = serial.entry(k).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        prop_assert_eq!(mr.len(), serial.len());
        for (k, s, c) in mr {
            let &(es, ec) = serial.get(&k).unwrap();
            prop_assert!((s - es).abs() < 1e-6);
            prop_assert_eq!(c, ec);
        }
    }
}
