//! Every engine must return the same answer to every query it supports —
//! the defining correctness property of a benchmark suite. Performance may
//! differ by orders of magnitude; results may not.

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

fn dataset() -> genbase_datagen::Dataset {
    generate(&GeneratorConfig::new(SizeSpec::custom(80, 70, 10))).unwrap()
}

#[test]
fn all_single_node_engines_agree_on_every_query() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let reference_engine = engines::SciDb::new();
    for query in Query::ALL {
        let reference = reference_engine
            .run(query, &data, &params, &ctx)
            .unwrap()
            .output;
        for engine in engines::single_node_engines() {
            if !engine.supports(query) {
                continue;
            }
            let output = engine
                .run(query, &data, &params, &ctx)
                .unwrap_or_else(|e| panic!("{} / {query:?}: {e}", engine.name()))
                .output;
            assert!(
                output.consistency_error(&reference, 1e-5).is_none(),
                "{} / {query:?} disagrees with SciDB: {:?}",
                engine.name(),
                output.consistency_error(&reference, 1e-5)
            );
        }
    }
}

#[test]
fn phi_configuration_matches_plain_scidb() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let scidb = engines::SciDb::new();
    let phi = engines::SciDbPhi::new();
    for query in genbase::figures::PHI_QUERIES {
        let a = scidb.run(query, &data, &params, &ctx).unwrap().output;
        let b = phi.run(query, &data, &params, &ctx).unwrap().output;
        assert!(
            a.consistency_error(&b, 1e-9).is_none(),
            "offload must not change results: {query:?}"
        );
    }
}

#[test]
fn outputs_are_deterministic_across_runs() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let engine = engines::SciDb::new();
    for query in Query::ALL {
        let a = engine.run(query, &data, &params, &ctx).unwrap().output;
        let b = engine.run(query, &data, &params, &ctx).unwrap().output;
        assert_eq!(a, b, "{query:?} must be bit-identical across runs");
    }
}

#[test]
fn regression_recovers_planted_signal() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let out = engines::SciDb::new()
        .run(Query::Regression, &data, &params, &ctx)
        .unwrap()
        .output;
    let QueryOutput::Regression {
        r_squared,
        coefficients,
        ..
    } = out
    else {
        panic!("wrong output kind")
    };
    // The generator plants a strong linear model over causal genes that all
    // pass the function filter.
    assert!(r_squared > 0.8, "R^2 = {r_squared}");
    // Causal genes should carry the largest |coefficients|.
    let mut ranked = coefficients.clone();
    ranked.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    let causal: Vec<i64> = data
        .truth
        .causal_genes
        .iter()
        .map(|&(g, _)| g as i64)
        .collect();
    let top_hits = ranked
        .iter()
        .take(causal.len())
        .filter(|(g, _)| causal.contains(g))
        .count();
    assert!(
        top_hits * 2 >= causal.len(),
        "at least half the planted causal genes in the top set: {top_hits}/{}",
        causal.len()
    );
}

#[test]
fn enrichment_finds_planted_terms() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let out = engines::SciDb::new()
        .run(Query::Statistics, &data, &params, &ctx)
        .unwrap()
        .output;
    let QueryOutput::Enrichment { per_term } = out else {
        panic!("wrong output kind")
    };
    // Module-aligned GO terms must test significant (module genes carry a
    // planted mean shift, so they rank high).
    for &term in &data.truth.aligned_terms {
        let (_, z, p) = per_term
            .iter()
            .find(|(t, _, _)| *t == term)
            .expect("aligned term tested");
        assert!(
            *z > 1.5 && *p < 0.15,
            "planted term {term} should enrich: z = {z}, p = {p}"
        );
    }
}
