//! Property tests for the coordinator wire codec
//! (`genbase_util::frame`): length-prefixed frames must round-trip
//! arbitrary JSON messages byte-exactly, in sequence, and reject every
//! truncation and oversized length prefix instead of misreading them.

use genbase_util::frame::{encode_frame, read_frame, read_frame_opt, MAX_FRAME_BYTES};
use genbase_util::Json;
use proptest::prelude::*;
use std::io::Cursor;

/// Arbitrary unicode-ish strings, including escapes-in-waiting (quotes,
/// backslashes, control characters) the JSON writer must escape.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x500, 0..12)
        .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

fn arb_leaf() -> impl Strategy<Value = Json> {
    (0..4usize, -1e9f64..1e9, arb_string()).prop_map(|(tag, num, s)| match tag {
        0 => Json::Null,
        1 => Json::Bool(num > 0.0),
        2 => Json::Num(num),
        _ => Json::Str(s),
    })
}

/// Arbitrary protocol-shaped messages: an object with a `type` tag, scalar
/// fields, and one nested array — the shape every coord frame takes.
fn arb_msg() -> impl Strategy<Value = Json> {
    (
        proptest::collection::vec((arb_string(), arb_leaf()), 0..6),
        proptest::collection::vec(arb_leaf(), 0..6),
    )
        .prop_map(|(pairs, items)| {
            let mut obj = Json::obj();
            obj.set("type", Json::from("msg"));
            for (k, v) in pairs {
                obj.set(&k, v);
            }
            obj.set("items", Json::Arr(items));
            obj
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_round_trip(msg in arb_msg()) {
        let frame = encode_frame(&msg).unwrap();
        let mut cursor = Cursor::new(frame.as_slice());
        let back = read_frame(&mut cursor).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(cursor.position() as usize, frame.len(), "no bytes left behind");
        // Deterministic: the same message always frames to the same bytes.
        prop_assert_eq!(encode_frame(&back).unwrap(), frame);
    }

    #[test]
    fn frame_sequences_preserve_order_and_boundaries(msgs in proptest::collection::vec(arb_msg(), 1..5)) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m).unwrap());
        }
        let mut cursor = Cursor::new(wire.as_slice());
        for m in &msgs {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
        prop_assert!(read_frame_opt(&mut cursor).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn every_truncation_is_rejected(msg in arb_msg(), fraction in 0.0f64..1.0) {
        let frame = encode_frame(&msg).unwrap();
        // Cut anywhere strictly inside the frame: inside the 4-byte prefix
        // or inside the payload. Either way the reader must error, never
        // return a message or block forever.
        let cut = ((frame.len() as f64 * fraction) as usize).min(frame.len() - 1);
        let mut cursor = Cursor::new(&frame[..cut]);
        if cut == 0 {
            // EOF exactly on a frame boundary is the one clean case.
            prop_assert!(read_frame_opt(&mut cursor).unwrap().is_none());
        } else {
            prop_assert!(read_frame_opt(&mut cursor).is_err(), "cut at {} of {}", cut, frame.len());
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(excess in 1u64..1 << 31) {
        let len = (MAX_FRAME_BYTES as u64 + excess).min(u32::MAX as u64) as u32;
        let mut wire = len.to_be_bytes().to_vec();
        wire.extend_from_slice(b"{}"); // readers must reject before the payload
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        prop_assert!(err.to_string().contains("cap"), "{}", err);
    }
}
