//! Failure injection: the paper's two failure modes — computation cutoff
//! and memory-allocation failure — must surface as clean "infinite"
//! outcomes from every engine family, never as panics or wrong answers.
//! Plus scheduler-level failures: a sweep killed mid-run must resume from
//! its checkpoint without re-running completed cells.

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};
use std::time::Duration;

fn dataset() -> genbase_datagen::Dataset {
    generate(&GeneratorConfig::new(SizeSpec::custom(200, 200, 16))).unwrap()
}

#[test]
fn expired_cutoff_yields_infinite_for_every_engine_family() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::single_node();
    // A cutoff that is already over when the engine starts.
    ctx.cutoff = Some(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));
    for engine in engines::single_node_engines() {
        for query in Query::ALL {
            if !engine.supports(query) {
                continue;
            }
            match engine.run(query, &data, &params, &ctx) {
                Err(e) => assert!(
                    e.is_infinite_result(),
                    "{} / {query:?}: expected cutoff, got {e}",
                    engine.name()
                ),
                Ok(_) => {
                    // Engines whose first budget checkpoint comes after the
                    // (tiny) work finishes may legitimately complete; that
                    // is acceptable only on the smallest phases.
                }
            }
        }
    }
}

#[test]
fn multi_node_cutoff_propagates_from_worker_threads() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::multi_node(4);
    ctx.cutoff = Some(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));
    let engine = engines::SciDb::new();
    let err = engine
        .run(Query::Covariance, &data, &params, &ctx)
        .unwrap_err();
    assert!(
        err.is_infinite_result(),
        "worker timeout must surface: {err}"
    );
}

#[test]
fn oom_during_r_load_is_clean_and_repeatable() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::single_node();
    ctx.r_mem_bytes = Some(100_000); // far below the ~2.2 MB load peak
    let engine = engines::VanillaR::new();
    for _ in 0..3 {
        let err = engine.run(Query::Svd, &data, &params, &ctx).unwrap_err();
        assert!(err.is_infinite_result());
    }
    // Recovery: a sane budget succeeds afterwards (no leaked accounting).
    ctx.r_mem_bytes = None;
    assert!(engine.run(Query::Svd, &data, &params, &ctx).is_ok());
}

#[test]
fn oom_in_export_bridge_r_side() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::single_node();
    // Enough for the DBMS work (unlimited — it is disk-backed) but not for
    // the R-side matrix after export: covariance exports sel_patients x all
    // genes (~10 x 200 cells) plus parse buffers; 1 KB cannot hold it.
    ctx.r_mem_bytes = Some(1024);
    let err = engines::PostgresR::new()
        .run(Query::Covariance, &data, &params, &ctx)
        .unwrap_err();
    assert!(
        err.is_infinite_result(),
        "R-side OOM must be infinite: {err}"
    );
}

#[test]
fn killed_sweep_resumes_from_checkpoint_without_rerunning_cells() {
    use genbase::figures;
    use genbase_datagen::SizeClass;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    let config = || {
        HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            cutoff: Duration::from_secs(120),
            r_mem_bytes: u64::MAX,
            node_counts: vec![1, 2],
            ..HarnessConfig::quick()
        }
        .sim_only()
    };
    let ckpt =
        std::env::temp_dir().join(format!("genbase-sweep-resume-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let sweep = SweepOptions::default()
        .with_cells_in_flight(2)
        .with_checkpoint(&ckpt);
    let executions: Arc<Mutex<HashMap<String, usize>>> = Arc::default();

    // Run 1: "kill" the sweep by failing every SVD cell before it executes.
    let mut sched = Scheduler::new(config()).unwrap();
    let counts = Arc::clone(&executions);
    sched.set_cell_hook(Box::new(move |key: &CellKey| {
        if key.query == Query::Svd {
            return Err(genbase_util::Error::invalid("injected kill"));
        }
        *counts.lock().unwrap().entry(key.id()).or_insert(0) += 1;
        Ok(())
    }));
    let err = sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
        .unwrap_err();
    assert!(err.to_string().contains("injected kill"));
    let partial = ReportGrid::load(&ckpt).expect("checkpoint written before the kill");
    assert!(partial.len() < 35, "killed cells must be missing");
    assert!(!partial.is_empty(), "completed cells must be checkpointed");

    // Run 2: resume without the failure. Only the missing cells execute.
    let mut sched = Scheduler::new(config()).unwrap();
    let counts = Arc::clone(&executions);
    sched.set_cell_hook(Box::new(move |key: &CellKey| {
        *counts.lock().unwrap().entry(key.id()).or_insert(0) += 1;
        Ok(())
    }));
    let resumed = sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
        .unwrap();
    assert_eq!(resumed.planned, 35);
    assert_eq!(
        resumed.skipped,
        partial.len(),
        "checkpointed cells must not rerun"
    );
    assert_eq!(resumed.executed, 35 - partial.len());

    // Across both runs, no cell executed twice and every cell executed once.
    let counts = executions.lock().unwrap();
    assert_eq!(counts.len(), 35, "every planned cell must eventually run");
    for (id, n) in counts.iter() {
        assert_eq!(*n, 1, "cell {id} executed {n} times");
    }
    drop(counts);

    // The resumed grid matches an uninterrupted sweep, byte for byte.
    let clean_sched = Scheduler::new(config()).unwrap();
    let clean = clean_sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    assert_eq!(resumed.grid.to_json(), clean.grid.to_json());
    let rendered_resumed = figures::render(
        FigureId::Fig1,
        sched.harness(),
        SizeClass::Small,
        &resumed.grid,
    )
    .unwrap()
    .render();
    let rendered_clean = figures::render(
        FigureId::Fig1,
        clean_sched.harness(),
        SizeClass::Small,
        &clean.grid,
    )
    .unwrap()
    .render();
    assert_eq!(rendered_resumed, rendered_clean);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn harness_converts_failures_without_crashing() {
    use genbase::harness::{Harness, HarnessConfig};
    use genbase_datagen::SizeClass;
    let cfg = HarnessConfig {
        scale: 0.014,
        sizes: vec![SizeClass::Small],
        cutoff: Duration::from_nanos(1),
        r_mem_bytes: 1,
        node_counts: vec![1],
        ..HarnessConfig::quick()
    };
    let h = Harness::new(cfg).unwrap();
    for engine in engines::single_node_engines() {
        for query in Query::ALL {
            let rec = h
                .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
                .unwrap();
            // Every cell must be a well-formed outcome (infinite or
            // unsupported under these hostile budgets — or completed, for
            // phases too short to hit a checkpoint).
            let _ = rec.outcome.cell();
        }
    }
}
