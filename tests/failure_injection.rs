//! Failure injection: the paper's two failure modes — computation cutoff
//! and memory-allocation failure — must surface as clean "infinite"
//! outcomes from every engine family, never as panics or wrong answers.
//! Plus scheduler-level failures: a sweep killed mid-run must resume from
//! its checkpoint without re-running completed cells.
//!
//! The chaos tier at the bottom drives the *coordinated* sweep through
//! `genbase_util::faults` plans — worker death mid-cell, torn checkpoint
//! writes, connection resets — and asserts the final grid is byte-identical
//! to an undisturbed serial run every time.

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};
use std::time::Duration;

fn dataset() -> genbase_datagen::Dataset {
    generate(&GeneratorConfig::new(SizeSpec::custom(200, 200, 16))).unwrap()
}

#[test]
fn expired_cutoff_yields_infinite_for_every_engine_family() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::single_node();
    // A cutoff that is already over when the engine starts.
    ctx.cutoff = Some(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));
    for engine in engines::single_node_engines() {
        for query in Query::ALL {
            if !engine.supports(query) {
                continue;
            }
            match engine.run(query, &data, &params, &ctx) {
                Err(e) => assert!(
                    e.is_infinite_result(),
                    "{} / {query:?}: expected cutoff, got {e}",
                    engine.name()
                ),
                Ok(_) => {
                    // Engines whose first budget checkpoint comes after the
                    // (tiny) work finishes may legitimately complete; that
                    // is acceptable only on the smallest phases.
                }
            }
        }
    }
}

#[test]
fn multi_node_cutoff_propagates_from_worker_threads() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::multi_node(4);
    ctx.cutoff = Some(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));
    let engine = engines::SciDb::new();
    let err = engine
        .run(Query::Covariance, &data, &params, &ctx)
        .unwrap_err();
    assert!(
        err.is_infinite_result(),
        "worker timeout must surface: {err}"
    );
}

#[test]
fn oom_during_r_load_is_clean_and_repeatable() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::single_node();
    ctx.r_mem_bytes = Some(100_000); // far below the ~2.2 MB load peak
    let engine = engines::VanillaR::new();
    for _ in 0..3 {
        let err = engine.run(Query::Svd, &data, &params, &ctx).unwrap_err();
        assert!(err.is_infinite_result());
    }
    // Recovery: a sane budget succeeds afterwards (no leaked accounting).
    ctx.r_mem_bytes = None;
    assert!(engine.run(Query::Svd, &data, &params, &ctx).is_ok());
}

#[test]
fn oom_in_export_bridge_r_side() {
    let data = dataset();
    let params = QueryParams::for_dataset(&data);
    let mut ctx = ExecContext::single_node();
    // Enough for the DBMS work (unlimited — it is disk-backed) but not for
    // the R-side matrix after export: covariance exports sel_patients x all
    // genes (~10 x 200 cells) plus parse buffers; 1 KB cannot hold it.
    ctx.r_mem_bytes = Some(1024);
    let err = engines::PostgresR::new()
        .run(Query::Covariance, &data, &params, &ctx)
        .unwrap_err();
    assert!(
        err.is_infinite_result(),
        "R-side OOM must be infinite: {err}"
    );
}

#[test]
fn killed_sweep_resumes_from_checkpoint_without_rerunning_cells() {
    use genbase::figures;
    use genbase_datagen::SizeClass;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    // This test's checkpoint writes pass through the `checkpoint.write`
    // fault site; hold the lock so a chaos test's plan cannot fire on them.
    let _guard = fault_lock();
    let config = || {
        HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            cutoff: Duration::from_secs(120),
            r_mem_bytes: u64::MAX,
            node_counts: vec![1, 2],
            ..HarnessConfig::quick()
        }
        .sim_only()
    };
    let ckpt =
        std::env::temp_dir().join(format!("genbase-sweep-resume-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let sweep = SweepOptions::default()
        .with_cells_in_flight(2)
        .with_checkpoint(&ckpt);
    let executions: Arc<Mutex<HashMap<String, usize>>> = Arc::default();

    // Run 1: "kill" the sweep by failing every SVD cell before it executes.
    let mut sched = Scheduler::new(config()).unwrap();
    let counts = Arc::clone(&executions);
    sched.set_cell_hook(Box::new(move |key: &CellKey| {
        if key.query == Query::Svd {
            return Err(genbase_util::Error::invalid("injected kill"));
        }
        *counts.lock().unwrap().entry(key.id()).or_insert(0) += 1;
        Ok(())
    }));
    let err = sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
        .unwrap_err();
    assert!(err.to_string().contains("injected kill"));
    let partial = ReportGrid::load(&ckpt).expect("checkpoint written before the kill");
    assert!(partial.len() < 35, "killed cells must be missing");
    assert!(!partial.is_empty(), "completed cells must be checkpointed");

    // Run 2: resume without the failure. Only the missing cells execute.
    let mut sched = Scheduler::new(config()).unwrap();
    let counts = Arc::clone(&executions);
    sched.set_cell_hook(Box::new(move |key: &CellKey| {
        *counts.lock().unwrap().entry(key.id()).or_insert(0) += 1;
        Ok(())
    }));
    let resumed = sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
        .unwrap();
    assert_eq!(resumed.planned, 35);
    assert_eq!(
        resumed.skipped,
        partial.len(),
        "checkpointed cells must not rerun"
    );
    assert_eq!(resumed.executed, 35 - partial.len());

    // Across both runs, no cell executed twice and every cell executed once.
    let counts = executions.lock().unwrap();
    assert_eq!(counts.len(), 35, "every planned cell must eventually run");
    for (id, n) in counts.iter() {
        assert_eq!(*n, 1, "cell {id} executed {n} times");
    }
    drop(counts);

    // The resumed grid matches an uninterrupted sweep, byte for byte.
    let clean_sched = Scheduler::new(config()).unwrap();
    let clean = clean_sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &SweepOptions::serial())
        .unwrap();
    assert_eq!(resumed.grid.to_json(), clean.grid.to_json());
    let rendered_resumed = figures::render(
        FigureId::Fig1,
        sched.harness(),
        SizeClass::Small,
        &resumed.grid,
    )
    .unwrap()
    .render();
    let rendered_clean = figures::render(
        FigureId::Fig1,
        clean_sched.harness(),
        SizeClass::Small,
        &clean.grid,
    )
    .unwrap()
    .render();
    assert_eq!(rendered_resumed, rendered_clean);
    let _ = std::fs::remove_file(&ckpt);
}

// ---------------------------------------------------------------------------
// Chaos tier: deterministic fault plans against the coordinated sweep.
//
// Fault plans are process-global and the test harness runs tests on
// parallel threads, so every test that installs a plan — or performs I/O
// through a named injection site another test's plan could fire on —
// serializes on `fault_lock` and clears the plan before releasing it.

/// Serialize tests that interact with the process-global fault plan.
fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A poisoned lock only means an earlier chaos test failed; its plan
    // state is still well-defined (we install/clear ourselves), so proceed.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn chaos_config() -> HarnessConfig {
    HarnessConfig {
        scale: 0.012,
        sizes: vec![genbase_datagen::SizeClass::Small],
        r_mem_bytes: u64::MAX,
        ..HarnessConfig::quick()
    }
    .sim_only()
}

/// The undisturbed serial run every chaos outcome must match byte for
/// byte: the grid JSON and the rendered Fig. 1. Computed once (it is
/// pure — `--sim-only` — and touches no fault sites).
fn chaos_golden() -> &'static (String, String) {
    use genbase_datagen::SizeClass;
    static GOLDEN: std::sync::OnceLock<(String, String)> = std::sync::OnceLock::new();
    GOLDEN.get_or_init(|| {
        let sched = Scheduler::new(chaos_config()).unwrap();
        let out = sched
            .run_sweep(&[FigureId::Fig1], SizeClass::Small, &SweepOptions::serial())
            .unwrap();
        let rendered =
            genbase::figures::render(FigureId::Fig1, sched.harness(), SizeClass::Small, &out.grid)
                .unwrap()
                .render();
        (out.grid.to_json(), rendered)
    })
}

fn chaos_render(grid: &ReportGrid) -> String {
    use genbase_datagen::SizeClass;
    let harness = Harness::new(chaos_config()).unwrap();
    genbase::figures::render(FigureId::Fig1, &harness, SizeClass::Small, grid)
        .unwrap()
        .render()
}

/// A worker killed by an injected fault at its second intra-cell snapshot
/// save dies mid-kernel; the re-issued lease carries the first snapshot,
/// and the healthy worker's resumed computation is bit-identical.
#[test]
fn chaos_worker_killed_mid_cell_resumes_from_streamed_progress() {
    use genbase::coord::{run_worker, CoordOptions, Coordinator};
    use genbase_datagen::SizeClass;
    use genbase_util::faults::{self, FaultPlan};
    use genbase_util::progress::MemoryProgress;
    use genbase_util::ProgressHandle;
    use std::sync::Arc;

    let _guard = fault_lock();

    // Probe (no plan installed): the plan must produce at least two
    // snapshot saves overall, or `worker.progress@2` could never fire. A
    // single worker leases cells in plan order, so the serial probe visits
    // the site in exactly the order the doomed worker will.
    let sched = Scheduler::new(chaos_config()).unwrap();
    let mut saves = 0;
    for cell in sched.plan(&[FigureId::Fig1], SizeClass::Small) {
        let sink = Arc::new(MemoryProgress::new());
        sched
            .run_cell_with_progress(&cell, 1, Some(ProgressHandle::new(sink.clone())))
            .expect("probe cell");
        saves += sink.saves();
    }
    assert!(
        saves >= 2,
        "the Fig. 1 plan must checkpoint intra-cell at least twice (got {saves}); \
         the kill below would never fire"
    );

    faults::install(FaultPlan::parse("worker.progress@2=err:other").unwrap());
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        chaos_config(),
        &[FigureId::Fig1],
        SizeClass::Small,
        CoordOptions::default(),
    )
    .unwrap();
    let addr = coordinator.local_addr().unwrap();
    let serve = std::thread::spawn(move || coordinator.serve());

    // The doomed worker runs alone and dies at the second snapshot: the
    // injected fault aborts the kernel and cuts the socket, exactly like a
    // crashed process. No result, no failure report, no reconnect.
    let doomed =
        std::thread::spawn(move || run_worker(addr, chaos_config(), Duration::from_secs(10)));
    let err = doomed.join().unwrap().unwrap_err();
    assert!(
        err.to_string().contains("killed by injected fault"),
        "doomed worker must die the injected death, got: {err}"
    );

    // A healthy worker drains the rest; the re-issued cell resumes from
    // the snapshot the doomed worker streamed before dying.
    let report = run_worker(addr, chaos_config(), Duration::from_secs(10)).unwrap();
    let outcome = serve.join().unwrap().unwrap();
    faults::clear();

    assert!(
        outcome.reissued >= 1,
        "the killed worker's lease must be re-issued"
    );
    assert_eq!(outcome.executed, outcome.planned);
    assert!(report.completed >= 1);
    let (grid_json, rendered) = chaos_golden();
    assert_eq!(&outcome.grid.to_json(), grid_json);
    assert_eq!(&chaos_render(&outcome.grid), rendered);
}

/// A checkpoint write torn mid-file kills the coordinator; a restarted
/// coordinator on the same path recovers the last-good `.bak` generation,
/// reports the recovery, and finishes the sweep byte-identically.
#[test]
fn chaos_torn_coordinator_checkpoint_recovers_from_bak_after_restart() {
    use genbase::coord::{run_worker, CoordOptions, Coordinator};
    use genbase_datagen::SizeClass;
    use genbase_util::faults::{self, FaultPlan};

    let _guard = fault_lock();
    let ckpt = std::env::temp_dir().join(format!("genbase-chaos-torn-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(ckpt.with_extension("bak"));

    // The third checkpoint write tears after 64 bytes, like a writer
    // crashing mid-write. Writes one and two succeeded, so the `.bak`
    // rotation holds a complete earlier generation.
    faults::install(FaultPlan::parse("checkpoint.write@3=torn:64").unwrap());
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        chaos_config(),
        &[FigureId::Fig1],
        SizeClass::Small,
        CoordOptions::default().with_checkpoint(&ckpt),
    )
    .unwrap();
    let addr = coordinator.local_addr().unwrap();
    let serve = std::thread::spawn(move || coordinator.serve());
    // The worker is drained cleanly (`done`): a checkpoint failure is the
    // coordinator's fault, never blamed on the worker.
    let first = run_worker(addr, chaos_config(), Duration::from_secs(10)).unwrap();
    let err = serve.join().unwrap().unwrap_err();
    assert!(
        err.to_string().contains("torn write"),
        "coordinator must die on the torn checkpoint, got: {err}"
    );
    assert!(first.completed >= 1);
    assert!(
        ReportGrid::load(&ckpt).is_err(),
        "the primary checkpoint must be unreadable after the tear"
    );

    // Restart on the same path: load falls back to the `.bak`, says so,
    // and the sweep completes from where the backup left off.
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        chaos_config(),
        &[FigureId::Fig1],
        SizeClass::Small,
        CoordOptions::default().with_checkpoint(&ckpt),
    )
    .unwrap();
    let addr = coordinator.local_addr().unwrap();
    let serve = std::thread::spawn(move || coordinator.serve());
    run_worker(addr, chaos_config(), Duration::from_secs(10)).unwrap();
    let outcome = serve.join().unwrap().unwrap();
    faults::clear();

    let note = outcome
        .recovered
        .expect("restart must report the .bak recovery");
    assert!(note.contains("recovered"), "unexpected note: {note}");
    let (grid_json, rendered) = chaos_golden();
    assert_eq!(&outcome.grid.to_json(), grid_json);
    assert_eq!(&chaos_render(&outcome.grid), rendered);
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(ckpt.with_extension("bak"));
}

/// A connection reset while sending a result must not cost the computed
/// cell: the worker reconnects with backoff and re-submits the in-flight
/// report with `resume: true`, which the coordinator reconciles.
#[test]
fn chaos_worker_reconnects_after_reset_and_resumes_its_result() {
    use genbase::coord::{run_worker, CoordOptions, Coordinator};
    use genbase_datagen::SizeClass;
    use genbase_util::faults::{self, FaultPlan};

    let _guard = fault_lock();
    faults::install(FaultPlan::parse("worker.result@2=err:reset; seed=7").unwrap());
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        chaos_config(),
        &[FigureId::Fig1],
        SizeClass::Small,
        CoordOptions::default(),
    )
    .unwrap();
    let addr = coordinator.local_addr().unwrap();
    let serve = std::thread::spawn(move || coordinator.serve());

    // One worker drains the sweep despite the reset on its second report.
    let report = run_worker(addr, chaos_config(), Duration::from_secs(10)).unwrap();
    let outcome = serve.join().unwrap().unwrap();
    faults::clear();

    assert_eq!(
        outcome.resumed, 1,
        "the in-flight result must land through the resume path"
    );
    assert_eq!(outcome.executed, outcome.planned);
    // The reconnected session is a second logical worker connection.
    assert!(outcome.workers >= 2);
    // The interrupted cell was computed once up front; only if the EOF
    // re-queue raced ahead of the resume does it run a second time.
    assert!(report.completed >= outcome.planned);
    let (grid_json, rendered) = chaos_golden();
    assert_eq!(&outcome.grid.to_json(), grid_json);
    assert_eq!(&chaos_render(&outcome.grid), rendered);
}

/// A truncated (torn) local checkpoint falls back to its `.bak` on the
/// next run: the resumed sweep reports the recovery, re-runs only what the
/// backup was missing, and matches the clean run byte for byte.
#[test]
fn torn_local_checkpoint_recovers_from_bak() {
    use genbase_datagen::SizeClass;

    let _guard = fault_lock();
    let ckpt = std::env::temp_dir().join(format!("genbase-local-torn-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(ckpt.with_extension("bak"));
    let sweep = SweepOptions::default().with_checkpoint(&ckpt);

    // Run 1: a clean sweep leaves the final grid in the primary and the
    // previous generation in `.bak`.
    let sched = Scheduler::new(chaos_config()).unwrap();
    let clean = sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
        .unwrap();
    assert!(
        ckpt.with_extension("bak").exists(),
        "rotation must leave a .bak"
    );

    // Tear the primary the way a crashed writer would: truncate mid-JSON.
    let text = std::fs::read_to_string(&ckpt).unwrap();
    std::fs::write(&ckpt, &text[..text.len() / 2]).unwrap();
    assert!(ReportGrid::load(&ckpt).is_err());

    // Run 2: recovery from `.bak`, re-running only the missing tail.
    let resumed = sched
        .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
        .unwrap();
    let note = resumed.recovered.expect("resume must report the recovery");
    assert!(note.contains(".bak") || note.contains("recovered"));
    assert!(
        resumed.skipped > 0,
        "the recovered generation must spare most of the sweep"
    );
    assert!(resumed.executed < resumed.planned);
    assert_eq!(resumed.grid.to_json(), clean.grid.to_json());
    assert_eq!(chaos_render(&resumed.grid), chaos_render(&clean.grid));
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(ckpt.with_extension("bak"));
}

#[test]
fn harness_converts_failures_without_crashing() {
    use genbase::harness::{Harness, HarnessConfig};
    use genbase_datagen::SizeClass;
    let cfg = HarnessConfig {
        scale: 0.014,
        sizes: vec![SizeClass::Small],
        cutoff: Duration::from_nanos(1),
        r_mem_bytes: 1,
        node_counts: vec![1],
        ..HarnessConfig::quick()
    };
    let h = Harness::new(cfg).unwrap();
    for engine in engines::single_node_engines() {
        for query in Query::ALL {
            let rec = h
                .run_cell(engine.as_ref(), query, SizeClass::Small, 1)
                .unwrap();
            // Every cell must be a well-formed outcome (infinite or
            // unsupported under these hostile budgets — or completed, for
            // phases too short to hit a checkpoint).
            let _ = rec.outcome.cell();
        }
    }
}
