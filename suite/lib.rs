//! GenBase suite: umbrella crate tying the workspace together for the
//! root-level integration tests (`tests/`) and runnable examples
//! (`examples/`). All functionality lives in the member crates; this crate
//! only re-exports them under one roof.

pub use genbase as core;
pub use genbase_accel as accel;
pub use genbase_array as array;
pub use genbase_bicluster as bicluster;
pub use genbase_cluster as cluster;
pub use genbase_datagen as datagen;
pub use genbase_linalg as linalg;
pub use genbase_mapreduce as mapreduce;
pub use genbase_relational as relational;
pub use genbase_stats as stats;
pub use genbase_util as util;
