//! Quickstart: generate a small dataset and run all five GenBase queries on
//! the array engine (the paper's best single-node configuration).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

fn main() {
    // 1. Generate the four benchmark datasets (microarray, patient
    //    metadata, gene metadata, GO ontology) with planted signal.
    let spec = SizeSpec::custom(300, 250, 25);
    let data = generate(&GeneratorConfig::new(spec)).expect("generate dataset");
    println!(
        "dataset: {} patients x {} genes, {} GO terms, microarray {}",
        data.n_patients(),
        data.n_genes(),
        data.ontology.n_terms(),
        genbase_util::fmt_bytes(data.microarray_bytes()),
    );

    // 2. Pick paper-faithful query parameters and an engine.
    let params = QueryParams::for_dataset(&data);
    let engine = engines::SciDb::new();
    let ctx = ExecContext::single_node();

    // 3. Run the five queries and print the paper's phase split.
    println!(
        "\n{:<14} {:>12} {:>12}  result",
        "query", "data mgmt", "analytics"
    );
    for query in Query::ALL {
        let report = engine
            .run(query, &data, &params, &ctx)
            .expect("query execution");
        println!(
            "{:<14} {:>12} {:>12}  {}",
            query.name(),
            genbase_util::fmt_secs(report.phases.data_management.total_secs()),
            genbase_util::fmt_secs(report.phases.analytics.total_secs()),
            report.output.summary(),
        );
    }
}
