//! Mini reproduction of Figure 3: scale the multi-node configurations from
//! 1 to 4 nodes on one query and watch the (lack of) speedup the paper
//! reports — rooted collectives charge more network time as nodes grow
//! while the nodes share the same physical cores.
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

fn main() {
    let data =
        generate(&GeneratorConfig::new(SizeSpec::custom(480, 480, 40))).expect("generate dataset");
    let params = QueryParams::for_dataset(&data);
    let query = Query::Regression; // the one task all systems finished

    println!(
        "query: {} on {} patients x {} genes, gigabit network model\n",
        query.name(),
        data.n_patients(),
        data.n_genes()
    );
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>12}",
        "system", "nodes", "total", "measured", "network(sim)"
    );
    println!("{}", "-".repeat(70));
    for engine in engines::multi_node_engines() {
        if !engine.supports(query) {
            continue;
        }
        for nodes in [1usize, 2, 4] {
            let ctx = ExecContext::multi_node(nodes);
            let report = engine
                .run(query, &data, &params, &ctx)
                .expect("bench-scale runs complete");
            let wall = report.phases.data_management.wall_secs + report.phases.analytics.wall_secs;
            let sim = report.phases.data_management.sim_secs + report.phases.analytics.sim_secs;
            println!(
                "{:<22} {:>8} {:>12} {:>12} {:>12}",
                engine.name(),
                nodes,
                genbase_util::fmt_secs(wall + sim),
                genbase_util::fmt_secs(wall),
                genbase_util::fmt_secs(sim),
            );
        }
    }
    println!(
        "\nNote: nodes are simulated on one machine (threads + byte-counting\n\
         network model), so compute does not speed up with node count; the\n\
         paper likewise found sub-linear or absent speedups (Figure 3)."
    );
}
