//! Mini reproduction of Figure 1: run one query across all seven
//! single-node system configurations and print the ranking with the
//! data-management / analytics split.
//!
//! ```sh
//! cargo run --release --example system_shootout [regression|covariance|biclustering|svd|statistics]
//! ```

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

fn main() {
    let query = match std::env::args().nth(1).as_deref() {
        Some("covariance") => Query::Covariance,
        Some("biclustering") => Query::Biclustering,
        Some("svd") => Query::Svd,
        Some("statistics") => Query::Statistics,
        _ => Query::Regression,
    };
    let data =
        generate(&GeneratorConfig::new(SizeSpec::custom(360, 360, 30))).expect("generate dataset");
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();

    println!(
        "query: {} on {} patients x {} genes\n",
        query.name(),
        data.n_patients(),
        data.n_genes()
    );
    let mut results: Vec<(String, f64, f64, String)> = Vec::new();
    for engine in engines::single_node_engines() {
        if !engine.supports(query) {
            println!(
                "{:<22} (functionality missing — no bar, as in the paper)",
                engine.name()
            );
            continue;
        }
        let report = engine
            .run(query, &data, &params, &ctx)
            .expect("bench-scale runs complete");
        results.push((
            engine.name().to_string(),
            report.phases.data_management.total_secs(),
            report.phases.analytics.total_secs(),
            report.output.summary(),
        ));
    }
    results.sort_by(|a, b| (a.1 + a.2).partial_cmp(&(b.1 + b.2)).expect("finite"));
    println!(
        "\n{:<22} {:>11} {:>11} {:>11}",
        "system", "total", "data mgmt", "analytics"
    );
    println!("{}", "-".repeat(60));
    for (name, dm, an, _) in &results {
        println!(
            "{name:<22} {:>11} {:>11} {:>11}",
            genbase_util::fmt_secs(dm + an),
            genbase_util::fmt_secs(*dm),
            genbase_util::fmt_secs(*an),
        );
    }
    println!("\nanswer ({}): {}", results[0].0, results[0].3);
}
