//! Drug-response modeling end to end (the paper's Query 1 use case):
//! fit the regression on selected genes, inspect the strongest coefficients
//! against the generator's planted causal genes, and evaluate predictions.
//!
//! ```sh
//! cargo run --release --example drug_response
//! ```

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

fn main() {
    let data =
        generate(&GeneratorConfig::new(SizeSpec::custom(400, 300, 30))).expect("generate dataset");
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();

    let engine = engines::SciDb::new();
    let report = engine
        .run(Query::Regression, &data, &params, &ctx)
        .expect("regression");
    let QueryOutput::Regression {
        intercept,
        coefficients,
        r_squared,
    } = &report.output
    else {
        unreachable!("regression query returns a regression output")
    };

    println!(
        "fitted drug-response model over {} genes (function < {}), R^2 = {:.4}",
        coefficients.len(),
        params.function_threshold,
        r_squared
    );
    println!("intercept: {intercept:.4}\n");

    // Strongest coefficients vs the planted causal genes.
    let mut ranked: Vec<(i64, f64)> = coefficients.clone();
    ranked.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    println!("top 10 coefficients (planted causal genes marked *):");
    let causal: Vec<i64> = data
        .truth
        .causal_genes
        .iter()
        .map(|&(g, _)| g as i64)
        .collect();
    for (gene, coef) in ranked.iter().take(10) {
        let marker = if causal.contains(gene) { " *" } else { "" };
        let truth = data
            .truth
            .causal_genes
            .iter()
            .find(|&&(g, _)| g as i64 == *gene)
            .map(|&(_, w)| format!(" (true weight {w:+.3})"))
            .unwrap_or_default();
        println!("  gene {gene:>5}: {coef:+.4}{marker}{truth}");
    }
    let recovered = ranked
        .iter()
        .take(causal.len())
        .filter(|(g, _)| causal.contains(g))
        .count();
    println!(
        "\nrecovered {recovered}/{} planted causal genes in the top-|coef| set",
        causal.len()
    );
}
