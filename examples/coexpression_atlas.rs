//! Co-expression analysis pipeline: Query 2 (covariance) to find related
//! gene pairs, then Query 5 (enrichment) to find the GO categories those
//! genes concentrate in — the two analyses biologists chain in practice.
//!
//! ```sh
//! cargo run --release --example coexpression_atlas
//! ```

use genbase::prelude::*;
use genbase_datagen::{generate, GeneratorConfig, SizeSpec};
use std::collections::HashSet;

fn main() {
    let data =
        generate(&GeneratorConfig::new(SizeSpec::custom(360, 320, 30))).expect("generate dataset");
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let engine = engines::SciDb::new();

    // --- Query 2: covariance over the focus-disease cohort ----------------
    let report = engine
        .run(Query::Covariance, &data, &params, &ctx)
        .expect("covariance");
    let QueryOutput::Covariance { threshold, pairs } = &report.output else {
        unreachable!()
    };
    println!(
        "covariance: {} gene pairs above |cov| >= {threshold:.4} (disease {})",
        pairs.len(),
        params.disease_id
    );
    for (a, b, cov, fa, fb) in pairs.iter().take(8) {
        println!("  genes {a:>4} x {b:>4}: cov {cov:+.4}  functions ({fa}, {fb})");
    }

    // How well do the top pairs recover the planted co-expression modules?
    let module_genes: HashSet<i64> = data
        .truth
        .modules
        .iter()
        .flatten()
        .map(|&g| g as i64)
        .collect();
    let module_pairs = pairs
        .iter()
        .filter(|(a, b, ..)| module_genes.contains(a) && module_genes.contains(b))
        .count();
    println!(
        "  {module_pairs}/{} top pairs fall inside planted co-expression modules\n",
        pairs.len()
    );

    // --- Query 5: which GO terms are enriched? -----------------------------
    let report = engine
        .run(Query::Statistics, &data, &params, &ctx)
        .expect("enrichment");
    let QueryOutput::Enrichment { per_term } = &report.output else {
        unreachable!()
    };
    let mut ranked: Vec<&(usize, f64, f64)> = per_term.iter().collect();
    ranked.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite p"));
    println!("most enriched GO terms (aligned planted terms marked *):");
    for (term, z, p) in ranked.iter().take(6) {
        let marker = if data.truth.aligned_terms.contains(term) {
            " *"
        } else {
            ""
        };
        println!("  GO {term:>3}: z = {z:+.2}, p = {p:.2e}{marker}");
    }
    let hits = ranked
        .iter()
        .take(data.truth.aligned_terms.len())
        .filter(|(t, _, _)| data.truth.aligned_terms.contains(t))
        .count();
    println!(
        "\n{hits}/{} planted module-aligned terms rank most significant",
        data.truth.aligned_terms.len()
    );
}
