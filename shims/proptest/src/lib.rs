//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so the property tests link
//! against this shim. It implements the subset of proptest's API the suite
//! uses — `proptest!`, `prop_assume!`, `prop_assert!`, `prop_assert_eq!`,
//! range and tuple strategies, `prop_map`/`prop_flat_map`, and
//! `collection::vec` — with deterministic seeded generation and **no
//! shrinking**: a failing case panics with its case number and the values'
//! `Debug` output where available. Swap in the real crate when a registry is
//! available; test sources need no changes.

/// Deterministic splitmix64 generator seeded per test from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG; the `proptest!` macro derives the seed from the test name
    /// so runs are reproducible and tests are independent.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Rejection marker produced by `prop_assume!`; the runner skips the case.
pub struct Reject;

/// A value generator. Unlike real proptest there is no shrinking tree: a
/// strategy simply produces one value per case.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element count for [`vec()`]: an exact length or a range of lengths.
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing uniformly random booleans.
    #[derive(Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY` — either boolean with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Runner configuration (`test_runner::ProptestConfig`).
pub mod test_runner {
    /// How many accepted cases each property runs.
    pub struct ProptestConfig {
        /// Accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// FNV-1a over the test name; gives each test a stable distinct seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Skip the current case unless `cond` holds (counts as rejected, not run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::Reject);
        }
    };
}

/// Assert within a property; panics with the case context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Property-test declaration block, mirroring proptest's macro. Supports an
/// optional `#![proptest_config(...)]` header followed by `#[test] fn`
/// items whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            use $crate::Strategy as _;
            let config = $config;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(32).max(1024);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "property {} rejected too many cases ({} attempts, {} accepted)",
                    stringify!($name),
                    attempts,
                    accepted,
                );
                $(let $arg = ($strat).generate(&mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::Reject> = (move || {
                    $body
                    Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -5.0f64..5.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn assume_rejects_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in (1usize..5).prop_flat_map(|n| collection::vec(0i64..10, n * 2))
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 8);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }
}
