//! Offline stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! bench targets link against this minimal shim instead. It implements the
//! exact API surface the `crates/bench/benches/*.rs` files use — groups,
//! `BenchmarkId`, `Bencher::iter`, the `criterion_group!`/`criterion_main!`
//! macros — and reports plain wall-clock means (ns/iter) on stdout. It does
//! no statistical analysis; swap in the real crate when a registry is
//! available (the bench sources need no changes).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver handed to each bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parse CLI arguments. The shim accepts and ignores criterion's flags
    /// (`--bench`, filters) so `cargo bench` invocations keep working.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Bench a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.to_string(),
            10,
            Duration::from_millis(100),
            Duration::from_secs(1),
            &mut f,
        );
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (the shim uses this as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target measurement duration (upper bound on shim timing loops).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
        self
    }

    /// Finish the group (no-op beyond symmetry with criterion).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    // Warm-up pass: run until the warm-up window is spent (at least once).
    let warm_start = Instant::now();
    loop {
        f(&mut b);
        if warm_start.elapsed() >= warm_up {
            break;
        }
    }
    b.total = Duration::ZERO;
    b.iters = 0;
    let measure_start = Instant::now();
    for _ in 0..samples {
        f(&mut b);
        if measure_start.elapsed() >= measurement {
            break;
        }
    }
    if b.iters == 0 {
        println!("bench {label}: no iterations recorded");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    println!("bench {label}: {:.0} ns/iter ({} iters)", ns, b.iters);
}

/// Per-benchmark timing handle.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `f`, accumulating into the sample mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.total += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declare a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
