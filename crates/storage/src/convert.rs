//! The conversion kernels: dense ↔ triples ↔ chunked, row ↔ column.
//!
//! These are the restructuring paths GenBase measures — implemented once,
//! instrumented against the [`MemTracker`] (bytes read, bytes/rows
//! materialized), and parallelized on the shared `genbase_util::runtime`
//! pool where the operation admits a deterministic parallel schedule.
//! Each kernel is bit-identical to the representation-specific code it
//! replaced (pinned by `tests/storage_layer.rs`).
//!
//! Accounting convention: constructors ([`ColumnarTable::from_columns`],
//! [`crate::DenseHandle::new`]) *charge* live bytes; kernels *note* the bytes they
//! read and the bytes/rows they materialize. The plan tracer's operator
//! scopes turn those notes into per-op `bytes_in`/`bytes_out`/`rows`
//! columns. [`genbase_util::Budget`] stays what it always was — the
//! *simulated machine's* memory semantics (R's heap, the paper's 48 GB
//! boxes) — while the tracker observes the storage layer's actual working
//! sets and enforces the per-cell `--mem-budget`.

use crate::cache::{digest_ids, CachePin, CacheScope, CacheValue, Lookup};
use crate::table::{Column, ColumnarTable, TableView};
use crate::tracker::MemTracker;
use genbase_array::Array2D;
use genbase_linalg::Matrix;
use genbase_relational::{ColumnTable, DataType, Relation, Schema, Value};
use genbase_util::{runtime, Budget, Error, Result};
use std::collections::HashMap;

/// Triples per parallel index-computation task in [`pivot_dense`]. Fixed
/// (not derived from the thread count) so task boundaries — and with them
/// any duplicate-key resolution — are identical at every thread count.
const PIVOT_TASK: usize = 64 * 1024;

/// Row → column pivot: materialize any [`Relation`] (row store output,
/// column store output, a Hive split) as a [`ColumnarTable`], preserving
/// row order. This is the unified replacement for the per-engine
/// "TripleSet" representations.
pub fn columnar_from_relation(tracker: &MemTracker, rel: &dyn Relation) -> Result<ColumnarTable> {
    let schema = rel.schema().clone();
    let n_rows = rel.n_rows();
    tracker.note_input((n_rows * schema.arity() * 8) as u64);
    let mut cols: Vec<Column> = schema
        .fields()
        .iter()
        .map(|(_, t)| match t {
            DataType::Int => Column::Ints(Vec::with_capacity(n_rows)),
            DataType::Float => Column::Floats(Vec::with_capacity(n_rows)),
        })
        .collect();
    rel.for_each(&mut |row: &[Value]| {
        for (c, v) in cols.iter_mut().zip(row) {
            match (c, v) {
                (Column::Ints(vec), Value::Int(x)) => vec.push(*x),
                (Column::Floats(vec), Value::Float(x)) => vec.push(*x),
                _ => unreachable!("schema-checked row"),
            }
        }
    });
    let table = ColumnarTable::from_columns(tracker, schema, cols)?;
    tracker.note_output(table.heap_bytes(), table.n_rows() as u64);
    Ok(table)
}

/// Column → column adoption: take a relational [`ColumnTable`]'s columns
/// into the storage layer without copying (column moves). The
/// materialization happened in whatever operator produced the table, so
/// the bytes are noted as that operator's output.
pub fn columnar_from_column_table(
    tracker: &MemTracker,
    table: ColumnTable,
) -> Result<ColumnarTable> {
    let (schema, cols) = table.into_columns();
    let cols: Vec<Column> = cols.into_iter().map(Column::from).collect();
    let out = ColumnarTable::from_columns(tracker, schema, cols)?;
    tracker.note_output(out.heap_bytes(), out.n_rows() as u64);
    Ok(out)
}

/// Dense → triples: explode a dense `patients x genes` matrix into a
/// `(gene_id, patient_id, value)` table (the relational engines' microarray
/// representation).
pub fn triples_from_dense(
    tracker: &MemTracker,
    dense: &Matrix,
    schema: Schema,
) -> Result<ColumnarTable> {
    if schema.arity() != 3
        || schema.col_type(0) != DataType::Int
        || schema.col_type(1) != DataType::Int
        || schema.col_type(2) != DataType::Float
    {
        return Err(Error::invalid("triple schema must be (Int, Int, Float)"));
    }
    tracker.note_input(dense.heap_bytes());
    let n = dense.rows() * dense.cols();
    let mut gene_col = Vec::with_capacity(n);
    let mut patient_col = Vec::with_capacity(n);
    let mut value_col = Vec::with_capacity(n);
    for p in 0..dense.rows() {
        let row = dense.row(p);
        for (g, &v) in row.iter().enumerate() {
            gene_col.push(g as i64);
            patient_col.push(p as i64);
            value_col.push(v);
        }
    }
    let table = ColumnarTable::from_columns(
        tracker,
        schema,
        vec![
            Column::Ints(gene_col),
            Column::Ints(patient_col),
            Column::Floats(value_col),
        ],
    )?;
    tracker.note_output(table.heap_bytes(), table.n_rows() as u64);
    Ok(table)
}

/// Triples → dense: pivot a `(row_id, col_id, value)` view into a dense
/// matrix with `row_ids`/`col_ids` giving the output ordering. Ids absent
/// from the maps are ignored; unassigned cells stay 0.0; duplicate
/// assignments keep the last value in view order — identical semantics to
/// the relational `pivot_to_dense` this replaces.
///
/// The expensive part — hashing every triple's ids to output coordinates —
/// runs in parallel over fixed-size triple ranges; the final scatter is a
/// single serial pass in view order, so results are bit-identical at every
/// thread count.
pub fn pivot_dense(
    view: &TableView<'_>,
    (row_col, col_col, val_col): (usize, usize, usize),
    row_ids: &[i64],
    col_ids: &[i64],
    threads: usize,
    tracker: &MemTracker,
    budget: &Budget,
) -> Result<Matrix> {
    budget.check("pivot")?;
    tracker.note_input(view.span_bytes());
    let rows = row_ids.len();
    let cols = col_ids.len();
    let row_index: HashMap<i64, usize> =
        row_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let col_index: HashMap<i64, usize> =
        col_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let rv = view.int_col(row_col)?;
    let cv = view.int_col(col_col)?;
    let vv = view.float_col(val_col)?;
    let n = rv.len();

    budget.alloc((rows * cols * 8) as u64, (rows * cols) as u64)?;
    let mut data = vec![0.0; rows * cols];
    let tasks = n.div_ceil(PIVOT_TASK).max(1);
    if threads <= 1 || tasks == 1 {
        // Serial path (the one-process DBMS pivots): scatter directly in
        // view order — duplicates keep the last value — with no
        // intermediate buffer, exactly like the relational pivot this
        // kernel replaced.
        for i in 0..n {
            if let (Some(&ri), Some(&ci)) = (row_index.get(&rv[i]), col_index.get(&cv[i])) {
                data[ri * cols + ci] = vv[i];
            }
        }
    } else {
        // Parallel path, two passes. Pass 1 computes per-triple output
        // offsets (u64::MAX = filtered out) over fixed-size ranges — the
        // hash lookups are the expensive part. The transient index buffer
        // is charged against both accountants for its lifetime. Pass 2 is
        // a single serial scatter in view order, so duplicate resolution —
        // and therefore the result — is identical to the serial path at
        // every thread count.
        let index_bytes = (n * 8) as u64;
        budget.alloc(index_bytes, n as u64)?;
        tracker.charge(index_bytes)?;
        let mut targets = vec![u64::MAX; n];
        {
            let slots = runtime::SharedSlice::new(&mut targets);
            runtime::parallel_for(threads, tasks, |t| {
                let lo = t * PIVOT_TASK;
                let hi = (lo + PIVOT_TASK).min(n);
                // SAFETY: tasks cover disjoint `lo..hi` ranges.
                let out = unsafe { slots.slice_mut(lo, hi - lo) };
                for (k, slot) in out.iter_mut().enumerate() {
                    let i = lo + k;
                    if let (Some(&ri), Some(&ci)) = (row_index.get(&rv[i]), col_index.get(&cv[i])) {
                        *slot = (ri * cols + ci) as u64;
                    }
                }
            });
        }
        for (i, &t) in targets.iter().enumerate() {
            if t != u64::MAX {
                data[t as usize] = vv[i];
            }
        }
        drop(targets);
        budget.free(index_bytes);
        tracker.release(index_bytes);
    }
    budget.free((rows * cols * 8) as u64);
    let mat = Matrix::from_vec(rows, cols, data)?;
    tracker.note_output(mat.heap_bytes(), mat.rows() as u64);
    Ok(mat)
}

/// Dense → chunked: ingest a matrix into the chunked array representation,
/// charging the tracker for the resident chunk storage (released when the
/// run's tracker drops with the store).
pub fn chunked_from_dense(
    tracker: &MemTracker,
    dense: &Matrix,
    budget: &Budget,
) -> Result<Array2D> {
    tracker.note_input(dense.heap_bytes());
    let arr = Array2D::from_matrix(dense, budget)?;
    let bytes = (arr.rows() * arr.cols() * 8) as u64;
    tracker.charge(bytes)?;
    tracker.note_output(bytes, arr.rows() as u64);
    Ok(arr)
}

/// Chunked → dense: gather a coordinate-selected submatrix out of the
/// chunked store (the SciDB "restructure"), delegating to the chunk-walking
/// gather so results stay bit-identical to the pre-storage-layer path.
pub fn gather_chunked(
    arr: &Array2D,
    rows: &[usize],
    cols: &[usize],
    threads: usize,
    tracker: &MemTracker,
    budget: &Budget,
) -> Result<Matrix> {
    tracker.note_input((rows.len() * cols.len() * 8) as u64);
    let mat = arr.select_to_matrix_par(rows, cols, threads, budget)?;
    tracker.note_output(mat.heap_bytes(), mat.rows() as u64);
    Ok(mat)
}

/// Columns cloned out of a table for publication into the artifact cache.
fn clone_columns(table: &ColumnarTable) -> Vec<Column> {
    (0..table.schema().arity())
        .map(|i| table.view().column_copy(i))
        .collect()
}

/// Cache-aware [`columnar_from_relation`]. `dims` names the source dataset
/// (`patients x genes`) and `extra` digests whatever produced `rel`, so the
/// key uniquely determines the relation's contents. A hit skips the
/// materialization loop and replays the cold path's accounting exactly
/// (identity contract: traces stay byte-identical warm vs cold).
pub fn columnar_from_relation_cached(
    cache: Option<&CacheScope>,
    dims: (usize, usize),
    extra: &str,
    tracker: &MemTracker,
    rel: &dyn Relation,
) -> Result<(ColumnarTable, Option<CachePin>)> {
    let Some(scope) = cache else {
        return Ok((columnar_from_relation(tracker, rel)?, None));
    };
    let key = scope.key(dims.0, dims.1, "columnar", extra);
    match scope.cache().begin(&key) {
        Lookup::Hit(value, pin) => {
            let (_, columns) = value
                .as_columnar()
                .ok_or_else(|| Error::invalid("cache type confusion on a columnar key"))?;
            let schema = rel.schema().clone();
            tracker.note_input((rel.n_rows() * schema.arity() * 8) as u64);
            let table = ColumnarTable::from_columns(tracker, schema, columns.to_vec())?;
            tracker.note_output(table.heap_bytes(), table.n_rows() as u64);
            tracker.note_cache_hit();
            Ok((table, Some(pin)))
        }
        Lookup::Build(slot) => {
            let table = columnar_from_relation(tracker, rel)?;
            let pin = slot
                .fill(CacheValue::Columnar {
                    schema: table.schema().clone(),
                    columns: clone_columns(&table),
                })
                .map(|(_, pin)| pin);
            Ok((table, pin))
        }
    }
}

/// Cache-aware [`triples_from_dense`]; see
/// [`columnar_from_relation_cached`] for the key and identity conventions.
pub fn triples_from_dense_cached(
    cache: Option<&CacheScope>,
    tracker: &MemTracker,
    dense: &Matrix,
    schema: Schema,
) -> Result<(ColumnarTable, Option<CachePin>)> {
    let Some(scope) = cache else {
        return Ok((triples_from_dense(tracker, dense, schema)?, None));
    };
    let key = scope.key(dense.rows(), dense.cols(), "triples", "full");
    match scope.cache().begin(&key) {
        Lookup::Hit(value, pin) => {
            if schema.arity() != 3
                || schema.col_type(0) != DataType::Int
                || schema.col_type(1) != DataType::Int
                || schema.col_type(2) != DataType::Float
            {
                return Err(Error::invalid("triple schema must be (Int, Int, Float)"));
            }
            let (_, columns) = value
                .as_columnar()
                .ok_or_else(|| Error::invalid("cache type confusion on a triples key"))?;
            tracker.note_input(dense.heap_bytes());
            let table = ColumnarTable::from_columns(tracker, schema, columns.to_vec())?;
            tracker.note_output(table.heap_bytes(), table.n_rows() as u64);
            tracker.note_cache_hit();
            Ok((table, Some(pin)))
        }
        Lookup::Build(slot) => {
            let table = triples_from_dense(tracker, dense, schema)?;
            let pin = slot
                .fill(CacheValue::Columnar {
                    schema: table.schema().clone(),
                    columns: clone_columns(&table),
                })
                .map(|(_, pin)| pin);
            Ok((table, pin))
        }
    }
}

/// Cache-aware [`pivot_dense`]. `dims` names the source dataset; the key
/// additionally digests the column mapping and both id selections, so two
/// different filter outcomes can never alias. A hit replays the cold
/// path's budget and tracker choreography — including the parallel path's
/// transient index-buffer charge, which is what makes the per-op
/// `peak_alloc` column identical warm vs cold.
#[allow(clippy::too_many_arguments)]
pub fn pivot_dense_cached(
    cache: Option<&CacheScope>,
    dims: (usize, usize),
    view: &TableView<'_>,
    (row_col, col_col, val_col): (usize, usize, usize),
    row_ids: &[i64],
    col_ids: &[i64],
    threads: usize,
    tracker: &MemTracker,
    budget: &Budget,
) -> Result<(Matrix, Option<CachePin>)> {
    let Some(scope) = cache else {
        return Ok((
            pivot_dense(
                view,
                (row_col, col_col, val_col),
                row_ids,
                col_ids,
                threads,
                tracker,
                budget,
            )?,
            None,
        ));
    };
    let extra = format!(
        "c{row_col}-{col_col}-{val_col}|r{:016x}|k{:016x}",
        digest_ids(row_ids),
        digest_ids(col_ids)
    );
    let key = scope.key(dims.0, dims.1, "pivot", &extra);
    match scope.cache().begin(&key) {
        Lookup::Hit(value, pin) => {
            let cached = value
                .as_dense()
                .ok_or_else(|| Error::invalid("cache type confusion on a pivot key"))?;
            budget.check("pivot")?;
            tracker.note_input(view.span_bytes());
            let (rows, cols) = (row_ids.len(), col_ids.len());
            budget.alloc((rows * cols * 8) as u64, (rows * cols) as u64)?;
            let n = view.n_rows();
            let tasks = n.div_ceil(PIVOT_TASK).max(1);
            if !(threads <= 1 || tasks == 1) {
                // The cold parallel path holds a transient per-triple index
                // buffer; replay its charge so op peaks reconcile.
                let index_bytes = (n * 8) as u64;
                budget.alloc(index_bytes, n as u64)?;
                tracker.charge(index_bytes)?;
                budget.free(index_bytes);
                tracker.release(index_bytes);
            }
            budget.free((rows * cols * 8) as u64);
            let mat = cached.clone();
            tracker.note_output(mat.heap_bytes(), mat.rows() as u64);
            tracker.note_cache_hit();
            Ok((mat, Some(pin)))
        }
        Lookup::Build(slot) => {
            let mat = pivot_dense(
                view,
                (row_col, col_col, val_col),
                row_ids,
                col_ids,
                threads,
                tracker,
                budget,
            )?;
            let pin = slot
                .fill(CacheValue::Dense(mat.clone()))
                .map(|(_, pin)| pin);
            Ok((mat, pin))
        }
    }
}

/// Cache-aware [`chunked_from_dense`]; the hit path replays the ingest's
/// budget round trip and resident-chunk charge, then clones the chunked
/// array out of the cache.
pub fn chunked_from_dense_cached(
    cache: Option<&CacheScope>,
    tracker: &MemTracker,
    dense: &Matrix,
    budget: &Budget,
) -> Result<(Array2D, Option<CachePin>)> {
    let Some(scope) = cache else {
        return Ok((chunked_from_dense(tracker, dense, budget)?, None));
    };
    let key = scope.key(dense.rows(), dense.cols(), "chunked", "full");
    match scope.cache().begin(&key) {
        Lookup::Hit(value, pin) => {
            let cached = value
                .as_chunked()
                .ok_or_else(|| Error::invalid("cache type confusion on a chunked key"))?;
            tracker.note_input(dense.heap_bytes());
            let cells = dense.len() as u64;
            budget.alloc(cells * 8, cells)?;
            budget.free(cells * 8);
            let arr = cached.clone();
            let bytes = (arr.rows() * arr.cols() * 8) as u64;
            tracker.charge(bytes)?;
            tracker.note_output(bytes, arr.rows() as u64);
            tracker.note_cache_hit();
            Ok((arr, Some(pin)))
        }
        Lookup::Build(slot) => {
            let arr = chunked_from_dense(tracker, dense, budget)?;
            let pin = slot
                .fill(CacheValue::Chunked(arr.clone()))
                .map(|(_, pin)| pin);
            Ok((arr, pin))
        }
    }
}

/// Dense row subset with accounting (vanilla R's `matrix[rows, ]`).
pub fn select_rows_tracked(tracker: &MemTracker, mat: &Matrix, idx: &[usize]) -> Matrix {
    let sub = mat.select_rows(idx);
    tracker.note_input(sub.heap_bytes());
    tracker.note_output(sub.heap_bytes(), sub.rows() as u64);
    sub
}

/// Dense column subset with accounting (vanilla R's `matrix[, cols]`).
pub fn select_cols_tracked(tracker: &MemTracker, mat: &Matrix, idx: &[usize]) -> Matrix {
    let sub = mat.select_cols(idx);
    tracker.note_input(sub.heap_bytes());
    tracker.note_output(sub.heap_bytes(), sub.rows() as u64);
    sub
}

/// Columnar → CSV text: the "export data from the DBMS" half of the
/// paper's copy-and-reformat bridge, with the serialized bytes accounted.
pub fn export_csv_tracked(
    rel: &dyn Relation,
    tracker: &MemTracker,
    budget: &Budget,
) -> Result<String> {
    tracker.note_input((rel.n_rows() * rel.schema().arity() * 8) as u64);
    let text = genbase_relational::export_csv(rel, budget)?;
    tracker.note_output(text.len() as u64, rel.n_rows() as u64);
    Ok(text)
}

/// CSV text → dense: the "re-parse and pivot in R" half of the export
/// bridge (single-threaded, against the R memory budget — R is the
/// simulated machine here, so `r_budget` keeps its pre-storage-layer
/// accounting bit-for-bit).
pub fn pivot_csv_tracked(
    text: &str,
    row_ids: &[i64],
    col_ids: &[i64],
    tracker: &MemTracker,
    r_budget: &Budget,
) -> Result<Matrix> {
    tracker.note_input(text.len() as u64);
    let parsed = genbase_relational::import_matrix_csv(text, r_budget)?;
    if parsed.cols != 3 && parsed.rows != 0 {
        return Err(Error::invalid("exported triples must have 3 columns"));
    }
    let row_index: HashMap<i64, usize> =
        row_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let col_index: HashMap<i64, usize> =
        col_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut mat = Matrix::zeros_budgeted(row_ids.len(), col_ids.len(), r_budget)?;
    for r in 0..parsed.rows {
        let g = parsed.data[r * 3] as i64;
        let p = parsed.data[r * 3 + 1] as i64;
        let v = parsed.data[r * 3 + 2];
        if let (Some(&ri), Some(&ci)) = (row_index.get(&p), col_index.get(&g)) {
            mat.set(ri, ci, v);
        }
    }
    r_budget.free(mat.heap_bytes());
    tracker.note_output(mat.heap_bytes(), mat.rows() as u64);
    Ok(mat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genbase_relational::RowTable;

    fn triple_schema() -> Schema {
        Schema::new(&[
            ("gene_id", DataType::Int),
            ("patient_id", DataType::Int),
            ("value", DataType::Float),
        ])
        .unwrap()
    }

    fn dense() -> Matrix {
        Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f64 * 0.5)
    }

    #[test]
    fn dense_triples_round_trip() {
        let t = MemTracker::unlimited();
        let m = dense();
        let triples = triples_from_dense(&t, &m, triple_schema()).unwrap();
        assert_eq!(triples.n_rows(), 35);
        let patient_ids: Vec<i64> = (0..5).collect();
        let gene_ids: Vec<i64> = (0..7).collect();
        let back = pivot_dense(
            &triples.view(),
            (1, 0, 2),
            &patient_ids,
            &gene_ids,
            2,
            &t,
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(back, m, "dense -> triples -> dense is exact");
    }

    #[test]
    fn pivot_matches_relational_reference_any_thread_count() {
        let t = MemTracker::unlimited();
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| {
                vec![
                    Value::Int((i * 7) % 13),
                    Value::Int((i * 3) % 11),
                    Value::Float(i as f64 * 0.25),
                ]
            })
            .collect();
        let rt = RowTable::from_rows(triple_schema(), rows).unwrap();
        let table = columnar_from_relation(&t, &rt).unwrap();
        let row_ids: Vec<i64> = (0..11).rev().collect();
        let col_ids: Vec<i64> = (0..13).collect();
        let reference = genbase_relational::pivot_to_dense(
            &rt,
            1,
            0,
            2,
            &row_ids,
            &col_ids,
            &Budget::unlimited(),
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            let got = pivot_dense(
                &table.view(),
                (1, 0, 2),
                &row_ids,
                &col_ids,
                threads,
                &t,
                &Budget::unlimited(),
            )
            .unwrap();
            assert_eq!(got.data(), &reference.data[..], "threads = {threads}");
        }
    }

    #[test]
    fn row_to_columnar_preserves_order_and_accounts() {
        let t = MemTracker::unlimited();
        let rows: Vec<Vec<Value>> = (0..16)
            .map(|i| vec![Value::Int(i % 3), Value::Int(i), Value::Float(i as f64)])
            .collect();
        let rt = RowTable::from_rows(triple_schema(), rows.clone()).unwrap();
        let table = columnar_from_relation(&t, &rt).unwrap();
        let mut got = Vec::new();
        table.for_each(&mut |r: &[Value]| got.push(r.to_vec()));
        assert_eq!(got, rows, "row order preserved");
        assert_eq!(t.current(), table.heap_bytes());
    }

    #[test]
    fn chunked_round_trip_and_export_bridge() {
        let t = MemTracker::unlimited();
        let m = dense();
        let arr = chunked_from_dense(&t, &m, &Budget::unlimited()).unwrap();
        let rows: Vec<usize> = (0..5).collect();
        let cols: Vec<usize> = vec![0, 2, 4];
        let got = gather_chunked(&arr, &rows, &cols, 2, &t, &Budget::unlimited()).unwrap();
        assert_eq!(got, m.select_cols(&cols));

        let triples = triples_from_dense(&t, &m, triple_schema()).unwrap();
        let text = export_csv_tracked(&triples, &t, &Budget::unlimited()).unwrap();
        let patient_ids: Vec<i64> = (0..5).collect();
        let gene_ids: Vec<i64> = (0..7).collect();
        let back =
            pivot_csv_tracked(&text, &patient_ids, &gene_ids, &t, &Budget::unlimited()).unwrap();
        assert_eq!(back, m, "CSV bridge round trip is exact");
    }
}
