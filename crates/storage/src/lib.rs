//! Unified columnar storage layer with per-operator memory accounting.
//!
//! GenBase's central finding is that data *movement and restructuring*
//! between the storage layer and the analytics layer — not the analytics
//! kernels — dominates end-to-end cost. Before this crate, each engine
//! family owned an ad-hoc working-set representation (row/column triple
//! tables in the SQL engines, dense matrices in vanilla R, chunked arrays
//! in SciDB, record splits in Hadoop) and every cross-representation
//! conversion was bespoke, unmeasured code. This crate makes the paper's
//! core cost dimension first-class:
//!
//! - [`ColumnarTable`] / [`Column`] / [`TableView`]: the shared columnar
//!   working-set representation every engine's lowering materializes
//!   filtered/joined data into. Tables are registered against a
//!   [`MemTracker`] on construction and release their bytes on drop, so
//!   resident working-set size is observable at any instant.
//! - [`convert`]: the conversion kernels — dense↔triples↔chunked and the
//!   row↔column pivot — implemented once, instrumented (bytes in, bytes
//!   out, rows materialized), and parallelized on the shared
//!   `genbase_util::runtime` pool.
//! - [`MemTracker`]: the allocation tracker behind per-operator memory
//!   traces (`bytes_in` / `bytes_out` / `peak_alloc_bytes` /
//!   `rows_materialized`) and the per-cell `--mem-budget` enforcement.
//!   Exhausting the budget surfaces as [`genbase_util::Error::OutOfMemory`]
//!   — a traced "infinite" cell outcome, never an abort.
//!
//! The dense representation of this layer *is* [`genbase_linalg::Matrix`]
//! (held through the RAII [`DenseHandle`]) and the chunked representation
//! is [`genbase_array::Array2D`]; the conversion kernels bridge them so the
//! per-engine code paths they replaced stay bit-identical (pinned by the
//! storage property tests).

#![warn(missing_docs)]

pub mod cache;
pub mod convert;
pub mod pipeline;
pub mod stream;
pub mod table;
pub mod tracker;

pub use cache::{digest_ids, ArtifactCache, CachePin, CacheScope, CacheValue, Lookup};
pub use convert::{
    chunked_from_dense, chunked_from_dense_cached, columnar_from_column_table,
    columnar_from_relation, columnar_from_relation_cached, export_csv_tracked, gather_chunked,
    pivot_csv_tracked, pivot_dense, pivot_dense_cached, select_cols_tracked, select_rows_tracked,
    triples_from_dense, triples_from_dense_cached,
};
pub use pipeline::{csv_selected, fused_scan, scatter_selected, SelVec};
pub use stream::{batch_ranges, carve_view, reassemble, BatchReel, Morsel, DEFAULT_BATCH_ROWS};
pub use table::{Column, ColumnarTable, TableView};
pub use tracker::{DenseHandle, MemDelta, MemTracker, OpScope, Reservation};
