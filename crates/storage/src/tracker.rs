//! Allocation tracker: the memory-accounting contract of the storage layer.
//!
//! One [`MemTracker`] lives for the duration of one query run (one sweep
//! cell). Storage-layer objects charge their heap bytes on construction and
//! release them on drop; conversion kernels additionally *note* the bytes
//! they read ([`MemTracker::note_input`]) and the bytes/rows they
//! materialize ([`MemTracker::note_output`]). The plan tracer snapshots the
//! cumulative counters around each physical operator ([`MemTracker::op_begin`]
//! / [`MemTracker::op_delta`]), which is where the `bytes_in` / `bytes_out`
//! / `peak_alloc_bytes` / `rows_materialized` columns of a trace come from.
//!
//! A tracker may carry a byte limit (the harness's `--mem-budget`):
//! [`MemTracker::charge`] fails with [`Error::OutOfMemory`] when live bytes
//! would exceed it, which the harness renders as the paper's "infinite"
//! cell — a traced, surfaced failure, never an abort.
//!
//! All counters are atomics, so accounting stays exact when kernels charge
//! from the shared runtime's worker threads and when many concurrent sweep
//! cells each hold their own tracker (pinned by the storage property tests).

use genbase_linalg::Matrix;
use genbase_util::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe storage-layer allocation tracker.
#[derive(Debug, Clone, Default)]
pub struct MemTracker {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Live-byte limit; `u64::MAX` means unlimited.
    limit: u64,
    /// Currently live (charged, not yet released) bytes.
    current: AtomicU64,
    /// All-time peak of `current`.
    peak: AtomicU64,
    /// Peak of `current` since the last [`MemTracker::op_begin`].
    op_peak: AtomicU64,
    /// Cumulative bytes read by conversion/scan kernels.
    bytes_in: AtomicU64,
    /// Cumulative bytes materialized as operator output.
    bytes_out: AtomicU64,
    /// Cumulative rows materialized as operator output.
    rows_out: AtomicU64,
    /// Cumulative morsel batches processed by streaming operators.
    batches: AtomicU64,
    /// Cumulative bytes written to spill storage by streaming operators.
    spill_bytes: AtomicU64,
    /// Cumulative artifact-cache hits taken by conversion kernels.
    cache_hits: AtomicU64,
    /// Cumulative rows marked as selection-vector survivors by fused
    /// streaming operators (rows *not* copied between pipeline stages).
    rows_selected: AtomicU64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            limit: u64::MAX,
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            op_peak: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            rows_selected: AtomicU64::new(0),
        }
    }
}

/// Snapshot of the cumulative counters at an operator boundary.
#[derive(Debug, Clone, Copy)]
pub struct OpScope {
    bytes_in: u64,
    bytes_out: u64,
    rows_out: u64,
    batches: u64,
    spill_bytes: u64,
    cache_hits: u64,
    rows_selected: u64,
}

/// Per-operator memory deltas, as they appear in a plan trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemDelta {
    /// Bytes the operator read from resident storage.
    pub bytes_in: u64,
    /// Bytes the operator materialized as output.
    pub bytes_out: u64,
    /// Peak live storage-layer bytes while the operator ran.
    pub peak_alloc_bytes: u64,
    /// Rows the operator materialized.
    pub rows_materialized: u64,
    /// Morsel batches the operator streamed (zero for materializing ops).
    pub batches: u64,
    /// Bytes the operator spilled to disk to stay under budget.
    pub spill_bytes: u64,
    /// Artifact-cache hits the operator's conversion kernels took.
    pub cache_hits: u64,
    /// Rows the operator passed downstream as selection-vector survivors
    /// instead of materialized copies (fused streaming only).
    pub rows_selected: u64,
}

impl MemTracker {
    /// Tracker with no byte limit.
    pub fn unlimited() -> MemTracker {
        MemTracker::default()
    }

    /// Tracker enforcing `limit` live bytes when `Some` (`--mem-budget`).
    pub fn new(limit: Option<u64>) -> MemTracker {
        MemTracker {
            inner: Arc::new(Inner {
                limit: limit.unwrap_or(u64::MAX),
                ..Inner::default()
            }),
        }
    }

    /// Record `bytes` of live storage-layer allocation. Fails (without
    /// recording) when the tracker's limit would be exceeded.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let mut cur = self.inner.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > self.inner.limit {
                return Err(Error::OutOfMemory {
                    requested: bytes,
                    budget: self.inner.limit,
                });
            }
            match self.inner.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    self.inner.op_peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release a previously charged allocation. An unmatched release is a
    /// caller bug; it clamps to zero (never wraps) so one bad call site
    /// cannot poison the peak counters or fail every later charge.
    pub fn release(&self, bytes: u64) {
        let mut cur = self.inner.current.load(Ordering::Relaxed);
        loop {
            debug_assert!(cur >= bytes, "release of {bytes} bytes exceeds live {cur}");
            let next = cur.saturating_sub(bytes);
            match self.inner.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Note `bytes` read from resident storage by a kernel.
    pub fn note_input(&self, bytes: u64) {
        self.inner.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Note `bytes` / `rows` materialized as operator output.
    pub fn note_output(&self, bytes: u64, rows: u64) {
        self.inner.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        self.inner.rows_out.fetch_add(rows, Ordering::Relaxed);
    }

    /// Note one morsel batch streamed through an operator.
    pub fn note_batch(&self) {
        self.inner.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Note `n` streamed batches at once (one operator's whole pass,
    /// counted at a serial point so the tally stays thread-independent).
    pub fn note_batches(&self, n: u64) {
        self.inner.batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Note `bytes` written to spill storage by a streaming operator.
    pub fn note_spill(&self, bytes: u64) {
        self.inner.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Note one artifact-cache hit taken by a conversion kernel.
    pub fn note_cache_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Note `rows` passed downstream as selection-vector survivors by a
    /// fused streaming operator (counted at a serial point, like
    /// [`MemTracker::note_batches`], so the tally is thread-independent).
    pub fn note_selected(&self, rows: u64) {
        self.inner.rows_selected.fetch_add(rows, Ordering::Relaxed);
    }

    /// Cumulative selection-vector survivor rows across the tracker's
    /// lifetime.
    pub fn rows_selected(&self) -> u64 {
        self.inner.rows_selected.load(Ordering::Relaxed)
    }

    /// Cumulative artifact-cache hits across the tracker's lifetime.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits.load(Ordering::Relaxed)
    }

    /// Cumulative spill bytes across the tracker's lifetime.
    pub fn spill_bytes(&self) -> u64 {
        self.inner.spill_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative morsel batches across the tracker's lifetime.
    pub fn batches(&self) -> u64 {
        self.inner.batches.load(Ordering::Relaxed)
    }

    /// Currently live bytes.
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// All-time peak live bytes.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// The live-byte limit (`u64::MAX` = unlimited).
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Bytes still available under the limit (`u64::MAX` when unlimited).
    /// Advisory: concurrent charges can race it — use [`MemTracker::reserve`]
    /// to claim budget atomically.
    pub fn remaining(&self) -> u64 {
        if self.inner.limit == u64::MAX {
            return u64::MAX;
        }
        self.inner.limit.saturating_sub(self.current())
    }

    /// Atomically claim `bytes` of the budget and hold the claim until the
    /// returned [`Reservation`] drops. The admission controller reserves a
    /// request's working-set estimate up front, so concurrent admissions
    /// cannot collectively overshoot the budget.
    pub fn reserve(&self, bytes: u64) -> Result<Reservation> {
        self.charge(bytes)?;
        Ok(Reservation {
            bytes,
            tracker: self.clone(),
        })
    }

    /// Open an operator scope: snapshot the cumulative counters and reset
    /// the per-op peak to the bytes currently live (so a later
    /// [`MemTracker::op_delta`] reports the peak *during* the op, carried
    /// working sets included).
    pub fn op_begin(&self) -> OpScope {
        self.inner.op_peak.store(self.current(), Ordering::Relaxed);
        OpScope {
            bytes_in: self.inner.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.inner.bytes_out.load(Ordering::Relaxed),
            rows_out: self.inner.rows_out.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            spill_bytes: self.inner.spill_bytes.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            rows_selected: self.inner.rows_selected.load(Ordering::Relaxed),
        }
    }

    /// Close an operator scope: the deltas since its [`MemTracker::op_begin`].
    pub fn op_delta(&self, scope: OpScope) -> MemDelta {
        MemDelta {
            bytes_in: self.inner.bytes_in.load(Ordering::Relaxed) - scope.bytes_in,
            bytes_out: self.inner.bytes_out.load(Ordering::Relaxed) - scope.bytes_out,
            peak_alloc_bytes: self.inner.op_peak.load(Ordering::Relaxed),
            rows_materialized: self.inner.rows_out.load(Ordering::Relaxed) - scope.rows_out,
            batches: self.inner.batches.load(Ordering::Relaxed) - scope.batches,
            spill_bytes: self.inner.spill_bytes.load(Ordering::Relaxed) - scope.spill_bytes,
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed) - scope.cache_hits,
            rows_selected: self.inner.rows_selected.load(Ordering::Relaxed) - scope.rows_selected,
        }
    }
}

/// An RAII claim on a slice of a tracker's budget, made with
/// [`MemTracker::reserve`]; the bytes are released when it drops.
#[derive(Debug)]
pub struct Reservation {
    bytes: u64,
    tracker: MemTracker,
}

impl Reservation {
    /// Bytes this reservation holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.tracker.release(self.bytes);
    }
}

/// A dense working set (a [`Matrix`]) held under tracker accounting: its
/// heap bytes are charged on construction and released on drop. Engines
/// hold their pivoted/gathered matrices through this handle so resident
/// bytes stay observable; `Deref` keeps the analytics call sites unchanged.
#[derive(Debug)]
pub struct DenseHandle {
    mat: Matrix,
    tracker: MemTracker,
}

impl DenseHandle {
    /// Charge `mat`'s heap bytes against `tracker` and wrap it.
    pub fn new(tracker: &MemTracker, mat: Matrix) -> Result<DenseHandle> {
        tracker.charge(mat.heap_bytes())?;
        Ok(DenseHandle {
            mat,
            tracker: tracker.clone(),
        })
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }
}

impl std::ops::Deref for DenseHandle {
    type Target = Matrix;

    fn deref(&self) -> &Matrix {
        &self.mat
    }
}

impl Drop for DenseHandle {
    fn drop(&mut self) {
        self.tracker.release(self.mat.heap_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_and_peaks() {
        let t = MemTracker::unlimited();
        t.charge(1000).unwrap();
        t.charge(500).unwrap();
        assert_eq!(t.current(), 1500);
        assert_eq!(t.peak(), 1500);
        t.release(1200);
        t.charge(100).unwrap();
        assert_eq!(t.current(), 400);
        assert_eq!(t.peak(), 1500);
    }

    #[test]
    fn limit_enforced_without_recording() {
        let t = MemTracker::new(Some(1000));
        t.charge(800).unwrap();
        let err = t.charge(300).unwrap_err();
        assert!(err.is_infinite_result(), "budget exhaustion is infinite");
        assert_eq!(t.current(), 800, "failed charge not recorded");
        t.release(500);
        t.charge(300).unwrap();
    }

    #[test]
    fn op_scope_deltas() {
        let t = MemTracker::unlimited();
        t.charge(100).unwrap();
        t.note_input(7);
        let scope = t.op_begin();
        t.note_input(50);
        t.charge(200).unwrap();
        t.release(200);
        t.note_output(64, 8);
        let d = t.op_delta(scope);
        assert_eq!(d.bytes_in, 50, "pre-op inputs excluded");
        assert_eq!(d.bytes_out, 64);
        assert_eq!(d.rows_materialized, 8);
        assert_eq!(d.peak_alloc_bytes, 300, "carried 100 + transient 200");
    }

    #[test]
    fn dense_handle_is_raii() {
        let t = MemTracker::unlimited();
        {
            let h = DenseHandle::new(&t, Matrix::zeros(4, 8)).unwrap();
            assert_eq!(t.current(), 4 * 8 * 8);
            assert_eq!(h.rows(), 4);
        }
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn reservation_is_raii_and_atomic() {
        let t = MemTracker::new(Some(1000));
        assert_eq!(t.remaining(), 1000);
        let r = t.reserve(700).unwrap();
        assert_eq!(r.bytes(), 700);
        assert_eq!(t.remaining(), 300);
        assert!(t.reserve(400).is_err(), "over-budget reserve fails");
        drop(r);
        assert_eq!(t.remaining(), 1000);
        let _r2 = t.reserve(400).unwrap();
        assert_eq!(MemTracker::unlimited().remaining(), u64::MAX);
    }

    #[test]
    fn tracker_shared_across_clones() {
        let t = MemTracker::new(Some(100));
        let t2 = t.clone();
        t.charge(80).unwrap();
        assert!(t2.charge(80).is_err());
        assert_eq!(t2.current(), 80);
    }
}
