//! Budget-charged artifact cache for the conversion kernels.
//!
//! GenBase's resident server answers the same cells over and over, and the
//! expensive part of every cell is representation conversion — dense →
//! triples, triples → dense (pivot), dense → chunked, relation → columnar.
//! This module memoizes those conversion *results* across queries:
//!
//! - Entries are immutable [`CacheValue`]s shared as `Arc`s; a hit clones
//!   the payload out, so cached state is never mutated by a query.
//! - Every entry's heap bytes are charged against the cache's own
//!   [`MemTracker`] (the server's `--cache-budget`); inserting past the
//!   budget evicts least-recently-used entries, and an entry that cannot
//!   fit even after evicting everything unpinned is simply not cached.
//! - A [`CachePin`] (RAII) marks an entry as in use by a live query;
//!   pinned entries are skipped by eviction.
//! - Lookups are single-flight: concurrent queries missing on the same key
//!   block until the first builder fills (or abandons) the slot, so a cold
//!   artifact is computed exactly once.
//!
//! The identity contract: a cache hit must leave every accounting surface —
//! `bytes_in`/`bytes_out`/`rows`/`peak_alloc` notes on the run's tracker,
//! simulated-machine [`genbase_util::Budget`] charges — exactly as a cold
//! run would, so served responses stay byte-identical warm vs cold. The
//! cached-kernel wrappers in [`crate::convert`] replay that accounting on
//! the hit path and skip only the compute.

use crate::table::Column;
use crate::tracker::MemTracker;
use genbase_array::Array2D;
use genbase_linalg::Matrix;
use genbase_relational::Schema;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One memoized conversion result. Payloads are the storage layer's own
/// representations so a hit can clone straight into the shapes the cold
/// kernels produce.
#[derive(Debug, Clone)]
pub enum CacheValue {
    /// A columnar table, stored as its parts so a hit can re-run
    /// [`crate::table::ColumnarTable::from_columns`] (re-charging the run's
    /// tracker exactly as the cold path does).
    Columnar {
        /// The table's schema.
        schema: Schema,
        /// The table's columns, in schema order.
        columns: Vec<Column>,
    },
    /// A dense matrix (pivot / load results).
    Dense(Matrix),
    /// A chunked array (the SciDB ingest result).
    Chunked(Array2D),
}

impl CacheValue {
    /// Heap bytes this value holds resident — what its slot charges
    /// against the cache budget.
    pub fn heap_bytes(&self) -> u64 {
        match self {
            CacheValue::Columnar { columns, .. } => columns.iter().map(Column::heap_bytes).sum(),
            CacheValue::Dense(mat) => mat.heap_bytes(),
            CacheValue::Chunked(arr) => (arr.rows() * arr.cols() * 8) as u64,
        }
    }

    /// The columnar payload, if this is a [`CacheValue::Columnar`].
    pub fn as_columnar(&self) -> Option<(&Schema, &[Column])> {
        match self {
            CacheValue::Columnar { schema, columns } => Some((schema, columns)),
            _ => None,
        }
    }

    /// The dense payload, if this is a [`CacheValue::Dense`].
    pub fn as_dense(&self) -> Option<&Matrix> {
        match self {
            CacheValue::Dense(mat) => Some(mat),
            _ => None,
        }
    }

    /// The chunked payload, if this is a [`CacheValue::Chunked`].
    pub fn as_chunked(&self) -> Option<&Array2D> {
        match self {
            CacheValue::Chunked(arr) => Some(arr),
            _ => None,
        }
    }
}

/// One resident entry.
#[derive(Debug)]
struct Slot {
    value: Arc<CacheValue>,
    bytes: u64,
    /// Live [`CachePin`]s; eviction skips pinned slots.
    pins: u64,
    /// LRU clock value at last use.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<String, Slot>,
    /// Keys currently being computed by some query (single-flight).
    building: HashSet<String>,
    /// Monotonic LRU clock.
    tick: u64,
}

/// The shared, budget-charged conversion-artifact cache.
#[derive(Debug)]
pub struct ArtifactCache {
    state: Mutex<CacheState>,
    built: Condvar,
    /// Dedicated tracker: entry bytes charge here, never against a query's
    /// own run tracker (hits must not perturb per-cell accounting).
    tracker: MemTracker,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Outcome of [`ArtifactCache::begin`].
pub enum Lookup {
    /// The artifact is resident: the shared value plus a pin that protects
    /// it from eviction while the query uses it.
    Hit(Arc<CacheValue>, CachePin),
    /// The artifact must be computed; fill (or drop) the slot when done.
    Build(BuildSlot),
}

impl ArtifactCache {
    /// A cache charging entries against `budget` bytes.
    pub fn new(budget: u64) -> Arc<ArtifactCache> {
        Arc::new(ArtifactCache {
            state: Mutex::new(CacheState::default()),
            built: Condvar::new(),
            tracker: MemTracker::new(Some(budget)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `key`, blocking while another query is computing it. A miss
    /// returns a [`BuildSlot`] the caller must fill with the computed value
    /// (dropping it unfilled wakes the waiters to compute for themselves).
    pub fn begin(self: &Arc<Self>, key: &str) -> Lookup {
        let mut state = self.lock();
        loop {
            if state.slots.contains_key(key) {
                state.tick += 1;
                let tick = state.tick;
                let slot = state.slots.get_mut(key).expect("checked");
                slot.last_used = tick;
                slot.pins += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Lookup::Hit(
                    Arc::clone(&slot.value),
                    CachePin {
                        cache: Arc::clone(self),
                        key: key.to_string(),
                    },
                );
            }
            if state.building.contains(key) {
                state = self.built.wait(state).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            state.building.insert(key.to_string());
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Build(BuildSlot {
                cache: Arc::clone(self),
                key: key.to_string(),
                open: true,
            });
        }
    }

    /// Cache hits since construction.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since construction.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted under budget pressure since construction.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes currently resident across all entries.
    pub fn bytes(&self) -> u64 {
        self.tracker.current()
    }

    /// The configured `--cache-budget` in bytes.
    pub fn budget(&self) -> u64 {
        self.tracker.limit()
    }

    /// Number of resident entries.
    pub fn entries(&self) -> usize {
        self.lock().slots.len()
    }

    /// Bytes resident under keys starting with `prefix` — the admission
    /// controller subtracts this from a request's working-set estimate,
    /// since cached artifacts will not be rebuilt by the run.
    pub fn bytes_under_prefix(&self, prefix: &str) -> u64 {
        self.lock()
            .slots
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.bytes)
            .sum()
    }
}

/// RAII in-use mark on a cache entry: eviction skips the entry while any
/// pin is live. Dropping the pin releases it.
#[derive(Debug)]
pub struct CachePin {
    cache: Arc<ArtifactCache>,
    key: String,
}

impl Drop for CachePin {
    fn drop(&mut self) {
        let mut state = self.cache.lock();
        if let Some(slot) = state.slots.get_mut(&self.key) {
            slot.pins = slot.pins.saturating_sub(1);
        }
    }
}

/// The single-flight build claim handed to the one query computing a cold
/// key. [`BuildSlot::fill`] publishes the value; dropping the slot unfilled
/// (builder failed) releases the claim so waiters retry.
pub struct BuildSlot {
    cache: Arc<ArtifactCache>,
    key: String,
    open: bool,
}

impl BuildSlot {
    /// Publish the computed value, charging its bytes against the cache
    /// budget and evicting least-recently-used unpinned entries to make
    /// room. Returns the shared value and a pin, or `None` when the value
    /// cannot fit even after evicting everything unpinned (the artifact is
    /// then simply not cached — never an error).
    pub fn fill(mut self, value: CacheValue) -> Option<(Arc<CacheValue>, CachePin)> {
        self.open = false;
        let bytes = value.heap_bytes();
        let mut state = self.cache.lock();
        while self.cache.tracker.charge(bytes).is_err() {
            let victim = state
                .slots
                .iter()
                .filter(|(_, s)| s.pins == 0)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let evicted = state.slots.remove(&k).expect("victim resident");
                    self.cache.tracker.release(evicted.bytes);
                    self.cache.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    state.building.remove(&self.key);
                    self.cache.built.notify_all();
                    return None;
                }
            }
        }
        state.tick += 1;
        let tick = state.tick;
        let value = Arc::new(value);
        state.slots.insert(
            self.key.clone(),
            Slot {
                value: Arc::clone(&value),
                bytes,
                pins: 1,
                last_used: tick,
            },
        );
        state.building.remove(&self.key);
        self.cache.built.notify_all();
        Some((
            value,
            CachePin {
                cache: Arc::clone(&self.cache),
                key: self.key.clone(),
            },
        ))
    }
}

impl Drop for BuildSlot {
    fn drop(&mut self) {
        if self.open {
            let mut state = self.cache.lock();
            state.building.remove(&self.key);
            self.cache.built.notify_all();
        }
    }
}

/// A query's handle on the shared cache: the cache plus the key prefix
/// pinning the configuration fingerprint. Two servers (or two harness
/// configurations) with different fingerprints sharing one cache can never
/// observe each other's artifacts — the prefix makes their keyspaces
/// disjoint, which is the fingerprint-mismatch bypass.
#[derive(Debug, Clone)]
pub struct CacheScope {
    cache: Arc<ArtifactCache>,
    prefix: String,
}

impl CacheScope {
    /// Scope `cache` under `prefix` (the config fingerprint).
    pub fn new(cache: Arc<ArtifactCache>, prefix: impl Into<String>) -> CacheScope {
        CacheScope {
            cache,
            prefix: prefix.into(),
        }
    }

    /// The underlying shared cache.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// The scope's key prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Full cache key for a conversion artifact: fingerprint, dataset dims
    /// (`patients x genes`), the conversion kernel's name, and a
    /// kernel-specific argument digest.
    pub fn key(&self, patients: usize, genes: usize, conversion: &str, extra: &str) -> String {
        format!("{}|{patients}x{genes}|{conversion}|{extra}", self.prefix)
    }

    /// Prefix matching every artifact of one dataset size under this
    /// scope; see [`ArtifactCache::bytes_under_prefix`].
    pub fn size_prefix(&self, patients: usize, genes: usize) -> String {
        format!("{}|{patients}x{genes}|", self.prefix)
    }
}

/// FNV-1a digest of an id list — the cheap, deterministic argument
/// fingerprint conversion keys carry so two different filter selections
/// can never alias to one artifact.
pub fn digest_ids(ids: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = h.wrapping_mul(0x100_0000_01b3) ^ (ids.len() as u64);
    for &id in ids {
        h ^= id as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_value(edge: usize, fill: f64) -> CacheValue {
        CacheValue::Dense(Matrix::from_fn(edge, edge, |_, _| fill))
    }

    fn fill_key(cache: &Arc<ArtifactCache>, key: &str, value: CacheValue) -> Option<CachePin> {
        match cache.begin(key) {
            Lookup::Build(slot) => slot.fill(value).map(|(_, pin)| pin),
            Lookup::Hit(..) => panic!("{key} unexpectedly resident"),
        }
    }

    #[test]
    fn hit_returns_the_cached_value() {
        let cache = ArtifactCache::new(1 << 20);
        let pin = fill_key(&cache, "k", dense_value(4, 7.0)).expect("fits");
        drop(pin);
        match cache.begin("k") {
            Lookup::Hit(value, _pin) => {
                assert_eq!(value.as_dense().unwrap().get(0, 0), 7.0);
            }
            Lookup::Build(_) => panic!("expected hit"),
        }
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
        assert_eq!(cache.bytes(), 4 * 4 * 8);
    }

    #[test]
    fn lru_eviction_under_a_tiny_budget() {
        // Budget fits exactly two 4x4 matrices (128 bytes each).
        let cache = ArtifactCache::new(256);
        drop(fill_key(&cache, "a", dense_value(4, 1.0)));
        drop(fill_key(&cache, "b", dense_value(4, 2.0)));
        // Touch "a" so "b" is the LRU victim.
        assert!(matches!(cache.begin("a"), Lookup::Hit(..)));
        drop(fill_key(&cache, "c", dense_value(4, 3.0)));
        assert_eq!(cache.eviction_count(), 1);
        assert!(matches!(cache.begin("a"), Lookup::Hit(..)), "a survives");
        assert!(matches!(cache.begin("c"), Lookup::Hit(..)), "c resident");
        match cache.begin("b") {
            Lookup::Build(_slot) => {} // evicted; dropped unfilled
            Lookup::Hit(..) => panic!("b should have been the LRU victim"),
        }
        assert!(cache.bytes() <= 256);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let cache = ArtifactCache::new(256);
        let pin_a = fill_key(&cache, "a", dense_value(4, 1.0)).expect("fits");
        drop(fill_key(&cache, "b", dense_value(4, 2.0)));
        // "a" is older than "b" but pinned; pressure must evict "b".
        drop(fill_key(&cache, "c", dense_value(4, 3.0)));
        assert!(
            matches!(cache.begin("a"), Lookup::Hit(..)),
            "pinned survives"
        );
        match cache.begin("b") {
            Lookup::Build(_slot) => {}
            Lookup::Hit(..) => panic!("unpinned b should have been evicted"),
        }
        drop(pin_a);
        // A value bigger than everything unpinned can free is not cached.
        let pin_all: Vec<CachePin> = ["a", "c"]
            .iter()
            .filter_map(|k| match cache.begin(k) {
                Lookup::Hit(_, pin) => Some(pin),
                Lookup::Build(_) => None,
            })
            .collect();
        match cache.begin("huge") {
            Lookup::Build(slot) => assert!(
                slot.fill(dense_value(8, 4.0)).is_none(),
                "512B entry cannot fit a 256B budget with everything pinned"
            ),
            Lookup::Hit(..) => panic!("huge cannot be resident"),
        }
        drop(pin_all);
    }

    #[test]
    fn racing_builders_compute_a_cold_key_exactly_once() {
        let cache = ArtifactCache::new(1 << 20);
        let computes = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || match cache.begin("shared") {
                Lookup::Hit(value, _pin) => value.as_dense().unwrap().get(0, 0),
                Lookup::Build(slot) => {
                    computes.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    let (value, _pin) = slot.fill(dense_value(4, 9.0)).expect("fits");
                    value.as_dense().unwrap().get(0, 0)
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 9.0);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 1, "single-flight");
        assert_eq!(cache.miss_count(), 1);
        assert_eq!(cache.hit_count(), 7);
    }

    #[test]
    fn an_abandoned_build_wakes_waiters() {
        let cache = ArtifactCache::new(1 << 20);
        let slot = match cache.begin("k") {
            Lookup::Build(slot) => slot,
            Lookup::Hit(..) => panic!("cold"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.begin("k") {
                Lookup::Hit(..) => panic!("nothing was filled"),
                Lookup::Build(slot) => {
                    slot.fill(dense_value(4, 1.0)).expect("fits");
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(slot); // builder failed; waiter takes over
        waiter.join().unwrap();
        assert!(matches!(cache.begin("k"), Lookup::Hit(..)));
    }

    #[test]
    fn prefix_accounting_and_scope_keys() {
        let cache = ArtifactCache::new(1 << 20);
        let scope = CacheScope::new(Arc::clone(&cache), "fp-a");
        let key = scope.key(240, 240, "pivot", "x");
        assert_eq!(key, "fp-a|240x240|pivot|x");
        drop(fill_key(&cache, &key, dense_value(4, 1.0)));
        drop(fill_key(
            &cache,
            &scope.key(720, 960, "pivot", "x"),
            dense_value(4, 2.0),
        ));
        assert_eq!(cache.bytes_under_prefix(&scope.size_prefix(240, 240)), 128);
        assert_eq!(cache.bytes_under_prefix(&scope.size_prefix(720, 960)), 128);
        // A different fingerprint sees a disjoint keyspace (the
        // fingerprint-mismatch bypass).
        let other = CacheScope::new(Arc::clone(&cache), "fp-b");
        assert!(matches!(
            cache.begin(&other.key(240, 240, "pivot", "x")),
            Lookup::Build(_)
        ));
        assert_eq!(cache.bytes_under_prefix(&other.size_prefix(240, 240)), 0);
    }

    #[test]
    fn id_digest_separates_selections() {
        assert_ne!(digest_ids(&[1, 2, 3]), digest_ids(&[1, 2, 4]));
        assert_ne!(digest_ids(&[1, 2, 3]), digest_ids(&[1, 2]));
        assert_eq!(digest_ids(&[1, 2, 3]), digest_ids(&[1, 2, 3]));
    }
}
