//! Morsel-driven streaming: fixed-row column batches and the spill reel.
//!
//! A [`Morsel`] is an owned, fixed-row batch of [`Column`]s carved out of a
//! [`TableView`], charged against the [`MemTracker`] for exactly its heap
//! bytes while it is resident. Streaming operators pull morsels from their
//! upstream instead of materializing whole intermediate tables, so the peak
//! working set of a pipeline is the sum of a bounded batch window plus its
//! sinks — not the full table between every operator.
//!
//! A [`BatchReel`] is the streaming base-table representation: morsels
//! pushed in a fixed order, kept resident up to a deterministic byte cap
//! and spilled to disk past it (raw little-endian column images, one
//! contiguous record per batch, in the reel's own temp file). Replay yields
//! batches in exactly push order regardless of how many were spilled or how
//! many threads consume them, which is what keeps streaming results
//! bit-identical to the materializing path: every downstream kernel sees
//! rows in the same order the materialized table would have stored them.
//!
//! Determinism contract (pinned by `tests/streaming_exec.rs`):
//! - replay order == push order, at every batch size and thread count;
//! - tracker charges happen only at serial points (push, window load),
//!   with a fixed-size replay window, so `peak_alloc` / `batches` /
//!   `spill_bytes` are pure functions of (data, batch_rows, budget) and
//!   never of the thread count.

use crate::table::{Column, ColumnarTable, TableView};
use crate::tracker::MemTracker;
use genbase_relational::{DataType, Schema};
use genbase_util::{runtime, Error, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default rows per morsel when a streaming run does not set `--batch-rows`.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Morsels loaded per replay window. Fixed (not thread-derived) so the
/// transient charge for spilled batches — and therefore `peak_alloc` — is
/// identical at every thread count.
const REPLAY_WINDOW: usize = 8;

/// One owned, tracker-charged batch of column data.
#[derive(Debug)]
pub struct Morsel {
    cols: Vec<Column>,
    n_rows: usize,
    tracker: MemTracker,
}

impl Morsel {
    /// Build a morsel from owned columns, charging the tracker.
    pub fn from_columns(tracker: &MemTracker, cols: Vec<Column>) -> Result<Morsel> {
        let n_rows = cols.first().map(Column::len).unwrap_or(0);
        for (i, c) in cols.iter().enumerate() {
            if c.len() != n_rows {
                return Err(Error::invalid(format!("morsel column {i} ragged")));
            }
        }
        let bytes: u64 = cols.iter().map(Column::heap_bytes).sum();
        tracker.charge(bytes)?;
        Ok(Morsel {
            cols,
            n_rows,
            tracker: tracker.clone(),
        })
    }

    /// Carve the `start..end` row range of a view into an owned morsel.
    pub fn carve(
        tracker: &MemTracker,
        view: &TableView<'_>,
        start: usize,
        end: usize,
    ) -> Result<Morsel> {
        if start > end || end > view.n_rows() {
            return Err(Error::invalid(format!(
                "morsel {start}..{end} out of range (rows = {})",
                view.n_rows()
            )));
        }
        let sub = view.subview(start, end)?;
        let cols: Vec<Column> = (0..view.schema().arity())
            .map(|i| sub.column_copy(i))
            .collect();
        Morsel::from_columns(tracker, cols)
    }

    /// Rows in the batch.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Borrow all columns (schema order).
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Heap bytes of the batch's column storage.
    pub fn heap_bytes(&self) -> u64 {
        self.cols.iter().map(Column::heap_bytes).sum()
    }

    /// Borrow an integer column.
    pub fn int_col(&self, i: usize) -> Result<&[i64]> {
        match &self.cols[i] {
            Column::Ints(v) => Ok(v),
            Column::Floats(_) => Err(Error::invalid(format!("morsel column {i} is Float"))),
        }
    }

    /// Borrow a float column.
    pub fn float_col(&self, i: usize) -> Result<&[f64]> {
        match &self.cols[i] {
            Column::Floats(v) => Ok(v),
            Column::Ints(_) => Err(Error::invalid(format!("morsel column {i} is Int"))),
        }
    }

    /// Copy only the rows named by `sel` (ascending batch-local positions,
    /// e.g. [`crate::pipeline::SelVec::positions`]) into a new morsel,
    /// charging the tracker for survivor bytes only.
    pub fn gather(&self, sel: &[u32]) -> Result<Morsel> {
        if let Some(&last) = sel.last() {
            if last as usize >= self.n_rows {
                return Err(Error::invalid(format!(
                    "selection position {last} out of range (rows = {})",
                    self.n_rows
                )));
            }
        }
        let cols: Vec<Column> = self
            .cols
            .iter()
            .map(|c| match c {
                Column::Ints(v) => Column::Ints(sel.iter().map(|&i| v[i as usize]).collect()),
                Column::Floats(v) => Column::Floats(sel.iter().map(|&i| v[i as usize]).collect()),
            })
            .collect();
        Morsel::from_columns(&self.tracker, cols)
    }
}

impl Drop for Morsel {
    fn drop(&mut self) {
        self.tracker.release(self.heap_bytes());
    }
}

/// The `(start, end)` row ranges that carve `n_rows` into `batch_rows`-row
/// morsels (the final range is ragged when `batch_rows` does not divide).
/// `batch_rows == 0` is a usage error, not a silent 1-row fallback.
pub fn batch_ranges(n_rows: usize, batch_rows: usize) -> Result<Vec<(usize, usize)>> {
    if batch_rows == 0 {
        return Err(Error::invalid("batch_rows must be at least 1"));
    }
    let mut out = Vec::with_capacity(n_rows.div_ceil(batch_rows).max(1));
    let mut start = 0;
    while start < n_rows {
        let end = (start + batch_rows).min(n_rows);
        out.push((start, end));
        start = end;
    }
    Ok(out)
}

/// Carve a whole view into morsels of `batch_rows` rows each.
pub fn carve_view(
    tracker: &MemTracker,
    view: &TableView<'_>,
    batch_rows: usize,
) -> Result<Vec<Morsel>> {
    batch_ranges(view.n_rows(), batch_rows)?
        .into_iter()
        .map(|(s, e)| Morsel::carve(tracker, view, s, e))
        .collect()
}

/// Reassemble morsels into a [`ColumnarTable`], transferring their tracker
/// charges instead of re-registering the bytes (see
/// [`ColumnarTable::adopt_charged_columns`] for the double-charge this
/// boundary used to hit). Peak while reassembling is the table plus one
/// in-flight batch, never 2x.
pub fn reassemble(
    tracker: &MemTracker,
    schema: Schema,
    morsels: Vec<Morsel>,
) -> Result<ColumnarTable> {
    let arity = schema.arity();
    let mut acc: Vec<Column> = (0..arity)
        .map(|i| match schema.col_type(i) {
            DataType::Int => Column::Ints(Vec::new()),
            DataType::Float => Column::Floats(Vec::new()),
        })
        .collect();
    for m in morsels {
        if m.cols.len() != arity {
            return Err(Error::invalid("morsel arity does not match schema"));
        }
        // Charge the appended copy, then drop the morsel (releasing its
        // charge): the accumulated buffers stay exactly-once accounted.
        tracker.charge(m.heap_bytes())?;
        for (i, c) in m.cols.iter().enumerate() {
            acc[i].append(c)?;
        }
    }
    ColumnarTable::adopt_charged_columns(tracker, schema, acc)
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where a pushed batch lives.
enum Slot {
    Resident(Morsel),
    Spilled { offset: u64, n_rows: usize },
}

/// A streaming base table: batches in push order, resident up to a byte
/// cap, spilled to disk past it.
pub struct BatchReel {
    tracker: MemTracker,
    schema: Schema,
    slots: Vec<Slot>,
    resident_bytes: u64,
    resident_cap: u64,
    spill_dir: Option<PathBuf>,
    spill_path: Option<PathBuf>,
    writer: Option<BufWriter<File>>,
    spill_offset: u64,
    total_rows: usize,
}

/// Seek-aware buffered reader over the spill file: tracks its own byte
/// position and issues [`BufReader::seek_relative`] only when a requested
/// offset is not the next sequential byte, so the in-push-order replay and
/// window scans (monotonically increasing, contiguous offsets) never drop
/// the read buffer.
struct SpillReader {
    inner: BufReader<File>,
    pos: u64,
}

impl SpillReader {
    fn open(path: &Path) -> Result<SpillReader> {
        let file = File::open(path)
            .map_err(|e| Error::invalid(format!("spill open {}: {e}", path.display())))?;
        Ok(SpillReader {
            inner: BufReader::new(file),
            pos: 0,
        })
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let delta = offset as i64 - self.pos as i64;
        if delta != 0 {
            self.inner
                .seek_relative(delta)
                .map_err(|e| Error::invalid(format!("spill seek: {e}")))?;
            self.pos = offset;
        }
        self.inner
            .read_exact(buf)
            .map_err(|e| Error::invalid(format!("spill read: {e}")))?;
        self.pos += buf.len() as u64;
        Ok(())
    }
}

impl BatchReel {
    /// New reel. Batches stay resident while their summed bytes fit
    /// `resident_cap`; later batches spill to a temp file under
    /// `spill_dir` (or the system temp directory).
    pub fn new(
        tracker: &MemTracker,
        schema: Schema,
        resident_cap: u64,
        spill_dir: Option<&Path>,
    ) -> BatchReel {
        BatchReel {
            tracker: tracker.clone(),
            schema,
            slots: Vec::new(),
            resident_bytes: 0,
            resident_cap,
            spill_dir: spill_dir.map(Path::to_path_buf),
            spill_path: None,
            writer: None,
            spill_offset: 0,
            total_rows: 0,
        }
    }

    /// The reel's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows pushed.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Batches pushed.
    pub fn n_batches(&self) -> usize {
        self.slots.len()
    }

    /// Bytes currently resident (charged against the tracker).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Cumulative bytes written to the spill file.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_offset
    }

    /// Logical bytes of the whole reel, resident and spilled.
    pub fn span_bytes(&self) -> u64 {
        (self.total_rows * self.schema.arity() * 8) as u64
    }

    /// Push the next batch. Deterministic policy: a batch stays resident
    /// iff it fits under the cap at push time, so the resident/spilled
    /// split depends only on the data and the cap.
    pub fn push(&mut self, morsel: Morsel) -> Result<()> {
        if morsel.cols.len() != self.schema.arity() {
            return Err(Error::invalid("batch arity does not match reel schema"));
        }
        self.total_rows += morsel.n_rows();
        self.tracker.note_batch();
        let bytes = morsel.heap_bytes();
        if self.resident_bytes + bytes <= self.resident_cap {
            self.resident_bytes += bytes;
            self.slots.push(Slot::Resident(morsel));
            return Ok(());
        }
        let offset = self.write_spilled(&morsel)?;
        self.tracker.note_spill(bytes);
        self.slots.push(Slot::Spilled {
            offset,
            n_rows: morsel.n_rows(),
        });
        Ok(())
    }

    fn write_spilled(&mut self, morsel: &Morsel) -> Result<u64> {
        if self.writer.is_none() {
            let dir = self.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            let name = format!(
                "genbase-spill-{}-{}.bin",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
            );
            let path = dir.join(name);
            let file = File::create(&path)
                .map_err(|e| Error::invalid(format!("spill create {}: {e}", path.display())))?;
            self.spill_path = Some(path);
            self.writer = Some(BufWriter::new(file));
        }
        let offset = self.spill_offset;
        let writer = self.writer.as_mut().expect("spill writer open");
        let write_err = |e: std::io::Error| Error::invalid(format!("spill write: {e}"));
        for col in &morsel.cols {
            match col {
                Column::Ints(v) => {
                    for x in v {
                        writer.write_all(&x.to_le_bytes()).map_err(write_err)?;
                    }
                }
                Column::Floats(v) => {
                    for x in v {
                        writer.write_all(&x.to_le_bytes()).map_err(write_err)?;
                    }
                }
            }
            self.spill_offset += (col.len() * 8) as u64;
        }
        // Flush per spilled batch: the reel stays replayable (readers open
        // the file by path) while later pushes are still spilling.
        writer
            .flush()
            .map_err(|e| Error::invalid(format!("spill flush: {e}")))?;
        Ok(offset)
    }

    fn read_spilled(&self, reader: &mut SpillReader, offset: u64, n_rows: usize) -> Result<Morsel> {
        let mut cols = Vec::with_capacity(self.schema.arity());
        let mut buf = vec![0u8; n_rows * 8];
        for i in 0..self.schema.arity() {
            reader.read_at(offset + (i * n_rows * 8) as u64, &mut buf)?;
            let col = match self.schema.col_type(i) {
                DataType::Int => Column::Ints(
                    buf.chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect(),
                ),
                DataType::Float => Column::Floats(
                    buf.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect(),
                ),
            };
            cols.push(col);
        }
        Morsel::from_columns(&self.tracker, cols)
    }

    /// Replay every batch in push order, applying `f` serially.
    pub fn replay(&self, mut f: impl FnMut(&Morsel) -> Result<()>) -> Result<()> {
        let mut reader = self.open_reader()?;
        for slot in &self.slots {
            match slot {
                Slot::Resident(m) => f(m)?,
                Slot::Spilled { offset, n_rows } => {
                    let reader = reader.as_mut().ok_or_else(|| {
                        Error::invalid("reel has spilled batches but no spill file")
                    })?;
                    let m = self.read_spilled(reader, *offset, *n_rows)?;
                    f(&m)?;
                }
            }
        }
        Ok(())
    }

    /// Map `f` over every batch in push order and collect the results in
    /// that order. Batches are processed in fixed-size windows: each
    /// window's spilled batches are loaded at a serial point (bounding the
    /// transient charge independently of `threads`), then `f` runs over the
    /// window on the shared runtime pool. `f` must not touch the tracker —
    /// morsel-task results are combined by the caller at serial points.
    pub fn map_batches<T: Send>(
        &self,
        threads: usize,
        f: impl Fn(&Morsel) -> T + Sync,
    ) -> Result<Vec<T>> {
        let mut reader = self.open_reader()?;
        let mut out: Vec<T> = Vec::with_capacity(self.slots.len());
        for window in self.slots.chunks(REPLAY_WINDOW) {
            // Serial point: materialize the window's spilled batches.
            let mut loaded: Vec<Option<Morsel>> = Vec::with_capacity(window.len());
            for slot in window {
                match slot {
                    Slot::Resident(_) => loaded.push(None),
                    Slot::Spilled { offset, n_rows } => {
                        let reader = reader.as_mut().ok_or_else(|| {
                            Error::invalid("reel has spilled batches but no spill file")
                        })?;
                        loaded.push(Some(self.read_spilled(reader, *offset, *n_rows)?));
                    }
                }
            }
            let batch_of = |i: usize| -> &Morsel {
                match (&window[i], &loaded[i]) {
                    (Slot::Resident(m), _) => m,
                    (_, Some(m)) => m,
                    _ => unreachable!("spilled slot loaded above"),
                }
            };
            out.extend(runtime::parallel_map(threads, window.len(), |i| {
                f(batch_of(i))
            }));
        }
        Ok(out)
    }

    /// One fused pass over the reel: `probe` runs over each window on the
    /// shared runtime pool (like [`BatchReel::map_batches`], it must not
    /// touch the tracker), then `merge` consumes each batch together with
    /// its probe result serially, in exact push order. This is the primitive
    /// the fused pipeline builds on — a parallel filter/semijoin probe whose
    /// survivors are folded into a sink (scatter, CSV text, group
    /// accumulator) at a serial point, so sink state mutates in the same
    /// order the materialized table would have stored the rows.
    pub fn window_scan<T: Send>(
        &self,
        threads: usize,
        probe: impl Fn(&Morsel) -> T + Sync,
        mut merge: impl FnMut(&Morsel, T) -> Result<()>,
    ) -> Result<()> {
        let mut reader = self.open_reader()?;
        for window in self.slots.chunks(REPLAY_WINDOW) {
            // Serial point: materialize the window's spilled batches.
            let mut loaded: Vec<Option<Morsel>> = Vec::with_capacity(window.len());
            for slot in window {
                match slot {
                    Slot::Resident(_) => loaded.push(None),
                    Slot::Spilled { offset, n_rows } => {
                        let reader = reader.as_mut().ok_or_else(|| {
                            Error::invalid("reel has spilled batches but no spill file")
                        })?;
                        loaded.push(Some(self.read_spilled(reader, *offset, *n_rows)?));
                    }
                }
            }
            let batch_of = |i: usize| -> &Morsel {
                match (&window[i], &loaded[i]) {
                    (Slot::Resident(m), _) => m,
                    (_, Some(m)) => m,
                    _ => unreachable!("spilled slot loaded above"),
                }
            };
            let probed = runtime::parallel_map(threads, window.len(), |i| probe(batch_of(i)));
            // Serial point: in-push-order merge of batch + probe result.
            for (i, t) in probed.into_iter().enumerate() {
                merge(batch_of(i), t)?;
            }
        }
        Ok(())
    }

    fn open_reader(&self) -> Result<Option<SpillReader>> {
        match &self.spill_path {
            None => Ok(None),
            Some(p) => SpillReader::open(p).map(Some),
        }
    }
}

impl Drop for BatchReel {
    fn drop(&mut self) {
        self.writer = None;
        if let Some(p) = &self.spill_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl std::fmt::Debug for BatchReel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchReel")
            .field("batches", &self.slots.len())
            .field("total_rows", &self.total_rows)
            .field("resident_bytes", &self.resident_bytes)
            .field("spill_bytes", &self.spill_offset)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnarTable;

    fn triple_schema() -> Schema {
        Schema::new(&[
            ("gene_id", DataType::Int),
            ("patient_id", DataType::Int),
            ("value", DataType::Float),
        ])
        .unwrap()
    }

    fn sample_table(tracker: &MemTracker, n: usize) -> ColumnarTable {
        ColumnarTable::from_columns(
            tracker,
            triple_schema(),
            vec![
                Column::Ints((0..n as i64).collect()),
                Column::Ints((0..n as i64).map(|i| i * 7 % 13).collect()),
                Column::Floats((0..n).map(|i| i as f64 * 0.5 - 3.0).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ranges_cover_exactly_with_ragged_tail() {
        assert_eq!(batch_ranges(10, 4).unwrap(), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(batch_ranges(4, 4).unwrap(), vec![(0, 4)]);
        assert_eq!(batch_ranges(3, 5).unwrap(), vec![(0, 3)]);
        assert_eq!(batch_ranges(0, 5).unwrap(), Vec::<(usize, usize)>::new());
        // batch_rows = 0 is a usage error, not a silent 1-row fallback.
        assert!(batch_ranges(3, 0).is_err());
        assert!(batch_ranges(0, 0).is_err());
    }

    #[test]
    fn carve_reassemble_round_trip_transfers_charges() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 23);
        let bytes = table.heap_bytes();
        let morsels = carve_view(&t, &table.view(), 7).unwrap();
        assert_eq!(morsels.len(), 4);
        assert_eq!(t.current(), 2 * bytes, "table + carved copies");
        let rebuilt = reassemble(&t, triple_schema(), morsels).unwrap();
        assert_eq!(rebuilt.n_rows(), 23);
        assert_eq!(rebuilt.int_col(0).unwrap(), table.int_col(0).unwrap());
        assert_eq!(rebuilt.float_col(2).unwrap(), table.float_col(2).unwrap());
        assert_eq!(t.current(), 2 * bytes, "reassembly holds exactly one copy");
        assert!(
            t.peak() <= 2 * bytes + 7 * 3 * 8,
            "peak bounded by one in-flight batch, not 2x ({})",
            t.peak()
        );
        drop(rebuilt);
        drop(table);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn reel_spills_past_cap_and_replays_in_push_order() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 40);
        // Cap fits two 5-row batches (5 rows x 3 cols x 8 B = 120 B each).
        let mut reel = BatchReel::new(&t, triple_schema(), 240, None);
        for (s, e) in batch_ranges(40, 5).unwrap() {
            reel.push(Morsel::carve(&t, &table.view(), s, e).unwrap())
                .unwrap();
        }
        assert_eq!(reel.n_batches(), 8);
        assert_eq!(reel.total_rows(), 40);
        assert_eq!(reel.resident_bytes(), 240);
        assert_eq!(reel.spill_bytes(), 6 * 120, "six batches spilled");
        assert_eq!(t.spill_bytes(), 6 * 120);
        assert_eq!(t.batches(), 8);
        let mut ids = Vec::new();
        reel.replay(|m| {
            ids.extend_from_slice(m.int_col(0)?);
            Ok(())
        })
        .unwrap();
        assert_eq!(ids, (0..40).collect::<Vec<i64>>());
        // map_batches yields push-order results at every thread count.
        for threads in [1usize, 3, 8] {
            let sums = reel
                .map_batches(threads, |m| {
                    m.float_col(2).unwrap().iter().sum::<f64>().to_bits()
                })
                .unwrap();
            assert_eq!(sums.len(), 8);
            let serial =
                reel.map_batches(1, |m| m.float_col(2).unwrap().iter().sum::<f64>().to_bits());
            assert_eq!(sums, serial.unwrap());
        }
        let path = reel.spill_path.clone().unwrap();
        assert!(path.exists());
        drop(reel);
        assert!(!path.exists(), "spill file removed on drop");
    }

    /// The buffered writer/reader must not change the on-disk format: the
    /// spill file is still raw little-endian column images, one contiguous
    /// record per batch, in push order.
    #[test]
    fn spill_file_bytes_are_raw_le_column_images() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 40);
        let mut reel = BatchReel::new(&t, triple_schema(), 240, None);
        for (s, e) in batch_ranges(40, 5).unwrap() {
            reel.push(Morsel::carve(&t, &table.view(), s, e).unwrap())
                .unwrap();
        }
        // Batches 2..8 (rows 10..40) spilled; expected image is each
        // batch's columns back to back, values little-endian.
        let mut want: Vec<u8> = Vec::new();
        for (s, e) in batch_ranges(40, 5).unwrap().into_iter().skip(2) {
            for v in &table.int_col(0).unwrap()[s..e] {
                want.extend_from_slice(&v.to_le_bytes());
            }
            for v in &table.int_col(1).unwrap()[s..e] {
                want.extend_from_slice(&v.to_le_bytes());
            }
            for v in &table.float_col(2).unwrap()[s..e] {
                want.extend_from_slice(&v.to_le_bytes());
            }
        }
        let path = reel.spill_path.clone().unwrap();
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got, want, "spill bytes on disk changed");
    }

    /// `window_scan` merges batch + probe result in exact push order at
    /// every thread count, and the probe sees the same batches `replay`
    /// would.
    #[test]
    fn window_scan_merges_in_push_order_at_every_thread_count() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 40);
        let mut reel = BatchReel::new(&t, triple_schema(), 240, None);
        for (s, e) in batch_ranges(40, 3).unwrap() {
            reel.push(Morsel::carve(&t, &table.view(), s, e).unwrap())
                .unwrap();
        }
        let mut serial_ids = Vec::new();
        reel.replay(|m| {
            serial_ids.extend_from_slice(m.int_col(0)?);
            Ok(())
        })
        .unwrap();
        for threads in [1usize, 3, 8] {
            let mut ids = Vec::new();
            reel.window_scan(
                threads,
                |m| {
                    // Even-id survivors, as batch-local positions.
                    m.int_col(0)
                        .unwrap()
                        .iter()
                        .enumerate()
                        .filter(|(_, g)| *g % 2 == 0)
                        .map(|(i, _)| i as u32)
                        .collect::<Vec<u32>>()
                },
                |m, sel| {
                    let col = m.int_col(0)?;
                    ids.extend(sel.iter().map(|&i| col[i as usize]));
                    Ok(())
                },
            )
            .unwrap();
            let want: Vec<i64> = serial_ids.iter().copied().filter(|g| g % 2 == 0).collect();
            assert_eq!(ids, want, "threads = {threads}");
        }
    }

    #[test]
    fn gather_charges_only_survivor_bytes() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 10);
        let m = Morsel::carve(&t, &table.view(), 0, 10).unwrap();
        let before = t.current();
        let picked = m.gather(&[1, 4, 7]).unwrap();
        assert_eq!(picked.n_rows(), 3);
        assert_eq!(picked.int_col(0).unwrap(), &[1, 4, 7]);
        assert_eq!(t.current() - before, 3 * 3 * 8);
        assert!(m.gather(&[3, 10]).is_err(), "out-of-range position");
        drop(picked);
        assert_eq!(t.current(), before);
    }

    #[test]
    fn unlimited_cap_never_spills() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 16);
        let mut reel = BatchReel::new(&t, triple_schema(), u64::MAX, None);
        for (s, e) in batch_ranges(16, 6).unwrap() {
            reel.push(Morsel::carve(&t, &table.view(), s, e).unwrap())
                .unwrap();
        }
        assert_eq!(reel.spill_bytes(), 0);
        assert_eq!(t.spill_bytes(), 0);
        assert_eq!(reel.resident_bytes(), 16 * 24);
    }
}
