//! Morsel-driven streaming: fixed-row column batches and the spill reel.
//!
//! A [`Morsel`] is an owned, fixed-row batch of [`Column`]s carved out of a
//! [`TableView`], charged against the [`MemTracker`] for exactly its heap
//! bytes while it is resident. Streaming operators pull morsels from their
//! upstream instead of materializing whole intermediate tables, so the peak
//! working set of a pipeline is the sum of a bounded batch window plus its
//! sinks — not the full table between every operator.
//!
//! A [`BatchReel`] is the streaming base-table representation: morsels
//! pushed in a fixed order, kept resident up to a deterministic byte cap
//! and spilled to disk past it (raw little-endian column images, one
//! contiguous record per batch, in the reel's own temp file). Replay yields
//! batches in exactly push order regardless of how many were spilled or how
//! many threads consume them, which is what keeps streaming results
//! bit-identical to the materializing path: every downstream kernel sees
//! rows in the same order the materialized table would have stored them.
//!
//! Determinism contract (pinned by `tests/streaming_exec.rs`):
//! - replay order == push order, at every batch size and thread count;
//! - tracker charges happen only at serial points (push, window load),
//!   with a fixed-size replay window, so `peak_alloc` / `batches` /
//!   `spill_bytes` are pure functions of (data, batch_rows, budget) and
//!   never of the thread count.

use crate::table::{Column, ColumnarTable, TableView};
use crate::tracker::MemTracker;
use genbase_relational::{DataType, Schema};
use genbase_util::{runtime, Error, Result};
use std::fs::File;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default rows per morsel when a streaming run does not set `--batch-rows`.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// Morsels loaded per replay window. Fixed (not thread-derived) so the
/// transient charge for spilled batches — and therefore `peak_alloc` — is
/// identical at every thread count.
const REPLAY_WINDOW: usize = 8;

/// One owned, tracker-charged batch of column data.
#[derive(Debug)]
pub struct Morsel {
    cols: Vec<Column>,
    n_rows: usize,
    tracker: MemTracker,
}

impl Morsel {
    /// Build a morsel from owned columns, charging the tracker.
    pub fn from_columns(tracker: &MemTracker, cols: Vec<Column>) -> Result<Morsel> {
        let n_rows = cols.first().map(Column::len).unwrap_or(0);
        for (i, c) in cols.iter().enumerate() {
            if c.len() != n_rows {
                return Err(Error::invalid(format!("morsel column {i} ragged")));
            }
        }
        let bytes: u64 = cols.iter().map(Column::heap_bytes).sum();
        tracker.charge(bytes)?;
        Ok(Morsel {
            cols,
            n_rows,
            tracker: tracker.clone(),
        })
    }

    /// Carve the `start..end` row range of a view into an owned morsel.
    pub fn carve(
        tracker: &MemTracker,
        view: &TableView<'_>,
        start: usize,
        end: usize,
    ) -> Result<Morsel> {
        if start > end || end > view.n_rows() {
            return Err(Error::invalid(format!(
                "morsel {start}..{end} out of range (rows = {})",
                view.n_rows()
            )));
        }
        let sub = view.subview(start, end)?;
        let cols: Vec<Column> = (0..view.schema().arity())
            .map(|i| sub.column_copy(i))
            .collect();
        Morsel::from_columns(tracker, cols)
    }

    /// Rows in the batch.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Heap bytes of the batch's column storage.
    pub fn heap_bytes(&self) -> u64 {
        self.cols.iter().map(Column::heap_bytes).sum()
    }

    /// Borrow an integer column.
    pub fn int_col(&self, i: usize) -> Result<&[i64]> {
        match &self.cols[i] {
            Column::Ints(v) => Ok(v),
            Column::Floats(_) => Err(Error::invalid(format!("morsel column {i} is Float"))),
        }
    }

    /// Borrow a float column.
    pub fn float_col(&self, i: usize) -> Result<&[f64]> {
        match &self.cols[i] {
            Column::Floats(v) => Ok(v),
            Column::Ints(_) => Err(Error::invalid(format!("morsel column {i} is Int"))),
        }
    }
}

impl Drop for Morsel {
    fn drop(&mut self) {
        self.tracker.release(self.heap_bytes());
    }
}

/// The `(start, end)` row ranges that carve `n_rows` into `batch_rows`-row
/// morsels (the final range is ragged when `batch_rows` does not divide).
pub fn batch_ranges(n_rows: usize, batch_rows: usize) -> Vec<(usize, usize)> {
    let step = batch_rows.max(1);
    let mut out = Vec::with_capacity(n_rows.div_ceil(step).max(1));
    let mut start = 0;
    while start < n_rows {
        let end = (start + step).min(n_rows);
        out.push((start, end));
        start = end;
    }
    out
}

/// Carve a whole view into morsels of `batch_rows` rows each.
pub fn carve_view(
    tracker: &MemTracker,
    view: &TableView<'_>,
    batch_rows: usize,
) -> Result<Vec<Morsel>> {
    batch_ranges(view.n_rows(), batch_rows)
        .into_iter()
        .map(|(s, e)| Morsel::carve(tracker, view, s, e))
        .collect()
}

/// Reassemble morsels into a [`ColumnarTable`], transferring their tracker
/// charges instead of re-registering the bytes (see
/// [`ColumnarTable::adopt_charged_columns`] for the double-charge this
/// boundary used to hit). Peak while reassembling is the table plus one
/// in-flight batch, never 2x.
pub fn reassemble(
    tracker: &MemTracker,
    schema: Schema,
    morsels: Vec<Morsel>,
) -> Result<ColumnarTable> {
    let arity = schema.arity();
    let mut acc: Vec<Column> = (0..arity)
        .map(|i| match schema.col_type(i) {
            DataType::Int => Column::Ints(Vec::new()),
            DataType::Float => Column::Floats(Vec::new()),
        })
        .collect();
    for m in morsels {
        if m.cols.len() != arity {
            return Err(Error::invalid("morsel arity does not match schema"));
        }
        // Charge the appended copy, then drop the morsel (releasing its
        // charge): the accumulated buffers stay exactly-once accounted.
        tracker.charge(m.heap_bytes())?;
        for (i, c) in m.cols.iter().enumerate() {
            acc[i].append(c)?;
        }
    }
    ColumnarTable::adopt_charged_columns(tracker, schema, acc)
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where a pushed batch lives.
enum Slot {
    Resident(Morsel),
    Spilled { offset: u64, n_rows: usize },
}

/// A streaming base table: batches in push order, resident up to a byte
/// cap, spilled to disk past it.
pub struct BatchReel {
    tracker: MemTracker,
    schema: Schema,
    slots: Vec<Slot>,
    resident_bytes: u64,
    resident_cap: u64,
    spill_dir: Option<PathBuf>,
    spill_path: Option<PathBuf>,
    writer: Option<File>,
    spill_offset: u64,
    total_rows: usize,
}

impl BatchReel {
    /// New reel. Batches stay resident while their summed bytes fit
    /// `resident_cap`; later batches spill to a temp file under
    /// `spill_dir` (or the system temp directory).
    pub fn new(
        tracker: &MemTracker,
        schema: Schema,
        resident_cap: u64,
        spill_dir: Option<&Path>,
    ) -> BatchReel {
        BatchReel {
            tracker: tracker.clone(),
            schema,
            slots: Vec::new(),
            resident_bytes: 0,
            resident_cap,
            spill_dir: spill_dir.map(Path::to_path_buf),
            spill_path: None,
            writer: None,
            spill_offset: 0,
            total_rows: 0,
        }
    }

    /// The reel's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows pushed.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Batches pushed.
    pub fn n_batches(&self) -> usize {
        self.slots.len()
    }

    /// Bytes currently resident (charged against the tracker).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Cumulative bytes written to the spill file.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_offset
    }

    /// Logical bytes of the whole reel, resident and spilled.
    pub fn span_bytes(&self) -> u64 {
        (self.total_rows * self.schema.arity() * 8) as u64
    }

    /// Push the next batch. Deterministic policy: a batch stays resident
    /// iff it fits under the cap at push time, so the resident/spilled
    /// split depends only on the data and the cap.
    pub fn push(&mut self, morsel: Morsel) -> Result<()> {
        if morsel.cols.len() != self.schema.arity() {
            return Err(Error::invalid("batch arity does not match reel schema"));
        }
        self.total_rows += morsel.n_rows();
        self.tracker.note_batch();
        let bytes = morsel.heap_bytes();
        if self.resident_bytes + bytes <= self.resident_cap {
            self.resident_bytes += bytes;
            self.slots.push(Slot::Resident(morsel));
            return Ok(());
        }
        let offset = self.write_spilled(&morsel)?;
        self.tracker.note_spill(bytes);
        self.slots.push(Slot::Spilled {
            offset,
            n_rows: morsel.n_rows(),
        });
        Ok(())
    }

    fn write_spilled(&mut self, morsel: &Morsel) -> Result<u64> {
        if self.writer.is_none() {
            let dir = self.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            let name = format!(
                "genbase-spill-{}-{}.bin",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
            );
            let path = dir.join(name);
            let file = File::create(&path)
                .map_err(|e| Error::invalid(format!("spill create {}: {e}", path.display())))?;
            self.spill_path = Some(path);
            self.writer = Some(file);
        }
        let offset = self.spill_offset;
        let writer = self.writer.as_mut().expect("spill writer open");
        for col in &morsel.cols {
            let bytes: Vec<u8> = match col {
                Column::Ints(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
                Column::Floats(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            };
            writer
                .write_all(&bytes)
                .map_err(|e| Error::invalid(format!("spill write: {e}")))?;
            self.spill_offset += bytes.len() as u64;
        }
        Ok(offset)
    }

    fn read_spilled(&self, file: &mut File, offset: u64, n_rows: usize) -> Result<Morsel> {
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| Error::invalid(format!("spill seek: {e}")))?;
        let mut cols = Vec::with_capacity(self.schema.arity());
        let mut buf = vec![0u8; n_rows * 8];
        for i in 0..self.schema.arity() {
            file.read_exact(&mut buf)
                .map_err(|e| Error::invalid(format!("spill read: {e}")))?;
            let col = match self.schema.col_type(i) {
                DataType::Int => Column::Ints(
                    buf.chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect(),
                ),
                DataType::Float => Column::Floats(
                    buf.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect(),
                ),
            };
            cols.push(col);
        }
        Morsel::from_columns(&self.tracker, cols)
    }

    /// Replay every batch in push order, applying `f` serially.
    pub fn replay(&self, mut f: impl FnMut(&Morsel) -> Result<()>) -> Result<()> {
        let mut reader = self.open_reader()?;
        for slot in &self.slots {
            match slot {
                Slot::Resident(m) => f(m)?,
                Slot::Spilled { offset, n_rows } => {
                    let reader = reader.as_mut().ok_or_else(|| {
                        Error::invalid("reel has spilled batches but no spill file")
                    })?;
                    let m = self.read_spilled(reader, *offset, *n_rows)?;
                    f(&m)?;
                }
            }
        }
        Ok(())
    }

    /// Map `f` over every batch in push order and collect the results in
    /// that order. Batches are processed in fixed-size windows: each
    /// window's spilled batches are loaded at a serial point (bounding the
    /// transient charge independently of `threads`), then `f` runs over the
    /// window on the shared runtime pool. `f` must not touch the tracker —
    /// morsel-task results are combined by the caller at serial points.
    pub fn map_batches<T: Send>(
        &self,
        threads: usize,
        f: impl Fn(&Morsel) -> T + Sync,
    ) -> Result<Vec<T>> {
        let mut reader = self.open_reader()?;
        let mut out: Vec<T> = Vec::with_capacity(self.slots.len());
        for window in self.slots.chunks(REPLAY_WINDOW) {
            // Serial point: materialize the window's spilled batches.
            let mut loaded: Vec<Option<Morsel>> = Vec::with_capacity(window.len());
            for slot in window {
                match slot {
                    Slot::Resident(_) => loaded.push(None),
                    Slot::Spilled { offset, n_rows } => {
                        let reader = reader.as_mut().ok_or_else(|| {
                            Error::invalid("reel has spilled batches but no spill file")
                        })?;
                        loaded.push(Some(self.read_spilled(reader, *offset, *n_rows)?));
                    }
                }
            }
            let batch_of = |i: usize| -> &Morsel {
                match (&window[i], &loaded[i]) {
                    (Slot::Resident(m), _) => m,
                    (_, Some(m)) => m,
                    _ => unreachable!("spilled slot loaded above"),
                }
            };
            out.extend(runtime::parallel_map(threads, window.len(), |i| {
                f(batch_of(i))
            }));
        }
        Ok(out)
    }

    fn open_reader(&self) -> Result<Option<File>> {
        match &self.spill_path {
            None => Ok(None),
            Some(p) => File::open(p)
                .map(Some)
                .map_err(|e| Error::invalid(format!("spill open {}: {e}", p.display()))),
        }
    }
}

impl Drop for BatchReel {
    fn drop(&mut self) {
        self.writer = None;
        if let Some(p) = &self.spill_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl std::fmt::Debug for BatchReel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchReel")
            .field("batches", &self.slots.len())
            .field("total_rows", &self.total_rows)
            .field("resident_bytes", &self.resident_bytes)
            .field("spill_bytes", &self.spill_offset)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnarTable;

    fn triple_schema() -> Schema {
        Schema::new(&[
            ("gene_id", DataType::Int),
            ("patient_id", DataType::Int),
            ("value", DataType::Float),
        ])
        .unwrap()
    }

    fn sample_table(tracker: &MemTracker, n: usize) -> ColumnarTable {
        ColumnarTable::from_columns(
            tracker,
            triple_schema(),
            vec![
                Column::Ints((0..n as i64).collect()),
                Column::Ints((0..n as i64).map(|i| i * 7 % 13).collect()),
                Column::Floats((0..n).map(|i| i as f64 * 0.5 - 3.0).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ranges_cover_exactly_with_ragged_tail() {
        assert_eq!(batch_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(batch_ranges(4, 4), vec![(0, 4)]);
        assert_eq!(batch_ranges(3, 5), vec![(0, 3)]);
        assert_eq!(batch_ranges(0, 5), Vec::<(usize, usize)>::new());
        assert_eq!(batch_ranges(3, 0), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn carve_reassemble_round_trip_transfers_charges() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 23);
        let bytes = table.heap_bytes();
        let morsels = carve_view(&t, &table.view(), 7).unwrap();
        assert_eq!(morsels.len(), 4);
        assert_eq!(t.current(), 2 * bytes, "table + carved copies");
        let rebuilt = reassemble(&t, triple_schema(), morsels).unwrap();
        assert_eq!(rebuilt.n_rows(), 23);
        assert_eq!(rebuilt.int_col(0).unwrap(), table.int_col(0).unwrap());
        assert_eq!(rebuilt.float_col(2).unwrap(), table.float_col(2).unwrap());
        assert_eq!(t.current(), 2 * bytes, "reassembly holds exactly one copy");
        assert!(
            t.peak() <= 2 * bytes + 7 * 3 * 8,
            "peak bounded by one in-flight batch, not 2x ({})",
            t.peak()
        );
        drop(rebuilt);
        drop(table);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn reel_spills_past_cap_and_replays_in_push_order() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 40);
        // Cap fits two 5-row batches (5 rows x 3 cols x 8 B = 120 B each).
        let mut reel = BatchReel::new(&t, triple_schema(), 240, None);
        for (s, e) in batch_ranges(40, 5) {
            reel.push(Morsel::carve(&t, &table.view(), s, e).unwrap())
                .unwrap();
        }
        assert_eq!(reel.n_batches(), 8);
        assert_eq!(reel.total_rows(), 40);
        assert_eq!(reel.resident_bytes(), 240);
        assert_eq!(reel.spill_bytes(), 6 * 120, "six batches spilled");
        assert_eq!(t.spill_bytes(), 6 * 120);
        assert_eq!(t.batches(), 8);
        let mut ids = Vec::new();
        reel.replay(|m| {
            ids.extend_from_slice(m.int_col(0)?);
            Ok(())
        })
        .unwrap();
        assert_eq!(ids, (0..40).collect::<Vec<i64>>());
        // map_batches yields push-order results at every thread count.
        for threads in [1usize, 3, 8] {
            let sums = reel
                .map_batches(threads, |m| {
                    m.float_col(2).unwrap().iter().sum::<f64>().to_bits()
                })
                .unwrap();
            assert_eq!(sums.len(), 8);
            let serial =
                reel.map_batches(1, |m| m.float_col(2).unwrap().iter().sum::<f64>().to_bits());
            assert_eq!(sums, serial.unwrap());
        }
        let path = reel.spill_path.clone().unwrap();
        assert!(path.exists());
        drop(reel);
        assert!(!path.exists(), "spill file removed on drop");
    }

    #[test]
    fn unlimited_cap_never_spills() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 16);
        let mut reel = BatchReel::new(&t, triple_schema(), u64::MAX, None);
        for (s, e) in batch_ranges(16, 6) {
            reel.push(Morsel::carve(&t, &table.view(), s, e).unwrap())
                .unwrap();
        }
        assert_eq!(reel.spill_bytes(), 0);
        assert_eq!(t.spill_bytes(), 0);
        assert_eq!(reel.resident_bytes(), 16 * 24);
    }
}
