//! Fused morsel pipeline: selection vectors and one-pass stage fusion.
//!
//! The staged streaming path runs every operator as its own full pass over
//! a [`BatchReel`] — filter, semijoin, pivot and export each materialize
//! (and tracker-charge) an intermediate batch set. The fused pipeline
//! composes Filter→Join(semijoin probe)→Restructure/GroupAgg/export into
//! **one pass per morsel**: a parallel *probe* stage marks each batch's
//! survivors in a [`SelVec`] (positions, not copies), and a serial
//! in-push-order *sink* stage consumes the survivors directly — scattering
//! into the dense pivot target, serializing CSV text, or folding a group
//! aggregate — without an intermediate survivor table ever existing.
//!
//! Determinism argument (the PR 8 contract): probes are pure per-batch
//! functions, so their results are independent of the thread count; every
//! stateful effect (scatter last-write-wins, CSV append order, f64 group
//! accumulation) happens in the sink, which [`BatchReel::window_scan`] runs
//! serially in exact push order. The fused pipeline therefore touches sink
//! state in precisely the sequence the materialized table would have stored
//! the rows — at every batch size and thread count — which is what keeps
//! fused output bit-identical to the staged and materializing paths.
//!
//! Accounting contract: a selection is positions only ([`SelVec::heap_bytes`]
//! is its `u32` footprint, never charged per batch on the hot path), so
//! `bytes_out`/`peak_alloc` on a fused cell reflect only what the pipeline
//! actually materializes (the pivot target, the CSV text, the aggregate) —
//! survivor rows are *noted* via [`crate::MemTracker::note_selected`] and
//! surface as the `sel rows` explain column instead of as copied bytes.

use crate::stream::{BatchReel, Morsel};
use crate::table::Column;
use genbase_util::csv::{self, CsvField};
use genbase_util::{Error, Result};
use std::collections::HashMap;

/// A selection vector: the ascending batch-local positions of the rows
/// that survive a filter/semijoin probe. Marking survivors instead of
/// copying them is what lets fused stages share one pass over a morsel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelVec {
    pos: Vec<u32>,
}

impl SelVec {
    /// Empty selection.
    pub fn new() -> SelVec {
        SelVec::default()
    }

    /// Empty selection with room for `n` survivors.
    pub fn with_capacity(n: usize) -> SelVec {
        SelVec {
            pos: Vec::with_capacity(n),
        }
    }

    /// Selection of every row of an `n_rows` batch.
    pub fn all(n_rows: usize) -> SelVec {
        SelVec {
            pos: (0..n_rows as u32).collect(),
        }
    }

    /// Evaluate `pred` over the batch-local positions `0..n_rows` and keep
    /// the survivors (ascending by construction).
    pub fn from_predicate(n_rows: usize, mut pred: impl FnMut(usize) -> bool) -> SelVec {
        SelVec {
            pos: (0..n_rows as u32).filter(|&i| pred(i as usize)).collect(),
        }
    }

    /// Append a survivor position. Positions must be pushed in ascending
    /// order; out-of-order pushes are a caller bug surfaced as an error.
    pub fn push(&mut self, i: u32) -> Result<()> {
        if let Some(&last) = self.pos.last() {
            if i <= last {
                return Err(Error::invalid(format!(
                    "selection position {i} not above previous {last}"
                )));
            }
        }
        self.pos.push(i);
        Ok(())
    }

    /// Number of survivors.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when no row survived.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The survivor positions, ascending.
    pub fn positions(&self) -> &[u32] {
        &self.pos
    }

    /// Heap footprint of the selection itself (the `u32` positions).
    pub fn heap_bytes(&self) -> u64 {
        (self.pos.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

/// One fused Filter→Join(semijoin)→sink pass over a reel: `probe` marks
/// each batch's survivors in parallel (it must be a pure per-batch
/// function), `sink` consumes each batch with its selection serially in
/// exact push order. Returns the total survivor count across the pass.
pub fn fused_scan(
    reel: &BatchReel,
    threads: usize,
    probe: impl Fn(&Morsel) -> SelVec + Sync,
    mut sink: impl FnMut(&Morsel, &SelVec) -> Result<()>,
) -> Result<u64> {
    let mut survivors: u64 = 0;
    reel.window_scan(threads, probe, |m, sel| {
        survivors += sel.len() as u64;
        sink(m, &sel)
    })?;
    Ok(survivors)
}

/// Scatter a batch's selected `(row_id, col_id, value)` triples into a
/// dense row-major buffer, exactly as [`genbase_relational::pivot_to_dense`]
/// would for the survivor rows: ids absent from the index maps are skipped,
/// duplicate assignments keep the last value (guaranteed by the serial
/// in-push-order sink).
pub fn scatter_selected(
    m: &Morsel,
    sel: &SelVec,
    row_col: usize,
    col_col: usize,
    val_col: usize,
    row_of: &HashMap<i64, usize>,
    col_of: &HashMap<i64, usize>,
    n_cols: usize,
    data: &mut [f64],
) -> Result<()> {
    let rows = m.int_col(row_col)?;
    let cols = m.int_col(col_col)?;
    let vals = m.float_col(val_col)?;
    for &i in sel.positions() {
        let i = i as usize;
        if let (Some(&ri), Some(&ci)) = (row_of.get(&rows[i]), col_of.get(&cols[i])) {
            data[ri * n_cols + ci] = vals[i];
        }
    }
    Ok(())
}

/// Serialize a batch's selected rows as CSV, appending to `out`. Built on
/// the same [`genbase_util::csv`] row writer as
/// [`genbase_relational::export_csv`], so the concatenated chunks are
/// byte-identical to exporting a materialized survivor table (the format
/// has no header row).
pub fn csv_selected(m: &Morsel, sel: &SelVec, out: &mut String) {
    let mut fields: Vec<CsvField> = Vec::with_capacity(m.columns().len());
    for &i in sel.positions() {
        fields.clear();
        for c in m.columns() {
            fields.push(match c {
                Column::Ints(v) => CsvField::Int(v[i as usize]),
                Column::Floats(v) => CsvField::Float(v[i as usize]),
            });
        }
        csv::write_row(out, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::batch_ranges;
    use crate::table::ColumnarTable;
    use crate::tracker::MemTracker;
    use genbase_relational::{DataType, Schema};

    fn triple_schema() -> Schema {
        Schema::new(&[
            ("gene_id", DataType::Int),
            ("patient_id", DataType::Int),
            ("value", DataType::Float),
        ])
        .unwrap()
    }

    fn sample_table(tracker: &MemTracker, n: usize) -> ColumnarTable {
        ColumnarTable::from_columns(
            tracker,
            triple_schema(),
            vec![
                Column::Ints((0..n as i64).map(|i| i % 11).collect()),
                Column::Ints((0..n as i64).map(|i| i * 7 % 13).collect()),
                Column::Floats((0..n).map(|i| i as f64 * 0.5 - 3.0).collect()),
            ],
        )
        .unwrap()
    }

    fn reel_of(tracker: &MemTracker, table: &ColumnarTable, batch_rows: usize) -> BatchReel {
        let mut reel = BatchReel::new(tracker, triple_schema(), u64::MAX, None);
        for (s, e) in batch_ranges(table.n_rows(), batch_rows).unwrap() {
            reel.push(Morsel::carve(tracker, &table.view(), s, e).unwrap())
                .unwrap();
        }
        reel
    }

    #[test]
    fn selvec_basics() {
        let sel = SelVec::from_predicate(6, |i| i % 2 == 0);
        assert_eq!(sel.positions(), &[0, 2, 4]);
        assert_eq!(sel.len(), 3);
        assert!(!sel.is_empty());
        assert_eq!(SelVec::all(3).positions(), &[0, 1, 2]);
        assert!(SelVec::new().is_empty());
        let mut s = SelVec::new();
        s.push(2).unwrap();
        s.push(5).unwrap();
        assert!(s.push(5).is_err(), "non-ascending push rejected");
        assert_eq!(s.positions(), &[2, 5]);
    }

    #[test]
    fn fused_scan_matches_replayed_filter_at_every_thread_count() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 100);
        let reel = reel_of(&t, &table, 7);
        // Reference: serial replay + copying filter.
        let mut want = Vec::new();
        reel.replay(|m| {
            let g = m.int_col(0)?;
            let v = m.float_col(2)?;
            for i in 0..m.n_rows() {
                if g[i] % 3 == 0 {
                    want.push(v[i].to_bits());
                }
            }
            Ok(())
        })
        .unwrap();
        for threads in [1usize, 3, 8] {
            let mut got = Vec::new();
            let survivors = fused_scan(
                &reel,
                threads,
                |m| {
                    let g = m.int_col(0).unwrap();
                    SelVec::from_predicate(m.n_rows(), |i| g[i] % 3 == 0)
                },
                |m, sel| {
                    let v = m.float_col(2)?;
                    got.extend(sel.positions().iter().map(|&i| v[i as usize].to_bits()));
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(survivors as usize, want.len());
        }
    }

    #[test]
    fn csv_selected_matches_export_of_gathered_survivors() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 50);
        let reel = reel_of(&t, &table, 9);
        let mut fused = String::new();
        fused_scan(
            &reel,
            3,
            |m| {
                let p = m.int_col(1).unwrap();
                SelVec::from_predicate(m.n_rows(), |i| p[i] % 2 == 1)
            },
            |m, sel| {
                csv_selected(m, sel, &mut fused);
                Ok(())
            },
        )
        .unwrap();
        // Reference: gather the survivors, export via the relational path.
        let mut want = String::new();
        reel.replay(|m| {
            let p = m.int_col(1)?;
            let sel = SelVec::from_predicate(m.n_rows(), |i| p[i] % 2 == 1);
            let picked = m.gather(sel.positions())?;
            let chunk = genbase_relational::ColumnTable::from_columns(
                triple_schema(),
                vec![
                    genbase_relational::ColumnData::Ints(picked.int_col(0)?.to_vec()),
                    genbase_relational::ColumnData::Ints(picked.int_col(1)?.to_vec()),
                    genbase_relational::ColumnData::Floats(picked.float_col(2)?.to_vec()),
                ],
            )?;
            want.push_str(&genbase_relational::export_csv(
                &chunk,
                &genbase_util::Budget::unlimited(),
            )?);
            Ok(())
        })
        .unwrap();
        assert_eq!(fused, want);
    }

    #[test]
    fn scatter_selected_matches_pivot_semantics() {
        let t = MemTracker::unlimited();
        let table = sample_table(&t, 80);
        let reel = reel_of(&t, &table, 11);
        let row_ids: Vec<i64> = (0..13).collect(); // patients
        let col_ids: Vec<i64> = (0..11).rev().collect(); // genes, reversed order
        let row_of: HashMap<i64, usize> =
            row_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let col_of: HashMap<i64, usize> =
            col_ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut data = vec![0.0; row_ids.len() * col_ids.len()];
        fused_scan(
            &reel,
            8,
            |m| SelVec::all(m.n_rows()),
            |m, sel| scatter_selected(m, sel, 1, 0, 2, &row_of, &col_of, col_ids.len(), &mut data),
        )
        .unwrap();
        // Reference: the relational pivot over the materialized table.
        let rel = genbase_relational::ColumnTable::from_columns(
            triple_schema(),
            vec![
                genbase_relational::ColumnData::Ints(table.int_col(0).unwrap().to_vec()),
                genbase_relational::ColumnData::Ints(table.int_col(1).unwrap().to_vec()),
                genbase_relational::ColumnData::Floats(table.float_col(2).unwrap().to_vec()),
            ],
        )
        .unwrap();
        let dense = genbase_relational::pivot_to_dense(
            &rel,
            1,
            0,
            2,
            &row_ids,
            &col_ids,
            &genbase_util::Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(data, dense.data);
    }
}
