//! The shared columnar working-set representation.
//!
//! A [`ColumnarTable`] is the storage layer's one table shape: a
//! [`genbase_relational::Schema`] plus typed [`Column`]s, registered
//! against a [`MemTracker`] on construction and released on drop. Every
//! engine's physical lowering materializes its filtered/joined working sets
//! into this form, so "bytes resident per operator" means the same thing in
//! every engine family.
//!
//! [`TableView`] is the zero-copy window the conversion kernels consume: a
//! borrowed row range over a table, no bytes moved until a kernel
//! materializes something new.

use crate::tracker::MemTracker;
use genbase_relational::{ColumnData, ColumnTable, DataType, Relation, Schema, Value};
use genbase_util::{Error, Result};

/// One typed column of a [`ColumnarTable`].
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integer column.
    Ints(Vec<i64>),
    /// 64-bit float column.
    Floats(Vec<f64>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Ints(v) => v.len(),
            Column::Floats(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Ints(_) => DataType::Int,
            Column::Floats(_) => DataType::Float,
        }
    }

    /// Heap bytes of the column's storage.
    pub fn heap_bytes(&self) -> u64 {
        (self.len() * 8) as u64
    }

    fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Ints(v) => Value::Int(v[i]),
            Column::Floats(v) => Value::Float(v[i]),
        }
    }

    /// Copy of the `start..end` range of this column.
    pub fn slice_range(&self, start: usize, end: usize) -> Column {
        match self {
            Column::Ints(v) => Column::Ints(v[start..end].to_vec()),
            Column::Floats(v) => Column::Floats(v[start..end].to_vec()),
        }
    }

    /// Append another column's values; the types must match.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Ints(a), Column::Ints(b)) => a.extend_from_slice(b),
            (Column::Floats(a), Column::Floats(b)) => a.extend_from_slice(b),
            _ => return Err(Error::invalid("column type mismatch on append")),
        }
        Ok(())
    }
}

impl From<ColumnData> for Column {
    fn from(data: ColumnData) -> Column {
        match data {
            ColumnData::Ints(v) => Column::Ints(v),
            ColumnData::Floats(v) => Column::Floats(v),
        }
    }
}

impl From<Column> for ColumnData {
    fn from(col: Column) -> ColumnData {
        match col {
            Column::Ints(v) => ColumnData::Ints(v),
            Column::Floats(v) => ColumnData::Floats(v),
        }
    }
}

/// A columnar table registered with the storage layer's allocation tracker.
#[derive(Debug)]
pub struct ColumnarTable {
    schema: Schema,
    cols: Vec<Column>,
    n_rows: usize,
    tracker: MemTracker,
}

impl ColumnarTable {
    /// Build from pre-assembled columns, charging the tracker for the
    /// table's heap bytes (released again when the table drops).
    pub fn from_columns(
        tracker: &MemTracker,
        schema: Schema,
        cols: Vec<Column>,
    ) -> Result<ColumnarTable> {
        if cols.len() != schema.arity() {
            return Err(Error::invalid("column count does not match schema"));
        }
        let n_rows = cols.first().map(Column::len).unwrap_or(0);
        for (i, c) in cols.iter().enumerate() {
            if c.len() != n_rows {
                return Err(Error::invalid(format!("column {i} has ragged length")));
            }
            if c.data_type() != schema.col_type(i) {
                return Err(Error::invalid(format!("column {i} type mismatch")));
            }
        }
        let bytes: u64 = cols.iter().map(Column::heap_bytes).sum();
        tracker.charge(bytes)?;
        Ok(ColumnarTable {
            schema,
            cols,
            n_rows,
            tracker: tracker.clone(),
        })
    }

    /// Build from columns whose heap bytes are *already* charged against
    /// `tracker` — the charge-transfer side of a conversion boundary.
    ///
    /// When a streaming operator reassembles tracker-charged morsels into a
    /// table, routing the buffers through [`ColumnarTable::from_columns`]
    /// would re-register bytes the tracker already counts, so the boundary
    /// would briefly hold a 2x charge and inflate `peak_alloc` (and could
    /// spuriously trip a `--mem-budget` that the real working set fits).
    /// This constructor adopts the existing charge instead; the table still
    /// releases it on drop.
    pub fn adopt_charged_columns(
        tracker: &MemTracker,
        schema: Schema,
        cols: Vec<Column>,
    ) -> Result<ColumnarTable> {
        if cols.len() != schema.arity() {
            return Err(Error::invalid("column count does not match schema"));
        }
        let n_rows = cols.first().map(Column::len).unwrap_or(0);
        for (i, c) in cols.iter().enumerate() {
            if c.len() != n_rows {
                return Err(Error::invalid(format!("column {i} has ragged length")));
            }
            if c.data_type() != schema.col_type(i) {
                return Err(Error::invalid(format!("column {i} type mismatch")));
            }
        }
        Ok(ColumnarTable {
            schema,
            cols,
            n_rows,
            tracker: tracker.clone(),
        })
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Heap bytes of column storage.
    pub fn heap_bytes(&self) -> u64 {
        self.cols.iter().map(Column::heap_bytes).sum()
    }

    /// The tracker this table is registered with.
    pub fn tracker(&self) -> &MemTracker {
        &self.tracker
    }

    /// Borrow an integer column.
    pub fn int_col(&self, i: usize) -> Result<&[i64]> {
        match &self.cols[i] {
            Column::Ints(v) => Ok(v),
            Column::Floats(_) => Err(Error::invalid(format!("column {i} is Float"))),
        }
    }

    /// Borrow a float column.
    pub fn float_col(&self, i: usize) -> Result<&[f64]> {
        match &self.cols[i] {
            Column::Floats(v) => Ok(v),
            Column::Ints(_) => Err(Error::invalid(format!("column {i} is Int"))),
        }
    }

    /// Zero-copy view of the whole table.
    pub fn view(&self) -> TableView<'_> {
        TableView {
            table: self,
            start: 0,
            end: self.n_rows,
        }
    }

    /// Zero-copy view of a row range.
    pub fn slice(&self, start: usize, end: usize) -> Result<TableView<'_>> {
        if start > end || end > self.n_rows {
            return Err(Error::invalid(format!(
                "slice {start}..{end} out of range (rows = {})",
                self.n_rows
            )));
        }
        Ok(TableView {
            table: self,
            start,
            end,
        })
    }

    /// Group by an integer key, summing a float column. Returns
    /// `(key, sum, count)` sorted by key — identical semantics to the
    /// per-store `group_sum` implementations this layer replaces.
    pub fn group_sum(&self, key_col: usize, val_col: usize) -> Result<Vec<(i64, f64, u64)>> {
        let keys = self.int_col(key_col)?;
        let vals = self.float_col(val_col)?;
        let mut acc: std::collections::HashMap<i64, (f64, u64)> = std::collections::HashMap::new();
        for (&k, &v) in keys.iter().zip(vals) {
            let e = acc.entry(k).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        let mut out: Vec<(i64, f64, u64)> = acc.into_iter().map(|(k, (s, c))| (k, s, c)).collect();
        out.sort_unstable_by_key(|&(k, _, _)| k);
        Ok(out)
    }

    /// Convert into a relational [`ColumnTable`] (column moves, no copy).
    /// The tracker's charge is released: ownership leaves the storage layer.
    pub fn into_column_table(mut self) -> Result<ColumnTable> {
        let bytes = self.heap_bytes();
        let schema = self.schema.clone();
        let cols: Vec<ColumnData> = self.cols.drain(..).map(ColumnData::from).collect();
        self.tracker.release(bytes);
        self.n_rows = 0;
        ColumnTable::from_columns(schema, cols)
    }
}

impl Drop for ColumnarTable {
    fn drop(&mut self) {
        self.tracker.release(self.heap_bytes());
    }
}

impl Relation for ColumnarTable {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn for_each(&self, f: &mut dyn FnMut(&[Value])) {
        let mut buf: Vec<Value> = Vec::with_capacity(self.schema.arity());
        for r in 0..self.n_rows {
            buf.clear();
            for c in &self.cols {
                buf.push(c.value_at(r));
            }
            f(&buf);
        }
    }
}

/// Zero-copy row-range view over a [`ColumnarTable`].
#[derive(Debug, Clone, Copy)]
pub struct TableView<'a> {
    table: &'a ColumnarTable,
    start: usize,
    end: usize,
}

impl<'a> TableView<'a> {
    /// Rows in the view.
    pub fn n_rows(&self) -> usize {
        self.end - self.start
    }

    /// Schema of the underlying table.
    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// Heap bytes the view spans (the bytes a kernel reads to consume it).
    pub fn span_bytes(&self) -> u64 {
        (self.n_rows() * self.table.schema().arity() * 8) as u64
    }

    /// Borrow the view's slice of an integer column.
    pub fn int_col(&self, i: usize) -> Result<&'a [i64]> {
        Ok(&self.table.int_col(i)?[self.start..self.end])
    }

    /// Borrow the view's slice of a float column.
    pub fn float_col(&self, i: usize) -> Result<&'a [f64]> {
        Ok(&self.table.float_col(i)?[self.start..self.end])
    }

    /// Owned copy of column `i` restricted to the view's row range (the
    /// materializing step of carving a morsel out of a view).
    pub fn column_copy(&self, i: usize) -> Column {
        self.table.cols[i].slice_range(self.start, self.end)
    }

    /// A narrower view over rows `start..end` *of this view*.
    pub fn subview(&self, start: usize, end: usize) -> Result<TableView<'a>> {
        if start > end || end > self.n_rows() {
            return Err(Error::invalid(format!(
                "subview {start}..{end} out of range (rows = {})",
                self.n_rows()
            )));
        }
        Ok(TableView {
            table: self.table,
            start: self.start + start,
            end: self.start + end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple_schema() -> Schema {
        Schema::new(&[
            ("gene_id", DataType::Int),
            ("patient_id", DataType::Int),
            ("value", DataType::Float),
        ])
        .unwrap()
    }

    fn sample(tracker: &MemTracker) -> ColumnarTable {
        ColumnarTable::from_columns(
            tracker,
            triple_schema(),
            vec![
                Column::Ints(vec![0, 1, 0, 1]),
                Column::Ints(vec![0, 0, 1, 1]),
                Column::Floats(vec![1.0, 2.0, 3.0, 4.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_charges_and_drop_releases() {
        let t = MemTracker::unlimited();
        {
            let table = sample(&t);
            assert_eq!(table.n_rows(), 4);
            assert_eq!(t.current(), 3 * 4 * 8);
        }
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn validation_matches_relational_rules() {
        let t = MemTracker::unlimited();
        let ragged = ColumnarTable::from_columns(
            &t,
            triple_schema(),
            vec![
                Column::Ints(vec![0]),
                Column::Ints(vec![0, 1]),
                Column::Floats(vec![1.0, 2.0]),
            ],
        );
        assert!(ragged.is_err());
        assert_eq!(t.current(), 0, "failed build charges nothing");
    }

    #[test]
    fn views_are_zero_copy_windows() {
        let t = MemTracker::unlimited();
        let table = sample(&t);
        let before = t.current();
        let v = table.slice(1, 3).unwrap();
        assert_eq!(v.n_rows(), 2);
        assert_eq!(v.int_col(0).unwrap(), &[1, 0]);
        assert_eq!(v.float_col(2).unwrap(), &[2.0, 3.0]);
        assert_eq!(t.current(), before, "views charge nothing");
        assert!(table.slice(3, 2).is_err());
        assert!(table.slice(0, 9).is_err());
    }

    #[test]
    fn group_sum_and_relation_iteration() {
        let t = MemTracker::unlimited();
        let table = sample(&t);
        assert_eq!(
            table.group_sum(0, 2).unwrap(),
            vec![(0, 4.0, 2), (1, 6.0, 2)]
        );
        let mut rows = Vec::new();
        table.for_each(&mut |r: &[Value]| rows.push(r.to_vec()));
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[1],
            vec![Value::Int(1), Value::Int(0), Value::Float(2.0)]
        );
    }

    #[test]
    fn adopting_charged_columns_does_not_double_charge() {
        // Regression: re-registering view-carved buffers across a
        // conversion boundary used to go through `from_columns`, charging
        // bytes the tracker already counted — a transient 2x that inflated
        // peaks and could trip budgets the real working set fit.
        let t = MemTracker::unlimited();
        let table = sample(&t);
        let bytes = table.heap_bytes();
        let view = table.view();
        let cols: Vec<Column> = (0..3).map(|i| view.column_copy(i)).collect();
        let copy_bytes: u64 = cols.iter().map(Column::heap_bytes).sum();
        t.charge(copy_bytes).unwrap();
        let rebuilt = ColumnarTable::adopt_charged_columns(&t, triple_schema(), cols).unwrap();
        assert_eq!(
            t.current(),
            bytes + copy_bytes,
            "adoption must not re-register already-charged buffers"
        );
        assert_eq!(t.peak(), bytes + copy_bytes, "no transient double charge");
        drop(table);
        drop(rebuilt);
        assert_eq!(t.current(), 0, "adopted charge released exactly once");
    }

    #[test]
    fn into_column_table_releases_charge() {
        let t = MemTracker::unlimited();
        let table = sample(&t);
        assert!(t.current() > 0);
        let ct = table.into_column_table().unwrap();
        assert_eq!(t.current(), 0);
        assert_eq!(ct.n_rows(), 4);
    }
}
