//! The full benchmark driver: regenerates every table and figure from the
//! GenBase paper's evaluation section, plus the kernel perf baseline.
//!
//! ```text
//! paper_harness [fig1|fig2|fig3|fig4|fig5|table1|weak|bench|all]
//!               [--scale F]      per-side scale vs paper sizes (default 0.048)
//!               [--cutoff SECS]  per-run cutoff (default 60)
//!               [--mn-size S]    multi-node dataset: small|medium|large (default medium)
//!               [--bench-size N] kernel bench matrix edge (default 2048)
//!               [--bench-iters K] timed iterations per kernel (default 2)
//!               [--bench-out P]  kernel bench JSON path (default BENCH_baseline.json)
//! ```
//!
//! At the default scale the size ladder is Small 240x240, Medium 720x960,
//! Large 1440x1920 (paper ÷ ~20.8 per side), and the cutoff plays the role
//! of the paper's two-hour window. Pass `--scale 1.0` for paper-size runs
//! (hours of compute and ~10 GB matrices).
//!
//! `bench` times the linalg/stats hot kernels against the seed repo's
//! serial implementations and writes `BENCH_baseline.json`
//! (`op, size, threads, ns/iter`) so later PRs have a perf trajectory to
//! regress against (see the CI bench job).

use genbase::figures;
use genbase::harness::{Harness, HarnessConfig};
use genbase_datagen::SizeClass;
use std::time::Duration;

struct Args {
    what: String,
    scale: f64,
    cutoff_secs: u64,
    mn_size: SizeClass,
    bench_size: usize,
    bench_iters: u32,
    bench_out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        what: "all".to_string(),
        scale: 0.048,
        cutoff_secs: 60,
        mn_size: SizeClass::Medium,
        bench_size: 2048,
        bench_iters: 2,
        bench_out: "BENCH_baseline.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = argv[i].parse().expect("--scale takes a float");
            }
            "--cutoff" => {
                i += 1;
                args.cutoff_secs = argv[i].parse().expect("--cutoff takes seconds");
            }
            "--mn-size" => {
                i += 1;
                args.mn_size = match argv[i].as_str() {
                    "small" => SizeClass::Small,
                    "medium" => SizeClass::Medium,
                    "large" => SizeClass::Large,
                    other => panic!("unknown size {other:?}"),
                };
            }
            "--bench-size" => {
                i += 1;
                args.bench_size = argv[i].parse().expect("--bench-size takes an integer");
            }
            "--bench-iters" => {
                i += 1;
                args.bench_iters = argv[i].parse().expect("--bench-iters takes an integer");
            }
            "--bench-out" => {
                i += 1;
                args.bench_out = argv[i].clone();
            }
            what => args.what = what.to_string(),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    if args.what == "bench" {
        let entries = perf::run(args.bench_size, args.bench_iters);
        let json = perf::to_json(args.bench_size, &entries);
        std::fs::write(&args.bench_out, &json).expect("write bench output");
        eprintln!("wrote {}", args.bench_out);
        println!("{json}");
        return;
    }
    let config = HarnessConfig {
        scale: args.scale,
        cutoff: Duration::from_secs(args.cutoff_secs),
        r_mem_bytes: (48e9 * args.scale * args.scale) as u64,
        ..Default::default()
    };
    eprintln!(
        "generating datasets at scale {} (cutoff {}s, simulated R memory {})...",
        args.scale,
        args.cutoff_secs,
        genbase_util::fmt_bytes(config.r_mem_bytes)
    );
    let harness = Harness::new(config).expect("dataset generation");

    let run = |name: &str| args.what == "all" || args.what == name;
    if run("fig1") {
        println!("{}", figures::figure1(&harness).expect("figure 1").render());
    }
    if run("fig2") {
        println!("{}", figures::figure2(&harness).expect("figure 2").render());
    }
    if run("fig3") {
        println!(
            "{}",
            figures::figure3(&harness, args.mn_size)
                .expect("figure 3")
                .render()
        );
    }
    if run("fig4") {
        println!(
            "{}",
            figures::figure4(&harness, args.mn_size)
                .expect("figure 4")
                .render()
        );
    }
    if run("fig5") {
        println!("{}", figures::figure5(&harness).expect("figure 5").render());
    }
    if run("table1") {
        println!(
            "{}",
            figures::table1(&harness, args.mn_size)
                .expect("table 1")
                .render()
        );
    }
    if args.what == "weak" {
        // Paper future work (§5.2): weak scaling — per-node data constant.
        let genes = (5_000.0 * args.scale * 3.0).round() as usize;
        let patients = (5_000.0 * args.scale * 2.0).round() as usize;
        println!(
            "{}",
            figures::weak_scaling(
                genes.max(48),
                patients.max(40),
                &[1, 2, 4],
                genbase::Query::Regression,
            )
            .expect("weak scaling")
            .render()
        );
    }
}

/// Kernel perf baseline: times the hot linalg/stats paths against the seed
/// repo's serial kernels and serializes `BENCH_baseline.json`.
mod perf {
    use genbase_linalg::{covariance, matmul, matmul_blocked, ExecOpts, Matrix};
    use genbase_util::Pcg64;
    use std::time::Instant;

    /// One timed configuration.
    pub struct Entry {
        /// Kernel name (`*_seed_serial` entries are the frozen baselines).
        pub op: &'static str,
        /// Problem edge: matrices are `size x size`, rankings `size * 256`
        /// values.
        pub size: usize,
        /// `ExecOpts.threads` handed to the kernel.
        pub threads: usize,
        /// Mean wall nanoseconds per iteration.
        pub ns_per_iter: f64,
        /// Timed iterations (after one warm-up).
        pub iters: u32,
    }

    fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
        f(); // warm-up (page-in, pool spin-up)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters.max(1) as f64
    }

    /// The seed repo's serial blocked matmul: i-k-j order, 64-edge cache
    /// blocks, per-element zero-skip branch — exactly the pre-runtime
    /// kernel (the library's matmul_blocked has since dropped the branch,
    /// so it is reconstructed here to keep the baseline honest).
    fn matmul_seed_serial(a: &Matrix, b: &Matrix) -> Matrix {
        const BLOCK: usize = 64;
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        let a = a.data();
        let b = b.data();
        let o = out.data_mut();
        for ib in (0..m).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(m);
            for kb in (0..k).step_by(BLOCK) {
                let k_end = (kb + BLOCK).min(k);
                for jb in (0..n).step_by(BLOCK) {
                    let j_end = (jb + BLOCK).min(n);
                    for i in ib..i_end {
                        let a_row = &a[i * k..(i + 1) * k];
                        let out_row = &mut o[i * n..(i + 1) * n];
                        for p in kb..k_end {
                            let aval = a_row[p];
                            if aval == 0.0 {
                                continue;
                            }
                            let b_row = &b[p * n + jb..p * n + j_end];
                            let orow = &mut out_row[jb..j_end];
                            for (oj, bj) in orow.iter_mut().zip(b_row) {
                                *oj += aval * bj;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The seed repo's serial blocked gram + centering (covariance Query 2
    /// path): row-streaming upper-triangle update with the per-element
    /// zero-skip branch, exactly as in the pre-runtime kernel.
    fn covariance_seed_serial(a: &Matrix) -> Matrix {
        let (m, n) = a.shape();
        let mut centered = a.clone();
        genbase_linalg::center_columns(&mut centered);
        let mut out = Matrix::zeros(n, n);
        {
            let a = centered.data();
            let o = out.data_mut();
            for r in 0..m {
                let a_row = &a[r * n..(r + 1) * n];
                for c in 0..n {
                    let aval = a_row[c];
                    if aval == 0.0 {
                        continue;
                    }
                    let seg = &mut o[c * n + c..(c + 1) * n];
                    for (oj, bj) in seg.iter_mut().zip(&a_row[c..]) {
                        *oj += aval * bj;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        let inv = 1.0 / (m - 1) as f64;
        out.map_inplace(|v| v * inv);
        out
    }

    /// Run the kernel sweep. `size` is the matrix edge (the acceptance
    /// configuration is 2048); thread counts follow the perf-trajectory
    /// convention {1, 2, 8}.
    pub fn run(size: usize, iters: u32) -> Vec<Entry> {
        let mut rng = Pcg64::new(0xbe7c);
        eprintln!("bench: generating {size}x{size} inputs...");
        let a = Matrix::from_fn(size, size, |_, _| rng.normal());
        let b = Matrix::from_fn(size, size, |_, _| rng.normal());
        let mut entries = Vec::new();
        let mut push = |op: &'static str, threads: usize, ns: f64, iters: u32| {
            eprintln!("bench: {op} size={size} threads={threads}: {:.3} ms/iter", ns / 1e6);
            entries.push(Entry { op, size, threads, ns_per_iter: ns, iters });
        };

        // -- matmul ----------------------------------------------------------
        let serial = ExecOpts::serial();
        let ns = time_ns(iters, || {
            matmul_seed_serial(&a, &b);
        });
        push("matmul_seed_serial", 1, ns, iters);
        let ns = time_ns(iters, || {
            matmul_blocked(&a, &b, &serial).expect("blocked matmul");
        });
        push("matmul_blocked_serial", 1, ns, iters);
        for threads in [1usize, 2, 8] {
            let opts = ExecOpts::with_threads(threads);
            let ns = time_ns(iters, || {
                matmul(&a, &b, &opts).expect("packed matmul");
            });
            push("matmul_packed", threads, ns, iters);
        }

        // -- covariance --------------------------------------------------------
        let ns = time_ns(iters, || {
            covariance_seed_serial(&a);
        });
        push("covariance_seed_serial", 1, ns, iters);
        for threads in [1usize, 2, 8] {
            let opts = ExecOpts::with_threads(threads);
            let ns = time_ns(iters, || {
                covariance(&a, &opts).expect("covariance");
            });
            push("covariance_syrk", threads, ns, iters);
        }

        // -- statistics ranking ------------------------------------------------
        let values: Vec<f64> = (0..size * 256).map(|_| rng.normal()).collect();
        let ns = time_ns(iters, || {
            genbase_stats::average_ranks(&values);
        });
        push("ranking_seed_serial", 1, ns, iters);
        for threads in [1usize, 2, 8] {
            let ns = time_ns(iters, || {
                genbase_stats::average_ranks_par(&values, threads);
            });
            push("ranking_parallel", threads, ns, iters);
        }
        entries
    }

    /// Hand-rolled JSON (the workspace is dependency-free by design).
    pub fn to_json(size: usize, entries: &[Entry]) -> String {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"genbase-bench-v1\",\n");
        out.push_str(&format!("  \"bench_size\": {size},\n"));
        out.push_str(&format!("  \"host_threads\": {host},\n"));
        out.push_str("  \"entries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"size\": {}, \"threads\": {}, \"ns_per_iter\": {:.0}, \"iters\": {}}}{comma}\n",
                e.op, e.size, e.threads, e.ns_per_iter, e.iters
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}
