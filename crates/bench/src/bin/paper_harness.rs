//! The full benchmark driver: regenerates every table and figure from the
//! GenBase paper's evaluation section.
//!
//! ```text
//! paper_harness [fig1|fig2|fig3|fig4|fig5|table1|weak|all]
//!               [--scale F]      per-side scale vs paper sizes (default 0.048)
//!               [--cutoff SECS]  per-run cutoff (default 60)
//!               [--mn-size S]    multi-node dataset: small|medium|large (default medium)
//! ```
//!
//! At the default scale the size ladder is Small 240x240, Medium 720x960,
//! Large 1440x1920 (paper ÷ ~20.8 per side), and the cutoff plays the role
//! of the paper's two-hour window. Pass `--scale 1.0` for paper-size runs
//! (hours of compute and ~10 GB matrices).

use genbase::figures;
use genbase::harness::{Harness, HarnessConfig};
use genbase_datagen::SizeClass;
use std::time::Duration;

struct Args {
    what: String,
    scale: f64,
    cutoff_secs: u64,
    mn_size: SizeClass,
}

fn parse_args() -> Args {
    let mut args = Args {
        what: "all".to_string(),
        scale: 0.048,
        cutoff_secs: 60,
        mn_size: SizeClass::Medium,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = argv[i].parse().expect("--scale takes a float");
            }
            "--cutoff" => {
                i += 1;
                args.cutoff_secs = argv[i].parse().expect("--cutoff takes seconds");
            }
            "--mn-size" => {
                i += 1;
                args.mn_size = match argv[i].as_str() {
                    "small" => SizeClass::Small,
                    "medium" => SizeClass::Medium,
                    "large" => SizeClass::Large,
                    other => panic!("unknown size {other:?}"),
                };
            }
            what => args.what = what.to_string(),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let config = HarnessConfig {
        scale: args.scale,
        cutoff: Duration::from_secs(args.cutoff_secs),
        r_mem_bytes: (48e9 * args.scale * args.scale) as u64,
        ..Default::default()
    };
    eprintln!(
        "generating datasets at scale {} (cutoff {}s, simulated R memory {})...",
        args.scale,
        args.cutoff_secs,
        genbase_util::fmt_bytes(config.r_mem_bytes)
    );
    let harness = Harness::new(config).expect("dataset generation");

    let run = |name: &str| args.what == "all" || args.what == name;
    if run("fig1") {
        println!("{}", figures::figure1(&harness).expect("figure 1").render());
    }
    if run("fig2") {
        println!("{}", figures::figure2(&harness).expect("figure 2").render());
    }
    if run("fig3") {
        println!(
            "{}",
            figures::figure3(&harness, args.mn_size)
                .expect("figure 3")
                .render()
        );
    }
    if run("fig4") {
        println!(
            "{}",
            figures::figure4(&harness, args.mn_size)
                .expect("figure 4")
                .render()
        );
    }
    if run("fig5") {
        println!("{}", figures::figure5(&harness).expect("figure 5").render());
    }
    if run("table1") {
        println!(
            "{}",
            figures::table1(&harness, args.mn_size)
                .expect("table 1")
                .render()
        );
    }
    if args.what == "weak" {
        // Paper future work (§5.2): weak scaling — per-node data constant.
        let genes = (5_000.0 * args.scale * 3.0).round() as usize;
        let patients = (5_000.0 * args.scale * 2.0).round() as usize;
        println!(
            "{}",
            figures::weak_scaling(
                genes.max(48),
                patients.max(40),
                &[1, 2, 4],
                genbase::Query::Regression,
            )
            .expect("weak scaling")
            .render()
        );
    }
}
