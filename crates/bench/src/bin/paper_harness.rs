//! The full benchmark driver: regenerates every table and figure from the
//! GenBase paper's evaluation section through the sharded cell scheduler,
//! plus the kernel perf baseline.
//!
//! ```text
//! paper_harness [fig1|fig2|fig3|fig4|fig5|table1|weak|bench|all]
//!               [explain [ENGINE] [QUERY]]  per-operator plan cost tables
//!               [coordinate|work|status]  distributed sweep roles (see below)
//!               [serve]          resident benchmark server: framed + HTTP
//!                                listeners, /status /metrics /query
//!               [query ENGINE QUERY]  submit one query to a running server
//!                                over the framed protocol
//!               [--scale F]      per-side scale vs paper sizes (default 0.048)
//!               [--sizes LIST]   size classes, e.g. small,medium (default all)
//!               [--cutoff SECS]  per-run cutoff (default 60)
//!               [--mn-size S]    multi-node dataset: small|medium|large (default medium)
//!               [--threads N]    simulated machine size / kernel budget
//!                                (default: host threads; pin it for
//!                                cross-machine shard or worker runs)
//!               [--jobs K]       benchmark cells in flight (default: host
//!                                threads); for `work`: leased cells the
//!                                worker multiplexes (default 1)
//!               [--nodes N]      explain: simulated cluster size (default 1)
//!               [--json]         explain: machine-readable per-op output
//!                                (genbase-explain-v1, includes the memory
//!                                columns)
//!               [--per-op]       fig2/fig4: stacked per-operator breakdown
//!                                (seconds + storage-layer bytes moved per
//!                                operator class) instead of the phase split
//!               [--mem-budget BYTES]  per-cell storage-layer working-set
//!                                budget; exhaustion renders as an
//!                                "infinite" cell, like a cutoff
//!               [--stream]       morsel-driven streaming execution: SQL
//!                                engines pull fixed-row batches through
//!                                their plan pipeline instead of
//!                                materializing intermediates (output is
//!                                byte-identical; peak_alloc/batches/spill
//!                                in the trace change); over-budget
//!                                streaming cells spill to disk and
//!                                complete instead of going infinite
//!               [--batch-rows N] rows per streaming morsel (default 4096;
//!                                must be at least 1)
//!               [--fused]        fuse the streaming operators into one
//!                                pass per morsel with selection vectors
//!                                (implies --stream): output stays
//!                                byte-identical while bytes moved and
//!                                peak alloc shrink on every streaming cell
//!               [--spill-dir P]  directory for streaming spill files
//!                                (default: system temp)
//!               [--auth-token T] coordinate/work: shared handshake token
//!                                (falls back to GENBASE_COORD_TOKEN)
//!               [--lease-timeout SECS]  coordinate: revoke and re-issue a
//!                                cell leased longer than this (default:
//!                                off, EOF-only death detection)
//!               [--rebalance-after SECS]  coordinate: once idle workers
//!                                outnumber pending cells, steal the
//!                                longest lease older than this and hand
//!                                it to an idle worker (default: off)
//!               [--faults SPEC]  install a fault-injection plan (same
//!                                grammar as GENBASE_FAULTS, overrides it):
//!                                site@N=action[;...], actions err:<kind>/
//!                                delay:<ms>/torn:<bytes>/abort
//!               [--shards N] [--shard-id I]  run the I-th of N cell partitions
//!               [--checkpoint P] resume file: completed cells skip on rerun
//!               [--grid-out P]   write the result grid as JSON
//!               [--grid-in P]    render from grid file(s) instead of running
//!                                (repeatable; shards merge)
//!               [--sim-only]     deterministic timing (simulated costs only)
//!               [--listen ADDR]  coordinate/serve: framed bind address
//!                                (default 127.0.0.1:7717)
//!               [--listen-http ADDR]  serve: HTTP bind address
//!                                (default 127.0.0.1:7718)
//!               [--queue-depth N]  serve: bounded admission queue — how
//!                                many over-budget requests may wait for
//!                                memory before rejection (default 16)
//!               [--connect ADDR] work/query/status: server address
//!                                (default 127.0.0.1:7717)
//!               [--connect-window SECS]  work: retry window while the
//!                                coordinator starts (default 30)
//!               [--figures LIST] coordinate: exhibits to sweep, e.g.
//!                                fig1,table1 (default all)
//!               [--bench-size N] kernel bench matrix edge (default 2048)
//!               [--bench-iters K] timed iterations per kernel (default 2)
//!               [--bench-out P]  kernel bench JSON path (default BENCH_baseline.json)
//!               [--compare P]    bench: diff this run against a committed
//!                                baseline JSON, print the per-op speedup
//!                                table, exit 1 on any gated row slower
//!                                than --regress-threshold
//!               [--regress-threshold PCT]  bench --compare: fail when a
//!                                gated row's ns/iter exceeds PCT% of its
//!                                baseline (default 150)
//!               [--cache-budget BYTES]  serve: artifact-cache budget —
//!                                conversion kernels (joins, pivots,
//!                                chunked ingest, R loads) memoize their
//!                                outputs under LRU eviction, charged
//!                                against a dedicated tracker (never a
//!                                run's --mem-budget)
//!               [--result-cache] serve: replay completed --sim-only
//!                                outcomes byte-identically for repeat
//!                                queries on the same cell (inert under
//!                                measured timing)
//! ```
//!
//! `coordinate` runs the sweep across worker *processes* instead of
//! in-process jobs: it listens on `--listen`, leases one cell at a time to
//! every `work` process that connects (handshake-checked against this
//! process's config fingerprint), streams outcomes back over the socket,
//! re-leases cells whose worker died, and renders the figures when the
//! grid is complete — no shared filesystem required. `work --connect HOST:PORT`
//! must be started with the same configuration flags as the coordinator.
//! Workers are elastic: SIGTERM makes a worker finish in-flight sends,
//! hand back any lease with `leave` (uncharged against the re-issue cap),
//! and exit; a worker that loses its connection reconnects with backoff
//! and re-submits its finished result instead of recomputing. `status
//! --connect HOST:PORT` polls a serving coordinator for a live snapshot
//! (pending/leased/done cells, per-worker throughput, re-issue counts) as
//! a table, or as JSON with `--json`; it authenticates like a worker but
//! needs no configuration flags.
//!
//! At the default scale the size ladder is Small 240x240, Medium 720x960,
//! Large 1440x1920 (paper ÷ ~20.8 per side), and the cutoff plays the role
//! of the paper's two-hour window. Pass `--scale 1.0` for paper-size runs
//! (hours of compute and ~10 GB matrices).
//!
//! Sweeps run cell-by-cell on the shared runtime pool: `--jobs` cells in
//! flight, each under `threads / jobs` kernel threads. Output is
//! byte-identical to the serial path for any `--jobs`; with `--sim-only`
//! it is byte-identical across runs and machines too — that is what the CI
//! shard-conformance job diffs. A multi-shard run renders nothing (its grid
//! is partial); write `--grid-out` per shard and render the merged result
//! with `--grid-in`.
//!
//! `explain` runs engine × query pairs once each and prints one table per
//! pair with a row per executed physical operator (filter, join,
//! restructure, export, group-agg, marshal, analytics) and its cost — the
//! plan-IR decomposition behind the Figure 2/4 phase split, which is
//! exactly the sum of each pair's trace rows. Positional arguments narrow
//! the matrix: `explain "SciDB" svd` (quote engine names containing
//! spaces). With `--sim-only --threads N` the output is deterministic
//! across machines — the CI `explain-golden` step diffs it against a
//! committed snapshot.
//!
//! `bench` times the linalg/stats hot kernels against the seed repo's
//! serial implementations, plus the fig1 sweep wall-clock serial vs
//! sharded, and writes `BENCH_baseline.json` (`op, size, threads, ns/iter`)
//! so later PRs have a perf trajectory to regress against (see the CI
//! bench job).
//!
//! `serve` keeps the dataset pool, compiled plans and engine registry
//! resident and answers query/explain/status requests from concurrent
//! clients: the framed `genbase-coord-v1` protocol on `--listen` and HTTP
//! (`GET /status`, `GET /metrics`, `POST /query`) on `--listen-http`. In
//! serve mode `--mem-budget` is the *admission* budget: a request whose
//! working-set estimate does not fit waits in a `--queue-depth`-bounded
//! queue and overflow is rejected cleanly (HTTP 429 / a `busy` frame)
//! instead of OOMing. SIGTERM drains in-flight queries before exit.
//! `query ENGINE QUERY --connect HOST:PORT` submits one request over the
//! framed protocol and prints the reply JSON — byte-identical under
//! `--sim-only` to the same cell of a batch sweep grid.

use genbase::figures;
use genbase::harness::{Harness, HarnessConfig, TimingMode};
use genbase::sched::{FigureId, ReportGrid, Scheduler, SweepOptions};
use genbase_datagen::SizeClass;
use genbase_util::{Error, Result};
use std::time::Duration;

struct Args {
    what: String,
    scale: f64,
    sizes: Option<Vec<SizeClass>>,
    cutoff_secs: u64,
    mn_size: SizeClass,
    threads: usize,
    jobs: usize,
    shards: usize,
    shard_id: usize,
    checkpoint: Option<String>,
    grid_out: Option<String>,
    grid_in: Vec<String>,
    sim_only: bool,
    listen: String,
    listen_http: String,
    queue_depth: usize,
    connect: String,
    connect_window_secs: u64,
    figures: Option<Vec<FigureId>>,
    bench_size: usize,
    bench_iters: u32,
    bench_out: String,
    compare: Option<String>,
    regress_threshold: f64,
    cache_budget: Option<u64>,
    result_cache: bool,
    nodes: usize,
    lease_timeout_secs: u64,
    rebalance_after_secs: u64,
    faults: Option<String>,
    mem_budget: Option<u64>,
    stream: bool,
    fused: bool,
    batch_rows: usize,
    spill_dir: Option<String>,
    auth_token: Option<String>,
    json: bool,
    per_op: bool,
    positionals: Vec<String>,
}

/// A malformed command line: printed to stderr, exit code 2. The message
/// always names the offending flag.
struct UsageError(String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn parse_args(argv: &[String]) -> std::result::Result<Args, UsageError> {
    let mut args = Args {
        what: "all".to_string(),
        scale: 0.048,
        sizes: None,
        cutoff_secs: 60,
        mn_size: SizeClass::Medium,
        threads: 0,
        jobs: 0,
        shards: 1,
        shard_id: 0,
        checkpoint: None,
        grid_out: None,
        grid_in: Vec::new(),
        sim_only: false,
        listen: "127.0.0.1:7717".to_string(),
        listen_http: "127.0.0.1:7718".to_string(),
        queue_depth: 16,
        connect: "127.0.0.1:7717".to_string(),
        connect_window_secs: 30,
        figures: None,
        bench_size: 2048,
        bench_iters: 2,
        bench_out: "BENCH_baseline.json".to_string(),
        compare: None,
        regress_threshold: 150.0,
        cache_budget: None,
        result_cache: false,
        nodes: 1,
        lease_timeout_secs: 0,
        rebalance_after_secs: 0,
        faults: None,
        mem_budget: None,
        stream: false,
        fused: false,
        batch_rows: 0,
        spill_dir: None,
        auth_token: std::env::var("GENBASE_COORD_TOKEN").ok(),
        json: false,
        per_op: false,
        positionals: Vec::new(),
    };
    // The raw string value following a flag; a flag at the end of the
    // command line is a usage error naming that flag.
    let value = |i: &mut usize, flag: &str| -> std::result::Result<String, UsageError> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| UsageError(format!("{flag} needs a value")))
    };
    // A parsed value; a malformed one is a usage error naming the flag and
    // what it wanted (`--scale takes a float, got "abc"`).
    macro_rules! parsed {
        ($i:expr, $flag:expr, $wants:expr) => {{
            let raw = value($i, $flag)?;
            raw.parse()
                .map_err(|_| UsageError(format!("{} takes {}, got {raw:?}", $flag, $wants)))?
        }};
    }
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => args.scale = parsed!(&mut i, "--scale", "a float"),
            "--sizes" => {
                let raw = value(&mut i, "--sizes")?;
                let mut sizes = Vec::new();
                for s in raw.split(',') {
                    sizes.push(SizeClass::from_slug(s.trim()).ok_or_else(|| {
                        UsageError(format!(
                            "--sizes: unknown size {:?} (want small/medium/large)",
                            s.trim()
                        ))
                    })?);
                }
                args.sizes = Some(sizes);
            }
            "--cutoff" => args.cutoff_secs = parsed!(&mut i, "--cutoff", "seconds"),
            "--mn-size" => {
                let raw = value(&mut i, "--mn-size")?;
                args.mn_size = SizeClass::from_slug(&raw).ok_or_else(|| {
                    UsageError(format!(
                        "--mn-size: unknown size {raw:?} (want small/medium/large)"
                    ))
                })?;
            }
            "--threads" => args.threads = parsed!(&mut i, "--threads", "an integer"),
            "--jobs" => args.jobs = parsed!(&mut i, "--jobs", "an integer"),
            "--shards" => args.shards = parsed!(&mut i, "--shards", "an integer"),
            "--shard-id" => args.shard_id = parsed!(&mut i, "--shard-id", "an integer"),
            "--checkpoint" => args.checkpoint = Some(value(&mut i, "--checkpoint")?),
            "--grid-out" => args.grid_out = Some(value(&mut i, "--grid-out")?),
            "--grid-in" => args.grid_in.push(value(&mut i, "--grid-in")?),
            "--sim-only" => args.sim_only = true,
            "--listen" => args.listen = value(&mut i, "--listen")?,
            "--listen-http" => args.listen_http = value(&mut i, "--listen-http")?,
            "--queue-depth" => args.queue_depth = parsed!(&mut i, "--queue-depth", "an integer"),
            "--connect" => args.connect = value(&mut i, "--connect")?,
            "--connect-window" => {
                args.connect_window_secs = parsed!(&mut i, "--connect-window", "seconds")
            }
            "--figures" => {
                let raw = value(&mut i, "--figures")?;
                let mut figures = Vec::new();
                for s in raw.split(',') {
                    figures.push(FigureId::from_name(s.trim()).ok_or_else(|| {
                        UsageError(format!("--figures: unknown figure {:?}", s.trim()))
                    })?);
                }
                args.figures = Some(figures);
            }
            "--bench-size" => args.bench_size = parsed!(&mut i, "--bench-size", "an integer"),
            "--bench-iters" => args.bench_iters = parsed!(&mut i, "--bench-iters", "an integer"),
            "--bench-out" => args.bench_out = value(&mut i, "--bench-out")?,
            "--compare" => args.compare = Some(value(&mut i, "--compare")?),
            "--regress-threshold" => {
                args.regress_threshold = parsed!(&mut i, "--regress-threshold", "a percentage")
            }
            "--cache-budget" => {
                args.cache_budget = Some(parsed!(&mut i, "--cache-budget", "bytes"))
            }
            "--result-cache" => args.result_cache = true,
            "--nodes" => args.nodes = parsed!(&mut i, "--nodes", "an integer"),
            "--lease-timeout" => {
                args.lease_timeout_secs = parsed!(&mut i, "--lease-timeout", "seconds")
            }
            "--rebalance-after" => {
                args.rebalance_after_secs = parsed!(&mut i, "--rebalance-after", "seconds")
            }
            "--faults" => {
                let raw = value(&mut i, "--faults")?;
                // Validate the plan grammar here so a typo exits 2 with
                // the flag named, before any side effects.
                genbase_util::faults::FaultPlan::parse(&raw)
                    .map_err(|e| UsageError(format!("--faults: {e}")))?;
                args.faults = Some(raw);
            }
            "--mem-budget" => args.mem_budget = Some(parsed!(&mut i, "--mem-budget", "bytes")),
            "--stream" => args.stream = true,
            "--fused" => args.fused = true,
            "--batch-rows" => {
                args.batch_rows = parsed!(&mut i, "--batch-rows", "rows");
                // 0 used to silently degrade to 1-row batches; reject it
                // loudly at parse time instead.
                if args.batch_rows == 0 {
                    return Err(UsageError("--batch-rows must be at least 1".into()));
                }
            }
            "--spill-dir" => args.spill_dir = Some(value(&mut i, "--spill-dir")?),
            "--auth-token" => args.auth_token = Some(value(&mut i, "--auth-token")?),
            "--json" => args.json = true,
            "--per-op" => args.per_op = true,
            what => {
                // A mistyped flag must not be silently swallowed as a
                // subcommand argument (or the run proceeds with defaults).
                if what.starts_with("--") {
                    return Err(UsageError(format!("unknown flag {what:?}")));
                }
                if args.what == "all" {
                    args.what = what.to_string();
                } else if args.what == "explain" || args.what == "query" {
                    // Subcommand arguments: `explain|query <engine> <query>`.
                    args.positionals.push(what.to_string());
                } else {
                    return Err(UsageError(format!(
                        "unexpected argument {what:?} after {:?}",
                        args.what
                    )));
                }
            }
        }
        i += 1;
    }
    Ok(args)
}

fn requested_figures(what: &str) -> Result<Vec<FigureId>> {
    if what == "all" {
        Ok(FigureId::ALL.to_vec())
    } else {
        Ok(vec![FigureId::from_name(what).ok_or_else(|| {
            Error::invalid(format!(
                "unknown command {what:?} (want figN/table1/weak/bench/explain/\
                 coordinate/work/status/serve/query/all)"
            ))
        })?])
    }
}

fn harness_config(args: &Args) -> HarnessConfig {
    let mut config = HarnessConfig {
        scale: args.scale,
        cutoff: Duration::from_secs(args.cutoff_secs),
        r_mem_bytes: (48e9 * args.scale * args.scale) as u64,
        ..Default::default()
    };
    if let Some(sizes) = &args.sizes {
        config.sizes = sizes.clone();
    }
    if args.threads > 0 {
        config.threads = args.threads;
    }
    if args.sim_only {
        config.timing = TimingMode::SimOnly;
    }
    config.mem_budget = args.mem_budget;
    if args.stream || args.fused || args.batch_rows > 0 || args.spill_dir.is_some() {
        let mut stream = genbase::engine::StreamConfig::default();
        if args.batch_rows > 0 {
            stream.batch_rows = args.batch_rows;
        }
        stream.spill_dir = args.spill_dir.as_ref().map(std::path::PathBuf::from);
        stream.fused = args.fused;
        config.stream = Some(stream);
    }
    config
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(usage) => {
            // Usage errors get their own exit code (2) so scripts can tell
            // a mistyped command line from a failed run.
            eprintln!("paper_harness: {usage}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("paper_harness: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<()> {
    if let Some(spec) = &args.faults {
        // An explicit --faults overrides any GENBASE_FAULTS in the
        // environment (install replaces the plan either way). The spec was
        // validated during argument parsing.
        let plan = genbase_util::faults::FaultPlan::parse(spec)
            .map_err(|e| Error::invalid(format!("--faults: {e}")))?;
        genbase_util::faults::install(plan);
        eprintln!("fault plan installed: {spec}");
    }
    if args.what == "coordinate" {
        return coordinate(args);
    }
    if args.what == "serve" {
        return serve(args);
    }
    if args.what == "query" {
        return query_server(args);
    }
    if args.what == "work" {
        // SIGTERM departs cleanly: the worker hands back its lease with
        // `leave` (uncharged against the re-issue cap) and exits.
        genbase_util::shutdown::install_sigterm_handler();
        let config = harness_config(args);
        let report = genbase::coord::run_worker_with(
            args.connect.as_str(),
            config,
            Duration::from_secs(args.connect_window_secs),
            genbase::coord::WorkerOptions {
                jobs: args.jobs.max(1),
                auth_token: args.auth_token.clone(),
                stop: None,
            },
        )?;
        eprintln!(
            "worker done: {} cells completed, {} failed{}",
            report.completed,
            report.failed,
            if genbase_util::shutdown::requested() {
                " (departed on SIGTERM)"
            } else {
                ""
            }
        );
        return Ok(());
    }
    if args.what == "status" {
        return status(args);
    }
    if args.what == "explain" {
        return explain(args);
    }
    if args.what == "bench" {
        // Load the comparison baseline before writing anything: --compare
        // and --bench-out may name the same file, and overwriting first
        // would make the comparison vacuously pass.
        let baseline = match &args.compare {
            Some(path) => Some(perf::load_baseline(path)?),
            None => None,
        };
        let mut entries = perf::run(args.bench_size, args.bench_iters)?;
        entries.extend(perf::artifact_cache(args.bench_size, args.bench_iters)?);
        entries.extend(perf::sweep_wall_clock()?);
        entries.extend(perf::streaming_memory()?);
        entries.extend(perf::streaming_fused()?);
        perf::warn_scaling_rows(&entries);
        let json = perf::to_json(args.bench_size, &entries);
        std::fs::write(&args.bench_out, &json)
            .map_err(|e| Error::invalid(format!("write {}: {e}", args.bench_out)))?;
        eprintln!("wrote {}", args.bench_out);
        println!("{json}");
        if let Some(baseline) = baseline {
            perf::compare(&baseline, &entries, args.regress_threshold)?;
        }
        return Ok(());
    }
    if args.what == "weak" {
        // Paper future work (§5.2): weak scaling — per-node data constant.
        let genes = (5_000.0 * args.scale * 3.0).round() as usize;
        let patients = (5_000.0 * args.scale * 2.0).round() as usize;
        println!(
            "{}",
            figures::weak_scaling(
                genes.max(48),
                patients.max(40),
                &[1, 2, 4],
                genbase::Query::Regression,
            )?
            .render()
        );
        return Ok(());
    }

    let figs = requested_figures(&args.what)?;
    let config = harness_config(args);
    // A multi-shard run renders nothing (its grid is partial); without a
    // place to persist the grid, the whole shard's work would be discarded.
    // Catch that before hours of compute, not after.
    if args.shards > 1 && args.grid_out.is_none() && args.checkpoint.is_none() {
        return Err(Error::invalid(
            "--shards > 1 needs --grid-out (or --checkpoint): \
             nothing would persist the shard's results",
        ));
    }

    // Render-only mode: merge grids from earlier (sharded) runs.
    if !args.grid_in.is_empty() {
        let mut grid = ReportGrid::default();
        for path in &args.grid_in {
            let part = ReportGrid::load(std::path::Path::new(path))
                .map_err(|e| Error::invalid(format!("load {path}: {e}")))?;
            grid.merge(part)
                .map_err(|e| Error::invalid(format!("merge {path}: {e}")))?;
        }
        // The grids must come from the configuration we are rendering
        // under — table1 regenerates the dataset from the render-time
        // config, so a scale mismatch would silently produce wrong numbers.
        let expect = genbase::sched::config_fingerprint(&config);
        if let Some(have) = grid.fingerprint() {
            if have != expect {
                return Err(Error::invalid(format!(
                    "grid files were produced under a different configuration \
                     ({have} vs {expect}); repeat the sweep's \
                     --scale/--sim-only/... flags when rendering"
                )));
            }
        }
        let harness = Harness::new(config)?;
        for &fig in &figs {
            let figure = render_figure(fig, &harness, args, &grid)?;
            println!("{}", figure.render());
        }
        return Ok(());
    }

    eprintln!(
        "sweeping {} at scale {} (cutoff {}s, simulated R memory {}, shard {}/{})...",
        figs.iter().map(|f| f.name()).collect::<Vec<_>>().join("+"),
        args.scale,
        args.cutoff_secs,
        genbase_util::fmt_bytes(config.r_mem_bytes),
        args.shard_id,
        args.shards.max(1),
    );
    let scheduler = Scheduler::new(config)?;
    let mut sweep = SweepOptions::default().with_shard(args.shards, args.shard_id);
    if args.jobs > 0 {
        sweep = sweep.with_cells_in_flight(args.jobs);
    }
    if let Some(path) = &args.checkpoint {
        sweep = sweep.with_checkpoint(path);
    }
    let outcome = scheduler.run_sweep(&figs, args.mn_size, &sweep)?;
    if let Some(note) = &outcome.recovered {
        eprintln!("checkpoint recovery: {note}");
    }
    eprintln!(
        "sweep: {} cells ({} executed, {} from checkpoint) in {:.2}s",
        outcome.planned, outcome.executed, outcome.skipped, outcome.wall_secs
    );
    if let Some(path) = &args.grid_out {
        outcome
            .grid
            .save(std::path::Path::new(path))
            .map_err(|e| Error::invalid(format!("write grid {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    if args.shards.max(1) > 1 {
        eprintln!(
            "shard {}/{} complete; render the merged sweep with --grid-in",
            args.shard_id, args.shards
        );
        return Ok(());
    }
    for &fig in &figs {
        let figure = render_figure(fig, scheduler.harness(), args, &outcome.grid)?;
        println!("{}", figure.render());
    }
    Ok(())
}

/// Render one exhibit from a grid, honoring `--per-op` for fig2/fig4.
fn render_figure(
    fig: FigureId,
    harness: &Harness,
    args: &Args,
    grid: &ReportGrid,
) -> Result<figures::Figure> {
    if args.per_op && matches!(fig, FigureId::Fig2 | FigureId::Fig4) {
        figures::render_per_op(fig, harness, args.mn_size, grid)
            .map_err(|e| Error::invalid(format!("render {} --per-op: {e}", fig.name())))
    } else {
        figures::render(fig, harness, args.mn_size, grid)
            .map_err(|e| Error::invalid(format!("render {}: {e}", fig.name())))
    }
}

/// The `serve` subcommand: the resident benchmark server. `--mem-budget`
/// here is the *admission* budget (per-request working-set reservations),
/// not the per-cell tracker budget, so served outcomes stay byte-identical
/// to a batch sweep run without `--mem-budget`.
fn serve(args: &Args) -> Result<()> {
    genbase_util::shutdown::install_sigterm_handler();
    let mut config = harness_config(args);
    config.mem_budget = None;
    let mut options = genbase::ServeOptions {
        auth_token: args.auth_token.clone(),
        queue_depth: args.queue_depth,
        ..Default::default()
    };
    if let Some(budget) = args.mem_budget {
        options = options.with_mem_budget(budget);
    }
    if let Some(budget) = args.cache_budget {
        options = options.with_cache_budget(budget);
    }
    if args.result_cache {
        options = options.with_result_cache();
    }
    let server = genbase::BenchServer::bind(
        args.listen.as_str(),
        args.listen_http.as_str(),
        config.clone(),
        options,
    )?;
    eprintln!(
        "serving on {} (framed) and {} (http); fingerprint {}",
        server.frame_addr()?,
        server.http_addr()?,
        genbase::sched::config_fingerprint(&config),
    );
    let report = server.serve()?;
    eprintln!(
        "serve drained: {} served, {} failed, {} rejected",
        report.served, report.failed, report.rejected
    );
    Ok(())
}

/// The `query` subcommand: submit one query to a running server over the
/// framed protocol and print the reply JSON.
fn query_server(args: &Args) -> Result<()> {
    use genbase_util::Json;
    let engine = args
        .positionals
        .first()
        .ok_or_else(|| Error::invalid("query needs ENGINE and QUERY, e.g. query SciDB svd"))?;
    let query = args
        .positionals
        .get(1)
        .ok_or_else(|| Error::invalid("query needs ENGINE and QUERY, e.g. query SciDB svd"))?;
    let mut request = Json::obj();
    request.set("type", Json::from("query"));
    request.set("engine", Json::from(engine.as_str()));
    request.set("query", Json::from(query.as_str()));
    if let Some(sizes) = &args.sizes {
        if let Some(size) = sizes.first() {
            request.set("size", Json::from(size.slug()));
        }
    }
    if args.nodes > 1 {
        request.set("nodes", Json::from(args.nodes));
    }
    let reply = genbase::serve::client_request(
        args.connect.as_str(),
        args.auth_token.as_deref(),
        &request,
    )?;
    match reply.get("type").and_then(Json::as_str) {
        Some("result") => {
            println!("{}", reply.render());
            Ok(())
        }
        Some("busy") => Err(Error::invalid(format!(
            "server busy: {}",
            reply
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
        ))),
        Some("failed") => Err(Error::invalid(format!(
            "query failed: {}",
            reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
        ))),
        other => Err(Error::invalid(format!("unexpected reply type {other:?}"))),
    }
}

/// The `explain` subcommand: per-operator plan cost tables for engine ×
/// query pairs (all pairs by default; positionals narrow the matrix).
fn explain(args: &Args) -> Result<()> {
    let config = harness_config(args);
    let size = *config
        .sizes
        .first()
        .ok_or_else(|| Error::invalid("--sizes must name at least one size"))?;
    let engine_filter = args.positionals.first().map(String::as_str);
    let query_filter = match args.positionals.get(1) {
        Some(name) => Some(genbase::Query::from_name(name).ok_or_else(|| {
            Error::invalid(format!(
                "unknown query {name:?} (want one of \
                 regression/covariance/biclustering/svd/statistics)"
            ))
        })?),
        None => None,
    };
    let harness = Harness::new(config)?;
    if args.json {
        let json = figures::explain_json(
            &harness,
            size,
            args.nodes.max(1),
            engine_filter,
            query_filter,
        )?;
        println!("{json}");
        return Ok(());
    }
    let figure = figures::explain(
        &harness,
        size,
        args.nodes.max(1),
        engine_filter,
        query_filter,
    )?;
    println!("{}", figure.render());
    Ok(())
}

/// The `status` role: poll a serving coordinator for a live sweep
/// snapshot and print it as a table (or raw JSON with `--json`).
fn status(args: &Args) -> Result<()> {
    use genbase_util::Json;
    let snap = genbase::coord::fetch_status(
        args.connect.as_str(),
        args.auth_token.as_deref(),
        Duration::from_secs(args.connect_window_secs),
    )
    .map_err(|e| Error::invalid(format!("status poll @ {}: {e}", args.connect)))?;
    if args.json {
        println!("{}", snap.render());
        return Ok(());
    }
    let count = |key: &str| snap.get(key).and_then(Json::as_u64).unwrap_or(0);
    println!("coordinated sweep @ {}", args.connect);
    println!(
        "  cells    {:>5} planned  {:>5} done  {:>5} pending  {:>5} leased  {:>5} failed",
        count("planned"),
        count("done"),
        count("pending"),
        count("leased"),
        count("failed"),
    );
    println!(
        "  history  {:>5} executed  {:>5} restored  {:>5} reissued  {:>5} resumed  \
         {:>5} rebalanced  {:>5} departed",
        count("executed"),
        count("restored"),
        count("reissued"),
        count("resumed"),
        count("rebalanced"),
        count("departed"),
    );
    println!("  workers  {:>5} connections", count("workers"));
    if let Some(leases) = snap.get("leases").and_then(Json::as_arr) {
        if !leases.is_empty() {
            println!("  leases:");
            println!("    {:>8}  {:>10}  cell", "worker", "held");
            for lease in leases {
                println!(
                    "    {:>8}  {:>9.1}s  {}",
                    lease.get("worker").and_then(Json::as_u64).unwrap_or(0),
                    lease.get("held_secs").and_then(Json::as_f64).unwrap_or(0.0),
                    lease.get("cell").and_then(Json::as_str).unwrap_or("?"),
                );
            }
        }
    }
    if let Some(throughput) = snap.get("throughput").and_then(Json::as_arr) {
        if !throughput.is_empty() {
            println!("  throughput:");
            println!(
                "    {:>8}  {:>9}  {:>6}  {:>10}",
                "worker", "completed", "failed", "cells/s"
            );
            for t in throughput {
                println!(
                    "    {:>8}  {:>9}  {:>6}  {:>10.3}",
                    t.get("worker").and_then(Json::as_u64).unwrap_or(0),
                    t.get("completed").and_then(Json::as_u64).unwrap_or(0),
                    t.get("failed").and_then(Json::as_u64).unwrap_or(0),
                    t.get("cells_per_sec").and_then(Json::as_f64).unwrap_or(0.0),
                );
            }
        }
    }
    Ok(())
}

/// The `coordinate` role: serve leases over TCP until the grid is
/// complete, then render the figures exactly as a local sweep would.
fn coordinate(args: &Args) -> Result<()> {
    let config = harness_config(args);
    let figs = args
        .figures
        .clone()
        .unwrap_or_else(|| FigureId::ALL.to_vec());
    let mut options = genbase::coord::CoordOptions::default();
    if let Some(path) = &args.checkpoint {
        options = options.with_checkpoint(path);
    }
    if args.lease_timeout_secs > 0 {
        options = options.with_lease_timeout(Duration::from_secs(args.lease_timeout_secs));
    }
    if args.rebalance_after_secs > 0 {
        options = options.with_rebalance_after(Duration::from_secs(args.rebalance_after_secs));
    }
    if let Some(token) = &args.auth_token {
        options = options.with_auth_token(token.clone());
    }
    let coordinator = genbase::coord::Coordinator::bind(
        args.listen.as_str(),
        config.clone(),
        &figs,
        args.mn_size,
        options,
    )?;
    eprintln!(
        "coordinator listening on {} for {} (fingerprint {})",
        coordinator.local_addr()?,
        figs.iter().map(|f| f.name()).collect::<Vec<_>>().join("+"),
        genbase::sched::config_fingerprint(&config),
    );
    let outcome = coordinator
        .serve()
        .map_err(|e| Error::invalid(format!("coordinated sweep: {e}")))?;
    if let Some(note) = &outcome.recovered {
        eprintln!("checkpoint recovery: {note}");
    }
    eprintln!(
        "coordinated sweep: {} cells ({} executed by {} workers, {} from \
         checkpoint, {} leases re-issued, {} resumed, {} rebalanced, \
         {} clean departures)",
        outcome.planned,
        outcome.executed,
        outcome.workers,
        outcome.restored,
        outcome.reissued,
        outcome.resumed,
        outcome.rebalanced,
        outcome.departed,
    );
    if let Some(path) = &args.grid_out {
        outcome
            .grid
            .save(std::path::Path::new(path))
            .map_err(|e| Error::invalid(format!("write grid {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    let harness = Harness::new(config)?;
    for &fig in &figs {
        let figure = render_figure(fig, &harness, args, &outcome.grid)?;
        println!("{}", figure.render());
    }
    Ok(())
}

/// Kernel perf baseline: times the hot linalg/stats paths against the seed
/// repo's serial kernels and serializes `BENCH_baseline.json`.
mod perf {
    use genbase_linalg::{covariance, matmul, matmul_blocked, ExecOpts, Matrix};
    use genbase_util::Pcg64;
    use std::time::Instant;

    /// One timed configuration.
    pub struct Entry {
        /// Kernel name (`*_seed_serial` entries are the frozen baselines).
        pub op: &'static str,
        /// Problem edge: matrices are `size x size`, rankings `size * 256`
        /// values.
        pub size: usize,
        /// `ExecOpts.threads` handed to the kernel.
        pub threads: usize,
        /// Mean wall nanoseconds per iteration.
        pub ns_per_iter: f64,
        /// Timed iterations (after one warm-up).
        pub iters: u32,
    }

    fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
        f(); // warm-up (page-in, pool spin-up)
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters.max(1) as f64
    }

    /// The seed repo's serial blocked matmul: i-k-j order, 64-edge cache
    /// blocks, per-element zero-skip branch — exactly the pre-runtime
    /// kernel (the library's matmul_blocked has since dropped the branch,
    /// so it is reconstructed here to keep the baseline honest).
    fn matmul_seed_serial(a: &Matrix, b: &Matrix) -> Matrix {
        const BLOCK: usize = 64;
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        let a = a.data();
        let b = b.data();
        let o = out.data_mut();
        for ib in (0..m).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(m);
            for kb in (0..k).step_by(BLOCK) {
                let k_end = (kb + BLOCK).min(k);
                for jb in (0..n).step_by(BLOCK) {
                    let j_end = (jb + BLOCK).min(n);
                    for i in ib..i_end {
                        let a_row = &a[i * k..(i + 1) * k];
                        let out_row = &mut o[i * n..(i + 1) * n];
                        for p in kb..k_end {
                            let aval = a_row[p];
                            if aval == 0.0 {
                                continue;
                            }
                            let b_row = &b[p * n + jb..p * n + j_end];
                            let orow = &mut out_row[jb..j_end];
                            for (oj, bj) in orow.iter_mut().zip(b_row) {
                                *oj += aval * bj;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The seed repo's serial blocked gram + centering (covariance Query 2
    /// path): row-streaming upper-triangle update with the per-element
    /// zero-skip branch, exactly as in the pre-runtime kernel.
    fn covariance_seed_serial(a: &Matrix) -> Matrix {
        let (m, n) = a.shape();
        let mut centered = a.clone();
        genbase_linalg::center_columns(&mut centered);
        let mut out = Matrix::zeros(n, n);
        {
            let a = centered.data();
            let o = out.data_mut();
            for r in 0..m {
                let a_row = &a[r * n..(r + 1) * n];
                for c in 0..n {
                    let aval = a_row[c];
                    if aval == 0.0 {
                        continue;
                    }
                    let seg = &mut o[c * n + c..(c + 1) * n];
                    for (oj, bj) in seg.iter_mut().zip(&a_row[c..]) {
                        *oj += aval * bj;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        let inv = 1.0 / (m - 1) as f64;
        out.map_inplace(|v| v * inv);
        out
    }

    /// Run the kernel sweep. `size` is the matrix edge (the acceptance
    /// configuration is 2048); thread counts follow the perf-trajectory
    /// convention {1, 2, 8}.
    pub fn run(size: usize, iters: u32) -> genbase_util::Result<Vec<Entry>> {
        let mut rng = Pcg64::new(0xbe7c);
        eprintln!("bench: generating {size}x{size} inputs...");
        let a = Matrix::from_fn(size, size, |_, _| rng.normal());
        let b = Matrix::from_fn(size, size, |_, _| rng.normal());
        let mut entries = Vec::new();
        let mut push = |op: &'static str, threads: usize, ns: f64, iters: u32| {
            eprintln!(
                "bench: {op} size={size} threads={threads}: {:.3} ms/iter",
                ns / 1e6
            );
            entries.push(Entry {
                op,
                size,
                threads,
                ns_per_iter: ns,
                iters,
            });
        };

        // A kernel failure inside a timed closure (shape mismatch, thread
        // pool loss) is captured and propagated after the timing loop, so
        // the bench exits with one clean error instead of a panic.
        let mut kernel_err: Option<genbase_util::Error> = None;

        // -- matmul ----------------------------------------------------------
        let serial = ExecOpts::serial();
        let ns = time_ns(iters, || {
            matmul_seed_serial(&a, &b);
        });
        push("matmul_seed_serial", 1, ns, iters);
        let ns = time_ns(iters, || {
            if let Err(e) = matmul_blocked(&a, &b, &serial) {
                kernel_err.get_or_insert(e);
            }
        });
        push("matmul_blocked_serial", 1, ns, iters);
        for threads in [1usize, 2, 8] {
            let opts = ExecOpts::with_threads(threads);
            let ns = time_ns(iters, || {
                if let Err(e) = matmul(&a, &b, &opts) {
                    kernel_err.get_or_insert(e);
                }
            });
            push("matmul_packed", threads, ns, iters);
        }

        // -- covariance --------------------------------------------------------
        let ns = time_ns(iters, || {
            covariance_seed_serial(&a);
        });
        push("covariance_seed_serial", 1, ns, iters);
        for threads in [1usize, 2, 8] {
            let opts = ExecOpts::with_threads(threads);
            let ns = time_ns(iters, || {
                if let Err(e) = covariance(&a, &opts) {
                    kernel_err.get_or_insert(e);
                }
            });
            push("covariance_syrk", threads, ns, iters);
        }

        // -- statistics ranking ------------------------------------------------
        let values: Vec<f64> = (0..size * 256).map(|_| rng.normal()).collect();
        let ns = time_ns(iters, || {
            genbase_stats::average_ranks(&values);
        });
        push("ranking_seed_serial", 1, ns, iters);
        for threads in [1usize, 2, 8] {
            let ns = time_ns(iters, || {
                genbase_stats::average_ranks_par(&values, threads);
            });
            push("ranking_parallel", threads, ns, iters);
        }
        match kernel_err {
            Some(e) => Err(e),
            None => Ok(entries),
        }
    }

    /// Sweep wall-clock: a small fig1 sweep through the cell scheduler,
    /// serial (one cell in flight) vs sharded (8 cells in flight), so the
    /// perf trajectory records harness-level scheduling gains alongside
    /// kernel numbers. Fresh scheduler per run ⇒ dataset generation is
    /// inside the measured window both times.
    pub fn sweep_wall_clock() -> genbase_util::Result<Vec<Entry>> {
        use genbase::harness::HarnessConfig;
        use genbase::sched::{FigureId, Scheduler, SweepOptions};
        use genbase_datagen::SizeClass;

        let config = || HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            r_mem_bytes: u64::MAX,
            ..Default::default()
        };
        let mut entries = Vec::new();
        for (op, jobs) in [("sweep_fig1_serial", 1usize), ("sweep_fig1_sharded", 8)] {
            let scheduler = Scheduler::new(config())?;
            let sweep = SweepOptions::default().with_cells_in_flight(jobs);
            let outcome = scheduler.run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)?;
            let ns = outcome.wall_secs * 1e9;
            eprintln!(
                "bench: {op} jobs={jobs}: {:.3} ms ({} cells)",
                ns / 1e6,
                outcome.planned
            );
            entries.push(Entry {
                op,
                size: outcome.planned,
                threads: jobs,
                ns_per_iter: ns,
                iters: 1,
            });
        }
        Ok(entries)
    }

    /// Streaming-vs-materializing memory smoke: run the same SQL-bridge
    /// cells both ways and record peak resident storage-layer bytes (the
    /// `ns_per_iter` column holds bytes for these rows — the perf
    /// trajectory tracks the memory dimension alongside wall time). Fails
    /// the bench if a streaming cell's peak ever regresses above its
    /// materializing counterpart: streaming exists to bound memory, so
    /// that ordering is part of the baseline contract.
    pub fn streaming_memory() -> genbase_util::Result<Vec<Entry>> {
        use genbase::engine::StreamConfig;
        use genbase::harness::{Harness, HarnessConfig};
        use genbase::{Query, RunOutcome};
        use genbase_datagen::SizeClass;

        let config = |stream: Option<StreamConfig>| {
            let mut c = HarnessConfig {
                scale: 0.012,
                sizes: vec![SizeClass::Small],
                r_mem_bytes: u64::MAX,
                ..Default::default()
            }
            .sim_only();
            c.stream = stream;
            c
        };
        let peak = |harness: &Harness, engine: &dyn genbase::Engine, query: Query| {
            let record = harness.run_cell(engine, query, SizeClass::Small, 1)?;
            match &record.outcome {
                RunOutcome::Completed(report) => Ok(report.memory().peak_alloc_bytes),
                other => Err(genbase_util::Error::invalid(format!(
                    "bench cell {} {query:?} did not complete: {other:?}",
                    engine.name()
                ))),
            }
        };
        let materializing = Harness::new(config(None))?;
        let streaming = Harness::new(config(Some(StreamConfig {
            batch_rows: 64,
            spill_dir: None,
            fused: false,
        })))?;
        let engines = genbase::engines::single_node_engines();
        let mut entries = Vec::new();
        for name in ["Postgres + R", "Column store + R", "Column store + UDFs"] {
            let engine = engines
                .iter()
                .find(|e| e.name() == name)
                .expect("bench engine registered");
            let query = Query::Covariance;
            let mat = peak(&materializing, engine.as_ref(), query)?;
            let strm = peak(&streaming, engine.as_ref(), query)?;
            eprintln!(
                "bench: {name} covariance peak_alloc: materializing {}, streaming {}",
                genbase_util::fmt_bytes(mat),
                genbase_util::fmt_bytes(strm),
            );
            if strm > mat {
                return Err(genbase_util::Error::invalid(format!(
                    "streaming peak_alloc regression on {name} covariance: \
                     {strm} bytes streaming vs {mat} bytes materializing"
                )));
            }
            let op = match name {
                "Postgres + R" => ("peak_bytes_postgres_r_mat", "peak_bytes_postgres_r_stream"),
                "Column store + R" => ("peak_bytes_column_r_mat", "peak_bytes_column_r_stream"),
                _ => ("peak_bytes_column_udf_mat", "peak_bytes_column_udf_stream"),
            };
            entries.push(Entry {
                op: op.0,
                size: 60,
                threads: 1,
                ns_per_iter: mat as f64,
                iters: 1,
            });
            entries.push(Entry {
                op: op.1,
                size: 60,
                threads: 1,
                ns_per_iter: strm as f64,
                iters: 1,
            });
        }
        Ok(entries)
    }

    /// Fused-vs-staged streaming smoke: run covariance on all four
    /// SQL-bridge streaming engines both ways and record wall nanoseconds
    /// plus total storage-layer bytes moved and peak resident bytes per
    /// mode (byte rows reuse the `ns_per_iter` column as their value, like
    /// [`streaming_memory`]). Fails the bench if a fused cell ever moves
    /// at least as many bytes as its staged counterpart, or exceeds its
    /// peak: the fused pipeline exists to shrink data movement, so that
    /// ordering is part of the baseline contract.
    pub fn streaming_fused() -> genbase_util::Result<Vec<Entry>> {
        use genbase::engine::StreamConfig;
        use genbase::harness::{Harness, HarnessConfig};
        use genbase::{Query, RunOutcome};
        use genbase_datagen::SizeClass;

        let config = |fused: bool| {
            let mut c = HarnessConfig {
                scale: 0.012,
                sizes: vec![SizeClass::Small],
                r_mem_bytes: u64::MAX,
                ..Default::default()
            }
            .sim_only();
            c.stream = Some(StreamConfig {
                batch_rows: 64,
                spill_dir: None,
                fused,
            });
            c
        };
        let run = |harness: &Harness, engine: &dyn genbase::Engine, query: Query| {
            let start = std::time::Instant::now();
            let record = harness.run_cell(engine, query, SizeClass::Small, 1)?;
            let ns = start.elapsed().as_nanos() as f64;
            match &record.outcome {
                RunOutcome::Completed(report) => {
                    let mem = report.memory();
                    Ok((ns, mem.bytes_in + mem.bytes_out, mem.peak_alloc_bytes))
                }
                other => Err(genbase_util::Error::invalid(format!(
                    "bench cell {} {query:?} did not complete: {other:?}",
                    engine.name()
                ))),
            }
        };
        let staged = Harness::new(config(false))?;
        let fused = Harness::new(config(true))?;
        let engines = genbase::engines::single_node_engines();
        // Per engine: [staged ns, fused ns, staged bytes, fused bytes,
        // staged peak, fused peak].
        let rows: [(&str, [&'static str; 6]); 4] = [
            (
                "Postgres + Madlib",
                [
                    "stream_staged_ns_madlib",
                    "stream_fused_ns_madlib",
                    "stream_staged_bytes_madlib",
                    "stream_fused_bytes_madlib",
                    "stream_staged_peak_madlib",
                    "stream_fused_peak_madlib",
                ],
            ),
            (
                "Postgres + R",
                [
                    "stream_staged_ns_postgres_r",
                    "stream_fused_ns_postgres_r",
                    "stream_staged_bytes_postgres_r",
                    "stream_fused_bytes_postgres_r",
                    "stream_staged_peak_postgres_r",
                    "stream_fused_peak_postgres_r",
                ],
            ),
            (
                "Column store + R",
                [
                    "stream_staged_ns_column_r",
                    "stream_fused_ns_column_r",
                    "stream_staged_bytes_column_r",
                    "stream_fused_bytes_column_r",
                    "stream_staged_peak_column_r",
                    "stream_fused_peak_column_r",
                ],
            ),
            (
                "Column store + UDFs",
                [
                    "stream_staged_ns_column_udf",
                    "stream_fused_ns_column_udf",
                    "stream_staged_bytes_column_udf",
                    "stream_fused_bytes_column_udf",
                    "stream_staged_peak_column_udf",
                    "stream_fused_peak_column_udf",
                ],
            ),
        ];
        let mut entries = Vec::new();
        for (name, ops) in rows {
            let engine = engines
                .iter()
                .find(|e| e.name() == name)
                .expect("bench engine registered");
            let query = Query::Covariance;
            let (staged_ns, staged_bytes, staged_peak) = run(&staged, engine.as_ref(), query)?;
            let (fused_ns, fused_bytes, fused_peak) = run(&fused, engine.as_ref(), query)?;
            eprintln!(
                "bench: {name} covariance bytes moved: staged {}, fused {} \
                 (peak {} vs {})",
                genbase_util::fmt_bytes(staged_bytes),
                genbase_util::fmt_bytes(fused_bytes),
                genbase_util::fmt_bytes(staged_peak),
                genbase_util::fmt_bytes(fused_peak),
            );
            if fused_bytes >= staged_bytes {
                return Err(genbase_util::Error::invalid(format!(
                    "fused streaming moved {fused_bytes} bytes on {name} covariance, \
                     not below the staged path's {staged_bytes}"
                )));
            }
            if fused_peak > staged_peak {
                return Err(genbase_util::Error::invalid(format!(
                    "fused streaming peak_alloc regression on {name} covariance: \
                     {fused_peak} bytes fused vs {staged_peak} bytes staged"
                )));
            }
            let values = [
                staged_ns,
                fused_ns,
                staged_bytes as f64,
                fused_bytes as f64,
                staged_peak as f64,
                fused_peak as f64,
            ];
            for (op, value) in ops.into_iter().zip(values) {
                entries.push(Entry {
                    op,
                    size: 60,
                    threads: 1,
                    ns_per_iter: value,
                    iters: 1,
                });
            }
        }
        Ok(entries)
    }

    fn host_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Artifact-cache warm-vs-cold conversion rows: each `*_cold` row runs
    /// the conversion kernel with no cache attached; its `*_warm` partner
    /// replays the same conversion as a cache hit (the cold accounting plus
    /// a clone of the resident artifact). The warm/cold ratio is the perf
    /// trajectory's record of what a `--cache-budget` hit saves.
    pub fn artifact_cache(size: usize, iters: u32) -> genbase_util::Result<Vec<Entry>> {
        use genbase_relational::{DataType, Schema};
        use genbase_storage as storage;
        use genbase_util::{Budget, Pcg64};
        use storage::{ArtifactCache, CacheScope, MemTracker};

        let mut rng = Pcg64::new(0xcac4e);
        // Conversions move size^2 cells (the matrix itself plus a 3-column
        // triple table), so a full-edge matrix would dwarf the kernel rows'
        // footprint; a quarter edge keeps the rows cheap while staying far
        // above the cache's per-entry overhead.
        let edge = (size / 4).max(256);
        let dense = genbase_linalg::Matrix::from_fn(edge, edge, |_, _| rng.normal());
        let schema = || {
            Schema::new(&[
                ("gene_id", DataType::Int),
                ("patient_id", DataType::Int),
                ("value", DataType::Float),
            ])
            .expect("static schema")
        };
        let budget = Budget::new(None, u64::MAX, u64::MAX);
        let cache = ArtifactCache::new(u64::MAX / 2);
        let scope = CacheScope::new(cache, "bench");
        let patient_ids: Vec<i64> = (0..edge as i64).collect();
        let gene_ids: Vec<i64> = (0..edge as i64).collect();
        let mut entries = Vec::new();
        let mut push = |op: &'static str, ns: f64| {
            eprintln!("bench: {op} size={edge}: {:.3} ms/iter", ns / 1e6);
            entries.push(Entry {
                op,
                size: edge,
                threads: 1,
                ns_per_iter: ns,
                iters,
            });
        };
        let mut kernel_err: Option<genbase_util::Error> = None;
        // Captured kernel results feed the next conversion's input; the
        // macro keeps the cold/warm pairs visibly parallel.
        macro_rules! timed {
            ($op:expr, $body:expr) => {{
                let mut result = None;
                let ns = time_ns(iters, || match $body {
                    Ok(v) => result = Some(v),
                    Err(e) => {
                        kernel_err.get_or_insert(e);
                    }
                });
                push($op, ns);
                result
            }};
        }

        let triples = timed!("cache_triples_cold", {
            storage::triples_from_dense(&MemTracker::new(None), &dense, schema())
        });
        timed!("cache_triples_warm", {
            storage::triples_from_dense_cached(
                Some(&scope),
                &MemTracker::new(None),
                &dense,
                schema(),
            )
        });
        let Some(triples) = triples else {
            return Err(kernel_err.expect("cold triples failed without an error"));
        };

        timed!("cache_columnar_cold", {
            storage::columnar_from_relation(&MemTracker::new(None), &triples)
        });
        timed!("cache_columnar_warm", {
            storage::columnar_from_relation_cached(
                Some(&scope),
                (edge, edge),
                "bench",
                &MemTracker::new(None),
                &triples,
            )
        });

        timed!("cache_pivot_cold", {
            storage::pivot_dense(
                &triples.view(),
                (1, 0, 2),
                &patient_ids,
                &gene_ids,
                1,
                &MemTracker::new(None),
                &budget,
            )
        });
        timed!("cache_pivot_warm", {
            storage::pivot_dense_cached(
                Some(&scope),
                (edge, edge),
                &triples.view(),
                (1, 0, 2),
                &patient_ids,
                &gene_ids,
                1,
                &MemTracker::new(None),
                &budget,
            )
        });

        timed!("cache_chunked_cold", {
            storage::chunked_from_dense(&MemTracker::new(None), &dense, &budget)
        });
        timed!("cache_chunked_warm", {
            storage::chunked_from_dense_cached(
                Some(&scope),
                &MemTracker::new(None),
                &dense,
                &budget,
            )
        });

        match kernel_err {
            Some(e) => Err(e),
            None => Ok(entries),
        }
    }

    /// Loudly flag scaling rows recorded on a host that cannot scale: on a
    /// 1-core machine the threads-2/8 kernel rows and the sharded sweep
    /// row measure oversubscription overhead, not parallel speedup, so a
    /// "parallel slower than serial" reading there is a host artifact.
    pub fn warn_scaling_rows(entries: &[Entry]) {
        let host = host_threads();
        if host > 1 {
            return;
        }
        let mut affected: Vec<&str> = entries
            .iter()
            .filter(|e| e.threads > host)
            .map(|e| e.op)
            .collect();
        affected.dedup();
        if affected.is_empty() {
            return;
        }
        eprintln!(
            "bench: WARNING: this host has 1 hardware thread; the scaling rows \
             [{}] measure thread oversubscription, not parallel speedup. \
             Record scaling baselines on a multi-core host.",
            affected.join(", ")
        );
    }

    /// A parsed `--compare` baseline: the stamped host size plus
    /// `(op, threads) -> ns_per_iter`.
    pub struct Baseline {
        pub host_threads: usize,
        pub rows: Vec<(String, usize, f64)>,
    }

    /// Parse a committed `genbase-bench-v1` JSON baseline.
    pub fn load_baseline(path: &str) -> genbase_util::Result<Baseline> {
        use genbase_util::{Error, Json};
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::invalid(format!("read baseline {path}: {e}")))?;
        let json = Json::parse(&text)
            .map_err(|e| Error::invalid(format!("parse baseline {path}: {e}")))?;
        match json.get("schema").and_then(Json::as_str) {
            Some("genbase-bench-v1") => {}
            other => {
                return Err(Error::invalid(format!(
                    "baseline {path} has schema {other:?}, want \"genbase-bench-v1\""
                )))
            }
        }
        let entries = json
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::invalid(format!("baseline {path} has no entries array")))?;
        let mut rows = Vec::new();
        for e in entries {
            let op = e
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| Error::invalid(format!("baseline {path}: entry missing op")))?;
            let threads = e.get("threads").and_then(Json::as_u64).unwrap_or(1) as usize;
            let ns = e.get("ns_per_iter").and_then(Json::as_f64).ok_or_else(|| {
                Error::invalid(format!("baseline {path}: {op} missing ns_per_iter"))
            })?;
            rows.push((op.to_string(), threads, ns));
        }
        Ok(Baseline {
            host_threads: json.get("host_threads").and_then(Json::as_u64).unwrap_or(1) as usize,
            rows,
        })
    }

    /// Print the per-op speedup table against `baseline` and fail if any
    /// gated row regressed past `threshold_pct` percent of its baseline
    /// ns/iter. Two row classes are advisory (printed, never gating):
    /// wall-clock sweep rows (dataset generation dominates and is noisy)
    /// and scaling rows whose thread count exceeds this host's hardware
    /// threads (oversubscription, not scaling — see [`warn_scaling_rows`]).
    pub fn compare(
        baseline: &Baseline,
        entries: &[Entry],
        threshold_pct: f64,
    ) -> genbase_util::Result<()> {
        use genbase_util::Error;
        let host = host_threads();
        let limit = threshold_pct / 100.0;
        let mut matched = 0usize;
        let mut regressions: Vec<String> = Vec::new();
        println!(
            "{:<34} {:>7} {:>14} {:>14} {:>8}  verdict",
            "op", "threads", "baseline", "current", "speedup"
        );
        for e in entries {
            let Some((_, _, base_ns)) = baseline
                .rows
                .iter()
                .find(|(op, threads, _)| op.as_str() == e.op && *threads == e.threads)
            else {
                println!(
                    "{:<34} {:>7} {:>14} {:>14.3} {:>8}  new (no baseline row)",
                    e.op,
                    e.threads,
                    "-",
                    e.ns_per_iter / 1e6,
                    "-"
                );
                continue;
            };
            matched += 1;
            let ratio = e.ns_per_iter / base_ns;
            // A row is advisory when either side recorded it without the
            // cores to scale: such numbers are oversubscription overhead.
            let advisory =
                e.op.starts_with("sweep_") || e.threads > host || e.threads > baseline.host_threads;
            let verdict = if ratio <= limit {
                "ok"
            } else if advisory {
                "slow (advisory: wall-clock/oversubscribed row)"
            } else {
                regressions.push(format!(
                    "{} threads={} is {:.0}% of baseline (limit {:.0}%)",
                    e.op,
                    e.threads,
                    ratio * 100.0,
                    threshold_pct
                ));
                "REGRESSED"
            };
            println!(
                "{:<34} {:>7} {:>12.3}ms {:>12.3}ms {:>7.2}x  {verdict}",
                e.op,
                e.threads,
                base_ns / 1e6,
                e.ns_per_iter / 1e6,
                base_ns / e.ns_per_iter,
            );
        }
        if matched == 0 {
            return Err(Error::invalid(
                "bench --compare matched no baseline rows; wrong baseline file?",
            ));
        }
        if !regressions.is_empty() {
            return Err(Error::invalid(format!(
                "bench regression past --regress-threshold: {}",
                regressions.join("; ")
            )));
        }
        eprintln!("bench: compare ok ({matched} rows within {threshold_pct:.0}% of baseline)");
        Ok(())
    }

    /// Serialize through the shared `genbase_util::json` writer (one
    /// entry object per line, so committed baselines stay diff-friendly).
    pub fn to_json(size: usize, entries: &[Entry]) -> String {
        use genbase_util::Json;
        let host = host_threads();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"genbase-bench-v1\",\n");
        out.push_str(&format!("  \"bench_size\": {size},\n"));
        out.push_str(&format!("  \"host_threads\": {host},\n"));
        out.push_str("  \"entries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            let mut obj = Json::obj();
            obj.set("op", Json::from(e.op));
            obj.set("size", Json::from(e.size));
            obj.set("threads", Json::from(e.threads));
            obj.set("ns_per_iter", Json::Num(e.ns_per_iter.round()));
            obj.set("iters", Json::from(e.iters as u64));
            let comma = if i + 1 == entries.len() { "" } else { "," };
            out.push_str(&format!("    {}{comma}\n", obj.render()));
        }
        out.push_str("  ]\n}\n");
        out
    }
}
