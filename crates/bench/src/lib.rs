//! Shared helpers for the GenBase benchmark harness and Criterion benches.

use genbase::prelude::*;
use genbase_datagen::{generate, Dataset, GeneratorConfig, SizeSpec};

/// Bench-scale dataset: small enough for Criterion's repeated sampling,
/// large enough that engine differences are visible.
pub fn bench_dataset(genes: usize, patients: usize) -> Dataset {
    let spec = SizeSpec::custom(genes, patients, (genes / 12).max(8));
    generate(&GeneratorConfig::new(spec)).expect("generator cannot fail on valid spec")
}

/// Default Criterion dataset: 120 genes x 120 patients.
pub fn default_dataset() -> Dataset {
    bench_dataset(120, 120)
}

/// Run one engine/query pair to completion, panicking on error (benches
/// should fail loudly). Returns total reported seconds.
pub fn run_query(engine: &dyn Engine, query: Query, data: &Dataset, nodes: usize) -> f64 {
    let params = QueryParams::for_dataset(data);
    let ctx = ExecContext::multi_node(nodes);
    let report = engine
        .run(query, data, &params, &ctx)
        .unwrap_or_else(|e| panic!("{} / {query:?}: {e}", engine.name()));
    report.phases.total_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let data = bench_dataset(60, 50);
        assert_eq!(data.n_genes(), 60);
        let engine = engines::SciDb::new();
        let secs = run_query(&engine, Query::Regression, &data, 1);
        assert!(secs >= 0.0);
    }
}
