//! Figure 1: overall single-node performance of every system on every
//! query, at Criterion-friendly scale. The `paper_harness` binary runs the
//! full-size version with the paper's size ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genbase::prelude::*;
use genbase_bench::{default_dataset, run_query};

fn fig1(c: &mut Criterion) {
    let data = default_dataset();
    let engines = engines::single_node_engines();
    for query in Query::ALL {
        let mut group = c.benchmark_group(format!("fig1/{}", query.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_secs(2));
        for engine in &engines {
            if !engine.supports(query) {
                continue;
            }
            group.bench_function(BenchmarkId::from_parameter(engine.name()), |b| {
                b.iter(|| run_query(engine.as_ref(), query, &data, 1))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig1);
criterion_main!(benches);
