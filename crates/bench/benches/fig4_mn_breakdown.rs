//! Figure 4: multi-node regression phase breakdown (data management vs
//! analytics) per node count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genbase::prelude::*;
use genbase_bench::default_dataset;

fn fig4(c: &mut Criterion) {
    let data = default_dataset();
    let params = QueryParams::for_dataset(&data);
    let engines = engines::multi_node_engines();
    let mut group = c.benchmark_group("fig4/regression_phases");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for engine in &engines {
        for nodes in [1usize, 2, 4] {
            let ctx = ExecContext::multi_node(nodes);
            group.bench_function(BenchmarkId::new(engine.name(), nodes), |b| {
                b.iter(|| {
                    let report = engine
                        .run(Query::Regression, &data, &params, &ctx)
                        .expect("regression must complete at bench scale");
                    (
                        report.phases.data_management.total_secs(),
                        report.phases.analytics.total_secs(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
