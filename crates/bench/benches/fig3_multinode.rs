//! Figure 3: multi-node performance of the five cluster configurations as
//! node count grows (1, 2, 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genbase::prelude::*;
use genbase_bench::{default_dataset, run_query};

fn fig3(c: &mut Criterion) {
    let data = default_dataset();
    let engines = engines::multi_node_engines();
    // Regression is the one task every system finished in the paper.
    for query in [Query::Regression, Query::Covariance] {
        let mut group = c.benchmark_group(format!("fig3/{}", query.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_secs(2));
        for engine in &engines {
            if !engine.supports(query) {
                continue;
            }
            for nodes in [1usize, 2, 4] {
                group.bench_function(BenchmarkId::new(engine.name(), nodes), |b| {
                    b.iter(|| run_query(engine.as_ref(), query, &data, nodes))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig3);
criterion_main!(benches);
