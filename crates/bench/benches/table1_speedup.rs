//! Table 1: analytics-only comparison feeding the Phi speedup table —
//! measures the SciDB analytics phase that the roofline model scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genbase::figures::PHI_QUERIES;
use genbase::prelude::*;
use genbase_bench::default_dataset;

fn table1(c: &mut Criterion) {
    let data = default_dataset();
    let params = QueryParams::for_dataset(&data);
    let scidb = engines::SciDb::new();
    let mut group = c.benchmark_group("table1/analytics_phase");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for query in PHI_QUERIES {
        for nodes in [1usize, 2, 4] {
            let ctx = ExecContext::multi_node(nodes);
            group.bench_function(BenchmarkId::new(query.name(), nodes), |b| {
                b.iter(|| {
                    let report = scidb
                        .run(query, &data, &params, &ctx)
                        .expect("scidb completes at bench scale");
                    report.phases.analytics.total_secs()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
