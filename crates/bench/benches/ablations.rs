//! Ablation benches for the design choices called out in DESIGN.md §8:
//! blocked vs naive matmul, Lanczos vs dense Jacobi, row vs column filters,
//! CSV export vs in-process handoff, and the array chunk-size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genbase_linalg::{
    gram, jacobi_eigen, lanczos_topk,
    matmul::{matmul_blocked, matmul_naive},
    DenseSymOp, ExecOpts, Matrix,
};
use genbase_util::{Budget, Pcg64};

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = Pcg64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.normal())
}

fn ablation_matmul(c: &mut Criterion) {
    let a = random_matrix(1, 192, 192);
    let b = random_matrix(2, 192, 192);
    let opts = ExecOpts::serial();
    let mut group = c.benchmark_group("ablation/matmul");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("naive_ijk", |bch| {
        bch.iter(|| matmul_naive(&a, &b, &opts).unwrap())
    });
    group.bench_function("blocked", |bch| {
        bch.iter(|| matmul_blocked(&a, &b, &opts).unwrap())
    });
    group.finish();
}

fn ablation_eigensolver(c: &mut Criterion) {
    let a = random_matrix(3, 200, 80);
    let g = gram(&a, &ExecOpts::serial()).unwrap();
    let mut group = c.benchmark_group("ablation/eigensolver_top10");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("lanczos", |bch| {
        bch.iter(|| {
            let op = DenseSymOp::new(&g).unwrap();
            lanczos_topk(&op, 10, 0, 7, &ExecOpts::serial()).unwrap()
        })
    });
    group.bench_function("jacobi_full", |bch| bch.iter(|| jacobi_eigen(&g).unwrap()));
    group.finish();
}

fn ablation_rsvd(c: &mut Criterion) {
    // Paper section 6.3: approximate algorithms as the route to the XL
    // dataset. Exact Lanczos vs the randomized range finder at equal k.
    use genbase_linalg::{randomized_gram_eigen, GramOp, RsvdConfig};
    let a = random_matrix(9, 400, 160);
    let mut group = c.benchmark_group("ablation/svd_top10_400x160");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("lanczos_exact", |bch| {
        bch.iter(|| {
            let op = GramOp::new(&a);
            genbase_linalg::lanczos_topk(&op, 10, 0, 7, &ExecOpts::serial()).unwrap()
        })
    });
    group.bench_function("randomized_approx", |bch| {
        bch.iter(|| randomized_gram_eigen(&a, &RsvdConfig::new(10), &ExecOpts::serial()).unwrap())
    });
    group.finish();
}

fn ablation_filter(c: &mut Criterion) {
    use genbase_relational::{ColumnTable, DataType, Pred, RowTable, Schema, Value};
    let schema = Schema::new(&[
        ("id", DataType::Int),
        ("age", DataType::Int),
        ("gender", DataType::Int),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..100_000)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(18 + (i * 7) % 70),
                Value::Int(i % 2),
            ]
        })
        .collect();
    let row_table = RowTable::from_rows(schema.clone(), rows.clone()).unwrap();
    let col_table = ColumnTable::from_rows(schema, rows).unwrap();
    let pred = Pred::IntEq(2, 1).and(Pred::IntLt(1, 40));
    let budget = Budget::unlimited();
    let mut group = c.benchmark_group("ablation/filter_100k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("row_store_tuple_at_a_time", |bch| {
        bch.iter(|| row_table.filter(&pred, &budget).unwrap().n_rows())
    });
    group.bench_function("column_store_vectorized", |bch| {
        bch.iter(|| col_table.filter(&pred, &budget).unwrap().n_rows())
    });
    group.finish();
}

fn ablation_export(c: &mut Criterion) {
    use genbase_util::csv;
    let m = random_matrix(5, 200, 200);
    let mut group = c.benchmark_group("ablation/bridge_200x200");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("csv_export_reimport", |bch| {
        bch.iter(|| {
            let text = csv::write_matrix(m.data(), m.rows(), m.cols());
            csv::parse_matrix(&text).unwrap().0.len()
        })
    });
    group.bench_function("in_process_handoff", |bch| {
        bch.iter(|| m.clone().into_data().len())
    });
    group.finish();
}

fn ablation_chunks(c: &mut Criterion) {
    use genbase_array::Array2D;
    let m = random_matrix(6, 512, 512);
    let budget = Budget::unlimited();
    let rows: Vec<usize> = (0..512).step_by(3).collect();
    let cols: Vec<usize> = (0..512).step_by(2).collect();
    let mut group = c.benchmark_group("ablation/array_chunk_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for chunk in [32usize, 128, 512] {
        let arr = Array2D::from_matrix_chunked(&m, chunk, chunk, &budget).unwrap();
        group.bench_function(BenchmarkId::from_parameter(chunk), |bch| {
            bch.iter(|| {
                arr.select(&rows, &cols, &budget)
                    .unwrap()
                    .to_matrix(&budget)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_matmul,
    ablation_eigensolver,
    ablation_rsvd,
    ablation_filter,
    ablation_export,
    ablation_chunks
);
criterion_main!(benches);
