//! Figure 2: the regression query's data-management and analytics phases,
//! measured separately per system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genbase::prelude::*;
use genbase_bench::default_dataset;

fn fig2(c: &mut Criterion) {
    let data = default_dataset();
    let params = QueryParams::for_dataset(&data);
    let ctx = ExecContext::single_node();
    let engines = engines::single_node_engines();
    let mut group = c.benchmark_group("fig2/regression_phases");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for engine in &engines {
        group.bench_function(BenchmarkId::from_parameter(engine.name()), |b| {
            b.iter(|| {
                let report = engine
                    .run(Query::Regression, &data, &params, &ctx)
                    .expect("regression must complete at bench scale");
                (
                    report.phases.data_management.total_secs(),
                    report.phases.analytics.total_secs(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
