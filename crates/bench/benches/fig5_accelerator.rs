//! Figure 5: SciDB vs SciDB + (modeled) Xeon Phi coprocessor on the four
//! offloadable queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genbase::figures::PHI_QUERIES;
use genbase::prelude::*;
use genbase_bench::{default_dataset, run_query};

fn fig5(c: &mut Criterion) {
    let data = default_dataset();
    let scidb = engines::SciDb::new();
    let phi = engines::SciDbPhi::new();
    for query in PHI_QUERIES {
        let mut group = c.benchmark_group(format!("fig5/{}", query.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.bench_function(BenchmarkId::from_parameter("SciDB"), |b| {
            b.iter(|| run_query(&scidb, query, &data, 1))
        });
        group.bench_function(BenchmarkId::from_parameter("SciDB+Phi"), |b| {
            b.iter(|| run_query(&phi, query, &data, 1))
        });
        group.finish();
    }
}

criterion_group!(benches, fig5);
criterion_main!(benches);
