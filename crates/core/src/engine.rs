//! The engine abstraction and execution context.

use crate::query::{Query, QueryParams};
use crate::report::QueryReport;
use genbase_cluster::NetModel;
use genbase_datagen::Dataset;
use genbase_util::{Budget, Result};

/// Morsel-driven streaming configuration (`--stream`): engines whose
/// lowerings support it pull fixed-row batches through their plan pipeline
/// instead of materializing intermediates. Output is bit-identical to the
/// materializing path at every batch size and thread count; only the trace's
/// memory dimension (`peak_alloc`, `batches`, `spill_bytes`) changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Rows per morsel (`--batch-rows`).
    pub batch_rows: usize,
    /// Directory for spill files (`--spill-dir`); system temp when `None`.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Fuse the streaming operators into one pass per morsel with
    /// selection vectors (`--fused`); `false` runs the staged path where
    /// every operator replays the reel itself.
    pub fused: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batch_rows: genbase_storage::DEFAULT_BATCH_ROWS,
            spill_dir: None,
            fused: false,
        }
    }
}

/// Execution context shared by all engines for one run.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Execution thread budget for this run's kernels. The sweep scheduler
    /// shrinks this per cell (`config.threads / cells_in_flight`) so
    /// concurrent cells share the pool fairly.
    pub threads: usize,
    /// Hardware threads of the *simulated machine*. Engine cost models
    /// (e.g. Hadoop's map/reduce task slots) must size from this, never
    /// from `threads`: the scheduler's per-cell budget is a scheduling
    /// artifact, and letting it leak into simulated costs would make sweep
    /// results depend on `--jobs`.
    pub sim_threads: usize,
    /// Number of cluster nodes (1 = single-node run).
    pub nodes: usize,
    /// Wall-clock cutoff (the paper's two-hour window, scaled).
    pub cutoff: Option<std::time::Duration>,
    /// Simulated memory available to *in-memory* runtimes (vanilla R and
    /// the R side of export bridges). `None` = unlimited. Disk-backed
    /// engines ignore it. Scaled from the paper's 48 GB machines.
    pub r_mem_bytes: Option<u64>,
    /// Storage-layer working-set budget per cell (`--mem-budget`), enforced
    /// by the [`genbase_storage::MemTracker`] every engine registers its
    /// working sets with. `None` = unlimited. Exhaustion is a traced
    /// "infinite" cell outcome, not an abort. Distinct from `r_mem_bytes`,
    /// which models the *simulated machine's* R heap.
    pub mem_budget: Option<u64>,
    /// Morsel-driven streaming mode (`--stream`). `None` = materializing
    /// lowerings everywhere. Engines without a streaming lowering ignore it.
    pub stream: Option<StreamConfig>,
    /// Inter-node network model.
    pub net: NetModel,
    /// Deterministic-timing mode (the harness's `TimingMode::SimOnly`):
    /// model components normally derived from *measured* wall time must
    /// use zero measured time instead, so simulated costs depend only on
    /// the workload, never the host.
    pub deterministic: bool,
    /// Intra-cell checkpoint sink for long iterative kernels. Single-node
    /// in-memory engines and SciDB thread it into their kernel `ExecOpts`;
    /// engines that run the same kernel concurrently per node (MadlibNest,
    /// Hadoop) leave it unused — interleaved same-key saves would corrupt
    /// the snapshot stream.
    pub progress: Option<genbase_util::ProgressHandle>,
    /// Artifact cache scope for this run (`--cache-budget`): conversion
    /// kernels memoize their outputs here, keyed under the config
    /// fingerprint the scope was derived from. `None` = cold every run.
    /// Cache hits replay the cold path's accounting exactly, so attaching
    /// a scope never changes a cell's output or trace bytes.
    pub cache: Option<genbase_storage::CacheScope>,
}

/// R's per-object allocation limit: 2^31 - 1 cells.
pub const R_CELL_LIMIT: u64 = (1 << 31) - 1;

impl ExecContext {
    /// Single-node context using all cores, unlimited budget.
    pub fn single_node() -> ExecContext {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ExecContext {
            threads,
            sim_threads: threads,
            nodes: 1,
            cutoff: None,
            r_mem_bytes: None,
            mem_budget: None,
            stream: None,
            net: NetModel::gigabit(),
            deterministic: false,
            progress: None,
            cache: None,
        }
    }

    /// The storage-layer allocation tracker for one run under this context
    /// (fresh per run; carries the `--mem-budget` limit when set).
    pub fn mem_tracker(&self) -> genbase_storage::MemTracker {
        genbase_storage::MemTracker::new(self.mem_budget)
    }

    /// Multi-node context over `nodes` simulated machines.
    pub fn multi_node(nodes: usize) -> ExecContext {
        ExecContext {
            nodes: nodes.max(1),
            ..Self::single_node()
        }
    }

    /// Replace the cutoff.
    pub fn with_cutoff(mut self, cutoff: std::time::Duration) -> ExecContext {
        self.cutoff = Some(cutoff);
        self
    }

    /// Budget for disk-backed engine work: cutoff only.
    pub fn db_budget(&self) -> Budget {
        Budget::new(self.cutoff, u64::MAX, u64::MAX)
    }

    /// Budget for in-memory R-style runtimes: cutoff, the scaled machine
    /// memory, and R's 2^31-1 cells-per-object limit.
    pub fn r_budget(&self) -> Budget {
        Budget::new(
            self.cutoff,
            self.r_mem_bytes.unwrap_or(u64::MAX),
            R_CELL_LIMIT,
        )
    }

    /// Threads available to each node (nodes share the physical machine in
    /// this reproduction, so per-node compute shrinks as nodes grow — see
    /// DESIGN.md substitution 2).
    pub fn threads_per_node(&self) -> usize {
        (self.threads / self.nodes).max(1)
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::single_node()
    }
}

/// A benchmark system configuration.
pub trait Engine: Sync {
    /// Display name (matches the paper's chart legends).
    fn name(&self) -> &'static str;

    /// Whether the engine has the functionality for `query` (the paper
    /// omits bars for missing functionality, e.g. biclustering on Hadoop).
    fn supports(&self, query: Query) -> bool {
        let _ = query;
        true
    }

    /// Maximum cluster size the engine can use (1 = single-node only).
    fn max_nodes(&self) -> usize {
        1
    }

    /// Execute one query end to end, returning the output and the
    /// data-management/analytics phase split. Ingest (loading the dataset
    /// into the engine's native storage) is *not* timed, matching the
    /// paper's methodology of timing queries against loaded data.
    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport>;
}

/// Stopwatch helper measuring one phase's wall seconds.
pub(crate) struct PhaseClock {
    start: std::time::Instant,
}

impl PhaseClock {
    pub(crate) fn start() -> PhaseClock {
        PhaseClock {
            start: std::time::Instant::now(),
        }
    }

    /// Elapsed seconds since start (does not reset).
    pub(crate) fn secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_defaults() {
        let ctx = ExecContext::default();
        assert_eq!(ctx.nodes, 1);
        assert!(ctx.threads >= 1);
        assert_eq!(ctx.threads_per_node(), ctx.threads);
        assert!(ctx.db_budget().check("x").is_ok());
    }

    #[test]
    fn r_budget_enforces_machine_memory() {
        let mut ctx = ExecContext::single_node();
        ctx.r_mem_bytes = Some(1000);
        let b = ctx.r_budget();
        assert!(b.alloc(2000, 10).is_err());
        assert!(b.alloc(500, 10).is_ok());
        // Cell limit applies even with memory to spare.
        assert!(ctx.r_budget().alloc(8, 1 << 31).is_err());
    }

    #[test]
    fn threads_split_across_nodes() {
        let mut ctx = ExecContext::multi_node(4);
        ctx.threads = 12;
        assert_eq!(ctx.threads_per_node(), 3);
        ctx.threads = 2;
        assert_eq!(ctx.threads_per_node(), 1);
    }

    #[test]
    fn phase_clock_monotone() {
        let c = PhaseClock::start();
        let a = c.secs();
        let b = c.secs();
        assert!(b >= a);
    }
}
