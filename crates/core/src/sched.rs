//! Sharded benchmark scheduler.
//!
//! The paper's evaluation is a sweep over (engine × dataset-scale × query ×
//! nodes) cells. The serial harness runs them one at a time; this module
//! decomposes every figure into independent [`CellKey`] work units and
//! dispatches them onto the shared `genbase_util::runtime` pool, so
//! inter-cell and intra-kernel parallelism compose under one thread budget
//! (`HarnessConfig.threads` split across `cells_in_flight` concurrent
//! cells, remainder to each cell's kernels — no oversubscription).
//!
//! Determinism: cells report into a fixed-order [`ReportGrid`] keyed by
//! cell id; figure rendering is a pure function of the grid, so fig1–fig5 /
//! table1 output is **byte-identical** between the serial path and any
//! sharded/parallel execution (pinned by `tests/sched_determinism.rs`).
//! Under [`TimingMode::SimOnly`](crate::harness::TimingMode) the grid
//! itself is deterministic, so independent runs — including CI shard
//! fan-out via `--shards N --shard-id I` — agree byte for byte.
//!
//! Resumability: with a checkpoint path, the grid is persisted as JSON
//! after every completed cell (write-to-temp + rename); an interrupted
//! sweep resumes by loading the checkpoint and running only missing cells.

use crate::engine::Engine;
use crate::engines;
use crate::figures;
use crate::harness::{Harness, HarnessConfig};
use crate::plan::OpTrace;
use crate::query::Query;
use crate::report::{PhaseTimes, RunOutcome};
use genbase_datagen::SizeClass;
use genbase_util::{parallel_map, CostReport, Error, Json, Result};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The six paper exhibits the scheduler can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    /// Figure 1: single-node overall performance.
    Fig1,
    /// Figure 2: single-node regression phase breakdown.
    Fig2,
    /// Figure 3: multi-node overall performance.
    Fig3,
    /// Figure 4: multi-node regression phase breakdown.
    Fig4,
    /// Figure 5: SciDB vs SciDB + Xeon Phi.
    Fig5,
    /// Table 1: Phi analytics speedup per node count.
    Table1,
}

impl FigureId {
    /// All exhibits in paper order.
    pub const ALL: [FigureId; 6] = [
        FigureId::Fig1,
        FigureId::Fig2,
        FigureId::Fig3,
        FigureId::Fig4,
        FigureId::Fig5,
        FigureId::Table1,
    ];

    /// Stable identifier (cell keys, CLI).
    pub fn name(self) -> &'static str {
        match self {
            FigureId::Fig1 => "fig1",
            FigureId::Fig2 => "fig2",
            FigureId::Fig3 => "fig3",
            FigureId::Fig4 => "fig4",
            FigureId::Fig5 => "fig5",
            FigureId::Table1 => "table1",
        }
    }

    /// Inverse of [`FigureId::name`].
    pub fn from_name(name: &str) -> Option<FigureId> {
        FigureId::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// One independent unit of sweep work: run `query` on `engine` against the
/// `size` dataset over `nodes` simulated nodes, for exhibit `figure`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Exhibit this cell belongs to (fig2's regression cells are distinct
    /// work from fig1's, exactly as in the serial harness).
    pub figure: FigureId,
    /// Query to execute.
    pub query: Query,
    /// Dataset size class.
    pub size: SizeClass,
    /// Simulated cluster size.
    pub nodes: usize,
    /// Engine display name (resolved through the engine registry).
    pub engine: String,
}

impl CellKey {
    /// Stable string id, e.g. `fig1/covariance/small/n1/SciDB`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/n{}/{}",
            self.figure.name(),
            self.query.name(),
            self.size.slug(),
            self.nodes,
            self.engine
        )
    }

    /// Serialize for the coordinator wire protocol (explicit fields, not
    /// the display id, so no parsing of engine names containing `/`).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("figure", Json::from(self.figure.name()));
        obj.set("query", Json::from(self.query.name()));
        obj.set("size", Json::from(self.size.slug()));
        obj.set("nodes", Json::from(self.nodes));
        obj.set("engine", Json::from(self.engine.as_str()));
        obj
    }

    /// Inverse of [`CellKey::to_json`].
    pub fn from_json(value: &Json) -> Result<CellKey> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| Error::invalid(format!("cell key missing {name}")))
        };
        Ok(CellKey {
            figure: FigureId::from_name(field("figure")?)
                .ok_or_else(|| Error::invalid("cell key: unknown figure"))?,
            query: Query::from_name(field("query")?)
                .ok_or_else(|| Error::invalid("cell key: unknown query"))?,
            size: SizeClass::from_slug(field("size")?)
                .ok_or_else(|| Error::invalid("cell key: unknown size"))?,
            nodes: value
                .get("nodes")
                .and_then(Json::as_u64)
                .ok_or_else(|| Error::invalid("cell key missing nodes"))?
                as usize,
            engine: field("engine")?.to_string(),
        })
    }
}

/// The slimmed, serializable outcome of one cell — exactly what figure
/// rendering needs (phase costs or failure class), without the full typed
/// query output.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Finished within budget, with the paper's phase split.
    Completed {
        /// Data-management phase costs.
        dm: CostReport,
        /// Analytics phase costs.
        an: CostReport,
        /// Per-operator plan trace the phases roll up from — carried
        /// through grid files and the coordinator wire protocol so
        /// per-op breakdowns survive sharded and distributed sweeps.
        trace: Vec<OpTrace>,
    },
    /// Cutoff or memory failure (the paper's "infinite" bars).
    Infinite {
        /// What gave out.
        reason: String,
    },
    /// The engine lacks the functionality (no bar in the paper).
    Unsupported,
}

impl CellOutcome {
    /// Convert a harness outcome, dropping the typed query output.
    pub fn from_run(outcome: &RunOutcome) -> CellOutcome {
        match outcome {
            RunOutcome::Completed(r) => CellOutcome::Completed {
                dm: r.phases.data_management,
                an: r.phases.analytics,
                trace: r.trace.ops.clone(),
            },
            RunOutcome::Infinite { reason } => CellOutcome::Infinite {
                reason: reason.clone(),
            },
            RunOutcome::Unsupported => CellOutcome::Unsupported,
        }
    }

    /// The phase split for completed cells.
    pub fn phases(&self) -> Option<PhaseTimes> {
        match self {
            CellOutcome::Completed { dm, an, .. } => Some(PhaseTimes {
                data_management: *dm,
                analytics: *an,
            }),
            _ => None,
        }
    }

    /// The per-operator trace for completed cells.
    pub fn trace(&self) -> Option<&[OpTrace]> {
        match self {
            CellOutcome::Completed { trace, .. } => Some(trace),
            _ => None,
        }
    }

    /// Table-cell text, identical to [`RunOutcome::cell`].
    pub fn cell(&self) -> String {
        match self {
            CellOutcome::Completed { .. } => {
                genbase_util::fmt_secs(self.phases().expect("completed").total_secs())
            }
            CellOutcome::Infinite { .. } => "inf".to_string(),
            CellOutcome::Unsupported => "-".to_string(),
        }
    }

    /// Serialize (grid files, wire protocol).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        match self {
            CellOutcome::Completed { dm, an, trace } => {
                obj.set("status", Json::from("completed"));
                for (name, cost) in [("dm", dm), ("an", an)] {
                    obj.set(
                        name,
                        Json::Arr(vec![
                            Json::Num(cost.wall_secs),
                            Json::Num(cost.sim_secs),
                            Json::from(cost.sim_bytes),
                        ]),
                    );
                }
                obj.set(
                    "trace",
                    Json::Arr(trace.iter().map(OpTrace::to_json).collect()),
                );
            }
            CellOutcome::Infinite { reason } => {
                obj.set("status", Json::from("infinite"));
                obj.set("reason", Json::from(reason.as_str()));
            }
            CellOutcome::Unsupported => {
                obj.set("status", Json::from("unsupported"));
            }
        }
        obj
    }

    /// Inverse of [`CellOutcome::to_json`].
    pub fn from_json(value: &Json) -> Result<CellOutcome> {
        let status = value
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::invalid("cell outcome missing status"))?;
        match status {
            "completed" => {
                let cost = |name: &str| -> Result<CostReport> {
                    let arr = value
                        .get(name)
                        .and_then(Json::as_arr)
                        .filter(|a| a.len() == 3)
                        .ok_or_else(|| Error::invalid(format!("bad {name} cost")))?;
                    // Strict: a malformed entry must fail the load, not
                    // silently render as a zero-cost cell.
                    let bad = || Error::invalid(format!("non-numeric {name} cost"));
                    Ok(CostReport {
                        wall_secs: arr[0].as_f64().ok_or_else(bad)?,
                        sim_secs: arr[1].as_f64().ok_or_else(bad)?,
                        sim_bytes: arr[2].as_u64().ok_or_else(bad)?,
                    })
                };
                // Absent in pre-trace grid files: those load as traceless
                // cells (figures only need the phase split).
                let trace = match value.get("trace").and_then(Json::as_arr) {
                    Some(items) => items
                        .iter()
                        .map(OpTrace::from_json)
                        .collect::<Result<Vec<OpTrace>>>()?,
                    None => Vec::new(),
                };
                Ok(CellOutcome::Completed {
                    dm: cost("dm")?,
                    an: cost("an")?,
                    trace,
                })
            }
            "infinite" => Ok(CellOutcome::Infinite {
                reason: value
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            "unsupported" => Ok(CellOutcome::Unsupported),
            other => Err(Error::invalid(format!("unknown cell status {other:?}"))),
        }
    }
}

/// Fixed-order collection of cell outcomes; the single source every figure
/// renders from. Keys sort lexicographically by cell id, so serialization
/// is deterministic regardless of completion order. A grid optionally
/// carries a configuration fingerprint (scale/seed/timing) so checkpoints
/// and shard files from mismatched runs are rejected instead of silently
/// mixing outcomes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportGrid {
    cells: BTreeMap<String, CellOutcome>,
    fingerprint: Option<String>,
    /// Intra-cell progress snapshots (cell id → {kernel → state}), carried
    /// by coordinator checkpoints so a re-issued cell resumes mid-iteration.
    /// Cleared per cell on [`ReportGrid::insert`]; never serialized once
    /// empty, so finished grids are byte-identical to pre-progress ones.
    progress: BTreeMap<String, Json>,
}

/// The configuration facets that change cell outcomes: anything differing
/// here makes grids incomparable. The cutoff only matters in Measured mode
/// (SimOnly disables it), so two SimOnly runs with different `--cutoff`
/// flags still compare equal.
///
/// `threads` is included because it is the *simulated machine size*:
/// `ExecContext.sim_threads` feeds Hadoop's task-slot count (and with it
/// the simulated shuffle costs), so hosts with different core counts
/// produce different grids even under SimOnly. Cross-machine runs — file
/// shards or coordinator workers — must pin `--threads` explicitly; the
/// per-cell `--jobs` *budget* deliberately stays out of the fingerprint
/// (kernels are bit-identical across thread budgets).
pub fn config_fingerprint(config: &HarnessConfig) -> String {
    let cutoff = match config.timing {
        crate::harness::TimingMode::Measured => format!("{}", config.cutoff.as_secs_f64()),
        crate::harness::TimingMode::SimOnly => "off".to_string(),
    };
    // `--mem-budget` changes cell outcomes, so a set budget is part of the
    // fingerprint — but only when set: the unlimited default keeps the
    // pre-memory-accounting fingerprint string, so existing checkpoint and
    // grid files still load.
    let mem_budget = match config.mem_budget {
        Some(bytes) => format!(";membudget={bytes}"),
        None => String::new(),
    };
    // Streaming mode changes the trace's memory dimension (batches, spill,
    // peak), so cells from streaming and materializing runs must not merge.
    // `batch_rows` and the staged/fused split are semantic; the spill
    // directory is not. Same append-only-when-set pattern as `membudget`
    // for file compatibility.
    let stream = match &config.stream {
        Some(s) => format!(
            ";stream=batch{}{}",
            s.batch_rows,
            if s.fused { "+fused" } else { "" }
        ),
        None => String::new(),
    };
    format!(
        "scale={};seed={};timing={:?};rmem={};cutoff={cutoff};simthreads={}{mem_budget}{stream}",
        config.scale,
        config.seed,
        config.timing,
        config.r_mem_bytes,
        config.threads.max(1)
    )
}

/// Grid / checkpoint file schema tag.
pub const GRID_SCHEMA: &str = "genbase-grid-v1";

impl ReportGrid {
    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Record a cell outcome (and drop any intra-cell progress for it —
    /// a completed cell needs no resume state).
    pub fn insert(&mut self, key: &CellKey, outcome: CellOutcome) {
        let id = key.id();
        self.progress.remove(&id);
        self.cells.insert(id, outcome);
    }

    /// Record an intra-cell progress snapshot for one kernel of `cell_id`.
    pub fn set_progress(&mut self, cell_id: &str, kernel: &str, state: Json) {
        self.progress
            .entry(cell_id.to_string())
            .or_insert_with(Json::obj)
            .set(kernel, state);
    }

    /// The saved progress object ({kernel → state}) for a cell, if any.
    pub fn progress_for(&self, cell_id: &str) -> Option<&Json> {
        self.progress.get(cell_id)
    }

    /// Look up a cell.
    pub fn get(&self, key: &CellKey) -> Option<&CellOutcome> {
        self.cells.get(&key.id())
    }

    /// Whether a cell is recorded.
    pub fn contains(&self, key: &CellKey) -> bool {
        self.cells.contains_key(&key.id())
    }

    /// Recorded cell ids in sorted order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// The configuration fingerprint, if stamped.
    pub fn fingerprint(&self) -> Option<&str> {
        self.fingerprint.as_deref()
    }

    /// Stamp the grid with its producing configuration.
    pub fn set_fingerprint(&mut self, fingerprint: String) {
        self.fingerprint = Some(fingerprint);
    }

    /// Fold `other` in. Fingerprints (when both stamped) and overlapping
    /// ids must agree (shards are disjoint by construction; a conflict
    /// means mismatched runs were mixed).
    pub fn merge(&mut self, other: ReportGrid) -> Result<()> {
        match (&self.fingerprint, &other.fingerprint) {
            (Some(a), Some(b)) if a != b => {
                return Err(Error::invalid(format!(
                    "grid merge refused: config fingerprints differ ({a} vs {b})"
                )))
            }
            (None, Some(b)) => self.fingerprint = Some(b.clone()),
            _ => {}
        }
        for (id, outcome) in other.cells {
            if let Some(have) = self.cells.get(&id) {
                if *have != outcome {
                    return Err(Error::invalid(format!(
                        "grid merge conflict on cell {id}: differing outcomes"
                    )));
                }
            }
            self.cells.insert(id, outcome);
        }
        Ok(())
    }

    /// Serialize deterministically.
    pub fn to_json(&self) -> String {
        let mut cells = Json::obj();
        for (id, outcome) in &self.cells {
            cells.set(id, outcome.to_json());
        }
        let mut doc = Json::obj();
        doc.set("schema", Json::from(GRID_SCHEMA));
        if let Some(fp) = &self.fingerprint {
            doc.set("config", Json::from(fp.as_str()));
        }
        doc.set("cells", cells);
        if !self.progress.is_empty() {
            let mut progress = Json::obj();
            for (id, state) in &self.progress {
                progress.set(id, state.clone());
            }
            doc.set("progress", progress);
        }
        doc.render()
    }

    /// Parse a serialized grid.
    pub fn from_json(text: &str) -> Result<ReportGrid> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(GRID_SCHEMA) => {}
            other => {
                return Err(Error::invalid(format!(
                    "unexpected grid schema {other:?} (want {GRID_SCHEMA})"
                )))
            }
        }
        let mut grid = ReportGrid {
            fingerprint: doc.get("config").and_then(Json::as_str).map(str::to_string),
            ..ReportGrid::default()
        };
        let pairs = doc
            .get("cells")
            .and_then(Json::as_obj)
            .ok_or_else(|| Error::invalid("grid missing cells object"))?;
        for (id, value) in pairs {
            grid.cells
                .insert(id.clone(), CellOutcome::from_json(value)?);
        }
        if let Some(pairs) = doc.get("progress").and_then(Json::as_obj) {
            for (id, state) in pairs {
                grid.progress.insert(id.clone(), state.clone());
            }
        }
        Ok(grid)
    }

    /// Load a grid file.
    pub fn load(path: &Path) -> Result<ReportGrid> {
        genbase_util::faults::hit("checkpoint.load")
            .map_err(|e| Error::invalid(format!("read {}: {e}", path.display())))?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::invalid(format!("read {}: {e}", path.display())))?;
        ReportGrid::from_json(&text)
    }

    /// Load a grid file, falling back to the last-good `.bak` rotated by
    /// `save_text` when the primary is torn or truncated (a writer died
    /// mid-write). Returns the grid plus a human-readable note when
    /// recovery happened.
    pub fn load_with_recovery(path: &Path) -> Result<(ReportGrid, Option<String>)> {
        let primary = ReportGrid::load(path);
        match primary {
            Ok(grid) => Ok((grid, None)),
            Err(first) => {
                let bak = path.with_extension("bak");
                if !bak.exists() {
                    return Err(first);
                }
                let grid = ReportGrid::load(&bak).map_err(|second| {
                    Error::invalid(format!(
                        "checkpoint {} unreadable ({first}) and so is its backup ({second})",
                        path.display()
                    ))
                })?;
                let note = format!(
                    "checkpoint {} was torn ({first}); recovered {} cells from {}",
                    path.display(),
                    grid.len(),
                    bak.display()
                );
                Ok((grid, Some(note)))
            }
        }
    }

    /// Persist atomically (write temp file, then rename), so a sweep killed
    /// mid-write never corrupts its checkpoint.
    pub fn save(&self, path: &Path) -> Result<()> {
        save_text(path, &self.to_json(), 0)
    }
}

/// Atomic file write: temp file (tagged, so concurrent writers never share
/// one) then rename over the target, rotating the previous file to `.bak`
/// first so a reader always has one last-good generation to fall back on.
pub(crate) fn save_text(path: &Path, text: &str, tag: usize) -> Result<()> {
    // Fault site: a `torn:<n>` rule here clobbers the target with a prefix
    // of the new content and fails, exactly like a writer crashing mid-way
    // through a non-atomic write. Recovery must come from the `.bak`.
    match genbase_util::faults::write_action("checkpoint.write") {
        Ok(None) => {}
        Ok(Some(n)) => {
            let torn = &text[..n.min(text.len())];
            let _ = std::fs::write(path, torn);
            return Err(Error::invalid(format!(
                "write {}: injected torn write after {n} bytes",
                path.display()
            )));
        }
        Err(e) => {
            return Err(Error::invalid(format!("write {}: {e}", path.display())));
        }
    }
    let tmp = path.with_extension(format!("tmp{tag}"));
    std::fs::write(&tmp, text)
        .map_err(|e| Error::invalid(format!("write {}: {e}", tmp.display())))?;
    // Rotate the current generation to `.bak` before replacing it.
    // Best-effort: parallel local sweeps have concurrent writers racing on
    // the same target, and a missing backup only weakens recovery.
    if path.exists() {
        let _ = std::fs::rename(path, path.with_extension("bak"));
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| Error::invalid(format!("rename {}: {e}", path.display())))?;
    Ok(())
}

/// How a sweep is split and dispatched.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Total shards the cell list is split across (round-robin by index).
    pub shards: usize,
    /// This run's shard (0-based).
    pub shard_id: usize,
    /// Cells executing concurrently; `HarnessConfig.threads` is divided
    /// between them so kernels and scheduler never oversubscribe.
    pub cells_in_flight: usize,
    /// Checkpoint file: loaded (if present) to skip completed cells,
    /// rewritten after every completion.
    pub checkpoint: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            shards: 1,
            shard_id: 0,
            cells_in_flight: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            checkpoint: None,
        }
    }
}

impl SweepOptions {
    /// Serial execution (one cell at a time, full thread budget per cell).
    pub fn serial() -> SweepOptions {
        SweepOptions {
            cells_in_flight: 1,
            ..Default::default()
        }
    }

    /// With `n` cells in flight.
    pub fn with_cells_in_flight(mut self, n: usize) -> SweepOptions {
        self.cells_in_flight = n.max(1);
        self
    }

    /// Run shard `id` of `n`.
    pub fn with_shard(mut self, n: usize, id: usize) -> SweepOptions {
        self.shards = n.max(1);
        self.shard_id = id;
        self
    }

    /// Checkpoint to (and resume from) `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> SweepOptions {
        self.checkpoint = Some(path.into());
        self
    }
}

/// What a sweep did, plus the grid to render from.
#[derive(Debug)]
pub struct SweepOutcome {
    /// All outcomes for this shard (including checkpoint-restored cells).
    pub grid: ReportGrid,
    /// Cells planned for this shard.
    pub planned: usize,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells skipped because the checkpoint already had them.
    pub skipped: usize,
    /// Sweep wall-clock seconds (dataset generation + all cells).
    pub wall_secs: f64,
    /// Human-readable note when the checkpoint was recovered from its
    /// `.bak` (torn primary file).
    pub recovered: Option<String>,
}

/// Observer/failure hook invoked before each cell executes. Returning an
/// error marks the cell failed without running it — the mechanism
/// `tests/failure_injection.rs` uses to simulate a killed sweep.
pub type CellHook = dyn Fn(&CellKey) -> Result<()> + Send + Sync;

/// The sweep driver: a pool-backed [`Harness`] plus the engine registry.
pub struct Scheduler {
    harness: Harness,
    engines: Vec<Box<dyn Engine>>,
    hook: Option<Box<CellHook>>,
}

impl Scheduler {
    /// Scheduler over a fresh pool-backed harness.
    pub fn new(config: HarnessConfig) -> Result<Scheduler> {
        Ok(Scheduler {
            harness: Harness::new(config)?,
            engines: engines::all_engines(),
            hook: None,
        })
    }

    /// The underlying harness (datasets, config, rendering context).
    pub fn harness(&self) -> &Harness {
        &self.harness
    }

    /// Mutable harness access, for pre-serve wiring (artifact cache
    /// attachment) before any cells run.
    pub fn harness_mut(&mut self) -> &mut Harness {
        &mut self.harness
    }

    /// Install a pre-execution hook (observation / failure injection).
    pub fn set_cell_hook(&mut self, hook: Box<CellHook>) {
        self.hook = Some(hook);
    }

    /// Plan the full cell list for `figures` in deterministic order.
    pub fn plan(&self, figs: &[FigureId], mn_size: SizeClass) -> Vec<CellKey> {
        figs.iter()
            .flat_map(|&f| figures::plan(f, self.harness.config(), mn_size))
            .collect()
    }

    fn engine(&self, name: &str) -> Result<&dyn Engine> {
        self.engines
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
            .ok_or_else(|| Error::invalid(format!("unknown engine {name:?}")))
    }

    /// Execute one cell under an explicit thread budget.
    pub fn run_cell(&self, key: &CellKey, threads: usize) -> Result<CellOutcome> {
        self.run_cell_with_progress(key, threads, None)
    }

    /// Execute one cell with an optional intra-cell progress sink (resume
    /// state flows kernel ← sink ← coordinator lease).
    pub fn run_cell_with_progress(
        &self,
        key: &CellKey,
        threads: usize,
        progress: Option<genbase_util::ProgressHandle>,
    ) -> Result<CellOutcome> {
        let engine = self.engine(&key.engine)?;
        let rec = self
            .harness
            .run_cell_with_progress(engine, key.query, key.size, key.nodes, threads, progress)?;
        Ok(CellOutcome::from_run(&rec.outcome))
    }

    /// Execute one cell with the morsel-streaming config replaced for this
    /// run only (the server's per-request `"stream": "staged"|"fused"`
    /// override). Everything else — dataset, plan, thread budget — comes
    /// from the resident configuration.
    pub fn run_cell_with_stream(
        &self,
        key: &CellKey,
        threads: usize,
        stream: crate::engine::StreamConfig,
    ) -> Result<CellOutcome> {
        let engine = self.engine(&key.engine)?;
        let rec = self.harness.run_cell_with_overrides(
            engine,
            key.query,
            key.size,
            key.nodes,
            threads,
            None,
            Some(stream),
        )?;
        Ok(CellOutcome::from_run(&rec.outcome))
    }

    /// Run the sweep for `figures`: shard-filter the planned cells, skip
    /// checkpointed ones, dispatch the rest with `cells_in_flight`
    /// concurrency, and collect a deterministic grid.
    ///
    /// On a cell failure every other cell still runs and checkpoints; the
    /// first failure (in plan order) is then returned, so a resumed sweep
    /// re-attempts only what is missing.
    pub fn run_sweep(
        &self,
        figs: &[FigureId],
        mn_size: SizeClass,
        sweep: &SweepOptions,
    ) -> Result<SweepOutcome> {
        let start = std::time::Instant::now();
        let shards = sweep.shards.max(1);
        if sweep.shard_id >= shards {
            return Err(Error::invalid(format!(
                "shard id {} out of range (shards = {shards})",
                sweep.shard_id
            )));
        }
        let cells: Vec<CellKey> = self
            .plan(figs, mn_size)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % shards == sweep.shard_id)
            .map(|(_, c)| c)
            .collect();

        let fingerprint = config_fingerprint(self.harness.config());
        let mut recovered = None;
        let mut base = match &sweep.checkpoint {
            Some(path) if path.exists() => {
                let (grid, note) = ReportGrid::load_with_recovery(path)?;
                recovered = note;
                if let Some(have) = grid.fingerprint() {
                    if have != fingerprint {
                        return Err(Error::invalid(format!(
                            "checkpoint {} is from a different configuration \
                             ({have} vs {fingerprint}); delete it or match the flags",
                            path.display()
                        )));
                    }
                }
                grid
            }
            _ => ReportGrid::default(),
        };
        base.set_fingerprint(fingerprint);
        let pending: Vec<&CellKey> = cells.iter().filter(|c| !base.contains(c)).collect();
        let skipped = cells.len() - pending.len();

        let in_flight = sweep.cells_in_flight.max(1);
        let per_cell_threads = (self.harness.config().threads / in_flight).max(1);
        // Incremental checkpoint state, only maintained when a checkpoint
        // is configured (checkpoint-less sweeps collect from `results`).
        let live = sweep.checkpoint.as_ref().map(|_| Mutex::new(base.clone()));
        let results: Vec<Result<CellOutcome>> =
            parallel_map(in_flight, pending.len(), |i| -> Result<CellOutcome> {
                let key = pending[i];
                if let Some(hook) = &self.hook {
                    hook(key)?;
                }
                let outcome = self.run_cell(key, per_cell_threads)?;
                // Serialize under the lock, write outside it: completions
                // must not queue behind each other's disk I/O. Concurrent
                // writers use distinct temp files; renames may land out of
                // order, leaving an older-but-valid intermediate file —
                // the authoritative checkpoint is rewritten once, from the
                // complete grid, after the dispatch loop below.
                if let Some(live) = &live {
                    let json = {
                        let mut grid = live.lock().expect("live grid");
                        grid.insert(key, outcome.clone());
                        grid.to_json()
                    };
                    save_text(sweep.checkpoint.as_ref().expect("checkpoint"), &json, i)?;
                }
                Ok(outcome)
            });

        // Rebuild the grid from results in plan order (deterministic,
        // independent of completion interleaving).
        let mut grid = base;
        let mut first_err = None;
        for (key, result) in pending.iter().zip(results) {
            match result {
                Ok(outcome) => grid.insert(key, outcome),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        // Authoritative checkpoint write: every completed cell, even if an
        // out-of-order incremental rename left an older file, and even when
        // some cells failed (the resume then re-runs only those).
        if let Some(path) = &sweep.checkpoint {
            grid.save(path)?;
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(SweepOutcome {
            planned: cells.len(),
            executed: pending.len(),
            skipped,
            grid,
            wall_secs: start.elapsed().as_secs_f64(),
            recovered,
        })
    }

    /// Run a sweep and render each requested figure from the grid
    /// (single-shard convenience; byte-identical to the serial wrappers).
    pub fn run_and_render(
        &self,
        figs: &[FigureId],
        mn_size: SizeClass,
        sweep: &SweepOptions,
    ) -> Result<Vec<figures::Figure>> {
        let outcome = self.run_sweep(figs, mn_size, sweep)?;
        figs.iter()
            .map(|&f| figures::render(f, &self.harness, mn_size, &outcome.grid))
            .collect()
    }
}

/// Serial grid construction for the classic `figures::figureN` wrappers:
/// run `cells` one at a time, in order, with the harness's full thread
/// budget per cell.
pub fn run_cells_serial(
    harness: &Harness,
    engines: &[Box<dyn Engine>],
    cells: &[CellKey],
) -> Result<ReportGrid> {
    let mut grid = ReportGrid::default();
    for key in cells {
        let engine = engines
            .iter()
            .find(|e| e.name() == key.engine)
            .ok_or_else(|| Error::invalid(format!("unknown engine {:?}", key.engine)))?;
        let rec = harness.run_cell(engine.as_ref(), key.query, key.size, key.nodes)?;
        grid.insert(key, CellOutcome::from_run(&rec.outcome));
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(figure: FigureId, nodes: usize, engine: &str) -> CellKey {
        CellKey {
            figure,
            query: Query::Covariance,
            size: SizeClass::Small,
            nodes,
            engine: engine.to_string(),
        }
    }

    #[test]
    fn cell_ids_are_stable() {
        let k = key(FigureId::Fig1, 1, "SciDB");
        assert_eq!(k.id(), "fig1/covariance/small/n1/SciDB");
        let k = key(FigureId::Table1, 4, "SciDB + Xeon Phi");
        assert_eq!(k.id(), "table1/covariance/small/n4/SciDB + Xeon Phi");
    }

    #[test]
    fn figure_names_round_trip() {
        for f in FigureId::ALL {
            assert_eq!(FigureId::from_name(f.name()), Some(f));
        }
        assert_eq!(FigureId::from_name("fig9"), None);
    }

    #[test]
    fn grid_json_round_trips() {
        let mut grid = ReportGrid::default();
        grid.insert(
            &key(FigureId::Fig1, 1, "SciDB"),
            CellOutcome::Completed {
                dm: CostReport {
                    wall_secs: 0.125,
                    sim_secs: 0.5,
                    sim_bytes: 1024,
                },
                an: CostReport::default(),
                trace: vec![crate::plan::OpTrace {
                    kind: crate::plan::OpKind::Restructure,
                    phase: crate::plan::Phase::DataManagement,
                    label: "chunk gather".into(),
                    cost: crate::plan::OpCost {
                        wall_secs: 0.125,
                        sim_nanos: 500_000_000,
                        model_secs: 0.0,
                        sim_bytes: 1024,
                        ..crate::plan::OpCost::default()
                    },
                }],
            },
        );
        grid.insert(
            &key(FigureId::Fig1, 1, "Hadoop"),
            CellOutcome::Infinite {
                reason: "cutoff after \"2h\"".into(),
            },
        );
        grid.insert(
            &key(FigureId::Fig1, 1, "Vanilla R"),
            CellOutcome::Unsupported,
        );
        let text = grid.to_json();
        let back = ReportGrid::from_json(&text).unwrap();
        assert_eq!(back, grid);
        assert_eq!(back.to_json(), text, "serialization must be deterministic");
    }

    #[test]
    fn grid_merge_detects_conflicts() {
        let k = key(FigureId::Fig1, 1, "SciDB");
        let mut a = ReportGrid::default();
        a.insert(&k, CellOutcome::Unsupported);
        let mut b = ReportGrid::default();
        b.insert(&k, CellOutcome::Unsupported);
        assert!(a.clone().merge(b).is_ok());
        let mut c = ReportGrid::default();
        c.insert(&k, CellOutcome::Infinite { reason: "x".into() });
        assert!(a.merge(c).is_err());
    }

    #[test]
    fn mismatched_fingerprints_refuse_to_merge() {
        let mut a = ReportGrid::default();
        a.set_fingerprint("scale=0.012;seed=1;timing=SimOnly".into());
        let mut b = ReportGrid::default();
        b.set_fingerprint("scale=0.048;seed=1;timing=SimOnly".into());
        b.insert(&key(FigureId::Fig1, 1, "SciDB"), CellOutcome::Unsupported);
        assert!(a.clone().merge(b.clone()).is_err());
        // Unstamped grids (legacy files) adopt the stamped side's config.
        let mut unstamped = ReportGrid::default();
        unstamped.merge(b.clone()).unwrap();
        assert_eq!(unstamped.fingerprint(), b.fingerprint());
        // Fingerprints survive serialization.
        let back = ReportGrid::from_json(&b.to_json()).unwrap();
        assert_eq!(back.fingerprint(), b.fingerprint());
    }

    #[test]
    fn checkpoint_from_other_config_is_rejected() {
        let path = std::env::temp_dir().join(format!(
            "genbase-ckpt-fingerprint-{}.json",
            std::process::id()
        ));
        let sched = Scheduler::new(HarnessConfig::quick()).unwrap();
        let mut stale = ReportGrid::default();
        stale.set_fingerprint("scale=1;seed=2;timing=Measured".into());
        stale.save(&path).unwrap();
        let sweep = SweepOptions::serial().with_checkpoint(&path);
        let err = sched
            .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
            .unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("different configuration"), "{err}");
    }

    #[test]
    fn malformed_checkpoint_costs_are_rejected() {
        let text = format!(
            "{{\"schema\":\"{GRID_SCHEMA}\",\"cells\":{{\
             \"fig1/covariance/small/n1/SciDB\":\
             {{\"status\":\"completed\",\"dm\":[null,null,null],\"an\":[0,0,0]}}}}}}"
        );
        let err = ReportGrid::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("non-numeric"), "{err}");
    }

    #[test]
    fn sweep_rejects_bad_shard_id() {
        let sched = Scheduler::new(HarnessConfig::quick()).unwrap();
        let sweep = SweepOptions::serial().with_shard(2, 2);
        assert!(sched
            .run_sweep(&[FigureId::Fig1], SizeClass::Small, &sweep)
            .is_err());
    }

    #[test]
    fn unknown_engine_is_an_error() {
        let sched = Scheduler::new(HarnessConfig::quick()).unwrap();
        let k = key(FigureId::Fig1, 1, "No Such Engine");
        assert!(sched.run_cell(&k, 1).is_err());
    }
}
