//! Benchmark harness: runs the (engine × query × size × nodes) matrix with
//! the paper's cutoff and failure semantics.
//!
//! Datasets come from a shared, lazily-built [`DatasetPool`]: a size class
//! is generated the first time any cell asks for it (exactly once, no
//! matter how many cells ask concurrently), shared by reference count
//! across every in-flight cell, and cached for the harness's lifetime —
//! the substrate the sharded scheduler in [`crate::sched`] dispatches
//! onto.

use crate::engine::{Engine, ExecContext};
use crate::query::{Query, QueryParams};
use crate::report::RunOutcome;
use genbase_datagen::{Dataset, DatasetPool, SizeClass};
use genbase_util::{Error, Result};
use std::sync::Arc;
use std::time::Duration;

/// How completed cells report time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Measured wall seconds plus simulated costs (the paper's numbers).
    #[default]
    Measured,
    /// Simulated costs only: measured wall seconds are zeroed and the
    /// (machine-dependent) wall-clock cutoff is disabled, making every
    /// cell outcome deterministic. This is the conformance-tier mode —
    /// sweep output becomes byte-identical across runs, machines, and
    /// serial-vs-sharded execution. Memory budgets still apply (byte
    /// accounting is deterministic).
    SimOnly,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Per-side scale factor relative to paper sizes (default 0.048 ⇒
    /// Small 240x240 … Large 1440x1920; 1.0 = paper scale).
    pub scale: f64,
    /// Size classes to run.
    pub sizes: Vec<SizeClass>,
    /// Per-run cutoff (the paper's two-hour window, scaled with the data).
    pub cutoff: Duration,
    /// Simulated machine memory for in-memory runtimes (paper: 48 GB,
    /// scaled by `scale²` by [`HarnessConfig::default`]).
    pub r_mem_bytes: u64,
    /// Hardware threads to use.
    pub threads: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Node counts for multi-node experiments.
    pub node_counts: Vec<usize>,
    /// Timing mode for completed cells.
    pub timing: TimingMode,
    /// Storage-layer working-set budget in bytes (`--mem-budget`),
    /// enforced by each run's [`genbase_storage::MemTracker`]. `None` =
    /// unlimited. A cell that exhausts it renders as the paper's
    /// "infinite" bar, exactly like a cutoff. On multi-node cells the
    /// budget applies per *simulated node* (each node is its own machine
    /// with its own tracker; the critical-path trace reports the per-node
    /// maximum).
    pub mem_budget: Option<u64>,
    /// Morsel-driven streaming mode (`--stream` / `--batch-rows` /
    /// `--spill-dir`). `None` = materializing lowerings everywhere.
    pub stream: Option<crate::engine::StreamConfig>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        let scale: f64 = 0.048;
        HarnessConfig {
            scale,
            sizes: SizeClass::REPORTED.to_vec(),
            // Two hours scaled by the cell-count ratio (~scale²) would be
            // ~16 s; leave headroom for slow CI machines.
            cutoff: Duration::from_secs(60),
            r_mem_bytes: (48e9 * scale * scale) as u64,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0x9e6b,
            node_counts: vec![1, 2, 4],
            timing: TimingMode::Measured,
            mem_budget: None,
            stream: None,
        }
    }
}

impl HarnessConfig {
    /// Quick configuration for tests and examples: tiny datasets only.
    pub fn quick() -> HarnessConfig {
        HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            cutoff: Duration::from_secs(30),
            r_mem_bytes: u64::MAX,
            ..Default::default()
        }
    }

    /// Same configuration in deterministic sim-only timing mode.
    pub fn sim_only(mut self) -> HarnessConfig {
        self.timing = TimingMode::SimOnly;
        self
    }
}

/// One cell of the benchmark result matrix.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Engine name.
    pub engine: String,
    /// Query executed.
    pub query: Query,
    /// Dataset size class.
    pub size: SizeClass,
    /// Cluster size.
    pub nodes: usize,
    /// What happened.
    pub outcome: RunOutcome,
}

/// Dataset pool + run driver.
pub struct Harness {
    config: HarnessConfig,
    pool: DatasetPool,
    cache: Option<Arc<genbase_storage::ArtifactCache>>,
}

impl Harness {
    /// Build a harness over a lazily-populated dataset pool (seeded,
    /// reproducible; nothing is generated until a cell needs it).
    pub fn new(config: HarnessConfig) -> Result<Harness> {
        let pool = DatasetPool::new(config.scale, config.seed);
        Ok(Harness {
            config,
            pool,
            cache: None,
        })
    }

    /// Attach a shared artifact cache (`--cache-budget`): every run context
    /// this harness hands out gets a [`genbase_storage::CacheScope`] keyed
    /// under this configuration's fingerprint, so conversion artifacts are
    /// shared across cells of the same configuration and can never leak
    /// between different fingerprints.
    pub fn set_artifact_cache(&mut self, cache: Arc<genbase_storage::ArtifactCache>) {
        self.cache = Some(cache);
    }

    /// The attached artifact cache, if any.
    pub fn artifact_cache(&self) -> Option<&Arc<genbase_storage::ArtifactCache>> {
        self.cache.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// The shared dataset pool.
    pub fn pool(&self) -> &DatasetPool {
        &self.pool
    }

    /// Fetch a dataset handle (generated on first use, then shared).
    /// Classes outside the configured `sizes` are rejected.
    pub fn dataset(&self, class: SizeClass) -> Result<Arc<Dataset>> {
        if !self.config.sizes.contains(&class) {
            return Err(Error::invalid(format!("size {class:?} not configured")));
        }
        self.pool.get(class)
    }

    /// Query parameters for a dataset (derived deterministically; cheap).
    pub fn params(&self, class: SizeClass) -> Result<QueryParams> {
        Ok(QueryParams::for_dataset(self.dataset(class)?.as_ref()))
    }

    /// Execution context for a run.
    pub fn context(&self, nodes: usize) -> ExecContext {
        self.context_with_threads(nodes, self.config.threads)
    }

    /// Execution context with an explicit thread budget — the scheduler
    /// splits `config.threads` between concurrent cells through this.
    pub fn context_with_threads(&self, nodes: usize, threads: usize) -> ExecContext {
        let mut ctx = ExecContext::multi_node(nodes);
        ctx.threads = threads.max(1);
        // The simulated machine's size is part of the benchmark
        // configuration; only the execution budget varies per cell.
        ctx.sim_threads = self.config.threads.max(1);
        // The wall-clock cutoff is inherently machine-dependent: in
        // deterministic SimOnly mode it is disabled, or a slow runner
        // could turn a Completed cell into Infinite and break the
        // byte-identical guarantee. Memory budgets stay on — byte
        // accounting is deterministic.
        ctx.cutoff = match self.config.timing {
            TimingMode::Measured => Some(self.config.cutoff),
            TimingMode::SimOnly => None,
        };
        ctx.r_mem_bytes = Some(self.config.r_mem_bytes);
        ctx.mem_budget = self.config.mem_budget;
        ctx.stream = self.config.stream.clone();
        ctx.deterministic = self.config.timing == TimingMode::SimOnly;
        ctx.cache = self.cache.as_ref().map(|cache| {
            genbase_storage::CacheScope::new(
                cache.clone(),
                crate::sched::config_fingerprint(&self.config),
            )
        });
        ctx
    }

    /// Run one cell, mapping cutoff/OOM to [`RunOutcome::Infinite`] and
    /// missing functionality to [`RunOutcome::Unsupported`]. Genuine engine
    /// errors propagate.
    pub fn run_cell(
        &self,
        engine: &dyn Engine,
        query: Query,
        size: SizeClass,
        nodes: usize,
    ) -> Result<RunRecord> {
        self.run_cell_with_threads(engine, query, size, nodes, self.config.threads)
    }

    /// [`Harness::run_cell`] under an explicit per-cell thread budget.
    pub fn run_cell_with_threads(
        &self,
        engine: &dyn Engine,
        query: Query,
        size: SizeClass,
        nodes: usize,
        threads: usize,
    ) -> Result<RunRecord> {
        self.run_cell_with_progress(engine, query, size, nodes, threads, None)
    }

    /// [`Harness::run_cell_with_threads`] with an optional intra-cell
    /// progress sink threaded into the engine's kernels, so long iterative
    /// cells (Lanczos SVD, Cheng–Church) checkpoint mid-run and a re-issued
    /// cell resumes bit-identically.
    pub fn run_cell_with_progress(
        &self,
        engine: &dyn Engine,
        query: Query,
        size: SizeClass,
        nodes: usize,
        threads: usize,
        progress: Option<genbase_util::ProgressHandle>,
    ) -> Result<RunRecord> {
        self.run_cell_with_overrides(engine, query, size, nodes, threads, progress, None)
    }

    /// [`Harness::run_cell_with_progress`] with the morsel-streaming config
    /// replaced for this run only (the served path's per-request
    /// `"stream"` override). The artifact-cache scope is re-keyed under the
    /// overridden config's fingerprint, so staged and fused runs never
    /// share cached conversion artifacts.
    pub fn run_cell_with_overrides(
        &self,
        engine: &dyn Engine,
        query: Query,
        size: SizeClass,
        nodes: usize,
        threads: usize,
        progress: Option<genbase_util::ProgressHandle>,
        stream: Option<crate::engine::StreamConfig>,
    ) -> Result<RunRecord> {
        let outcome = if !engine.supports(query) || nodes > engine.max_nodes() {
            RunOutcome::Unsupported
        } else {
            let data = self.dataset(size)?;
            let params = self.params(size)?;
            let mut ctx = self.context_with_threads(nodes, threads);
            ctx.progress = progress;
            if let Some(stream) = stream {
                let mut cfg = self.config.clone();
                cfg.stream = Some(stream.clone());
                ctx.stream = Some(stream);
                ctx.cache = self.cache.as_ref().map(|cache| {
                    genbase_storage::CacheScope::new(
                        cache.clone(),
                        crate::sched::config_fingerprint(&cfg),
                    )
                });
            }
            match engine.run(query, &data, &params, &ctx) {
                Ok(mut report) => {
                    if self.config.timing == TimingMode::SimOnly {
                        // Zero the trace and the phase split together so
                        // per-op costs still sum exactly to the phases.
                        report.trace.zero_wall();
                        report.phases.data_management.wall_secs = 0.0;
                        report.phases.analytics.wall_secs = 0.0;
                    }
                    RunOutcome::Completed(report)
                }
                Err(e) if e.is_infinite_result() => RunOutcome::Infinite {
                    reason: e.to_string(),
                },
                Err(Error::Unsupported { .. }) => RunOutcome::Unsupported,
                Err(e) => return Err(e),
            }
        };
        Ok(RunRecord {
            engine: engine.name().to_string(),
            query,
            size,
            nodes,
            outcome,
        })
    }

    /// Run a full single-node matrix over the given engines and queries.
    pub fn run_matrix(
        &self,
        engines: &[Box<dyn Engine>],
        queries: &[Query],
    ) -> Result<Vec<RunRecord>> {
        let mut records = Vec::new();
        for &query in queries {
            for &class in &self.config.sizes {
                for engine in engines {
                    records.push(self.run_cell(engine.as_ref(), query, class, 1)?);
                }
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines;

    fn quick_harness() -> Harness {
        let cfg = HarnessConfig {
            scale: 0.012, // 60x60 small
            sizes: vec![SizeClass::Small],
            ..HarnessConfig::quick()
        };
        Harness::new(cfg).unwrap()
    }

    #[test]
    fn datasets_generated_per_size() {
        let h = quick_harness();
        let d = h.dataset(SizeClass::Small).unwrap();
        assert_eq!(d.n_genes(), 60);
        assert_eq!(d.n_patients(), 60);
        assert!(h.dataset(SizeClass::Large).is_err());
        // Lazy pool: only the touched class was generated.
        assert_eq!(h.pool().generated(), vec![SizeClass::Small]);
    }

    #[test]
    fn dataset_handles_are_shared_not_regenerated() {
        let h = quick_harness();
        let a = h.dataset(SizeClass::Small).unwrap();
        let b = h.dataset(SizeClass::Small).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(h.pool().handle_count(SizeClass::Small), 2);
    }

    #[test]
    fn run_cell_outcomes() {
        let h = quick_harness();
        let scidb = engines::SciDb::new();
        let rec = h
            .run_cell(&scidb, Query::Regression, SizeClass::Small, 1)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Completed(_)));
        // Unsupported path.
        let hadoop = engines::Hadoop::new();
        let rec = h
            .run_cell(&hadoop, Query::Biclustering, SizeClass::Small, 1)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Unsupported));
        // Multi-node beyond capability.
        let r = engines::VanillaR::new();
        let rec = h
            .run_cell(&r, Query::Regression, SizeClass::Small, 4)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Unsupported));
    }

    #[test]
    fn cutoff_renders_infinite() {
        let mut cfg = HarnessConfig::quick();
        cfg.scale = 0.012;
        cfg.sizes = vec![SizeClass::Small];
        cfg.cutoff = Duration::from_nanos(1);
        let h = Harness::new(cfg).unwrap();
        let scidb = engines::SciDb::new();
        let rec = h
            .run_cell(&scidb, Query::Covariance, SizeClass::Small, 1)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Infinite { .. }));
    }

    #[test]
    fn sim_only_mode_zeroes_measured_wall_time() {
        let cfg = HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            ..HarnessConfig::quick()
        }
        .sim_only();
        let h = Harness::new(cfg).unwrap();
        let scidb = engines::SciDb::new();
        let rec = h
            .run_cell(&scidb, Query::Covariance, SizeClass::Small, 1)
            .unwrap();
        let report = rec.outcome.report().expect("completed");
        assert_eq!(report.phases.data_management.wall_secs, 0.0);
        assert_eq!(report.phases.analytics.wall_secs, 0.0);
        // Deterministic: a second identical run reports identical totals.
        let rec2 = h
            .run_cell(&scidb, Query::Covariance, SizeClass::Small, 1)
            .unwrap();
        let report2 = rec2.outcome.report().unwrap();
        assert_eq!(
            report.phases.total_secs().to_bits(),
            report2.phases.total_secs().to_bits()
        );
    }
}
