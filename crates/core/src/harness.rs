//! Benchmark harness: runs the (engine × query × size × nodes) matrix with
//! the paper's cutoff and failure semantics.

use crate::engine::{Engine, ExecContext};
use crate::query::{Query, QueryParams};
use crate::report::RunOutcome;
use genbase_datagen::{generate, Dataset, GeneratorConfig, SizeClass, SizeSpec};
use genbase_util::{Error, Result};
use std::time::Duration;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Per-side scale factor relative to paper sizes (default 0.048 ⇒
    /// Small 240x240 … Large 1440x1920; 1.0 = paper scale).
    pub scale: f64,
    /// Size classes to run.
    pub sizes: Vec<SizeClass>,
    /// Per-run cutoff (the paper's two-hour window, scaled with the data).
    pub cutoff: Duration,
    /// Simulated machine memory for in-memory runtimes (paper: 48 GB,
    /// scaled by `scale²` by [`HarnessConfig::default`]).
    pub r_mem_bytes: u64,
    /// Hardware threads to use.
    pub threads: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Node counts for multi-node experiments.
    pub node_counts: Vec<usize>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        let scale: f64 = 0.048;
        HarnessConfig {
            scale,
            sizes: SizeClass::REPORTED.to_vec(),
            // Two hours scaled by the cell-count ratio (~scale²) would be
            // ~16 s; leave headroom for slow CI machines.
            cutoff: Duration::from_secs(60),
            r_mem_bytes: (48e9 * scale * scale) as u64,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0x9e6b,
            node_counts: vec![1, 2, 4],
        }
    }
}

impl HarnessConfig {
    /// Quick configuration for tests and examples: tiny datasets only.
    pub fn quick() -> HarnessConfig {
        HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            cutoff: Duration::from_secs(30),
            r_mem_bytes: u64::MAX,
            ..Default::default()
        }
    }
}

/// One cell of the benchmark result matrix.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Engine name.
    pub engine: String,
    /// Query executed.
    pub query: Query,
    /// Dataset size class.
    pub size: SizeClass,
    /// Cluster size.
    pub nodes: usize,
    /// What happened.
    pub outcome: RunOutcome,
}

/// Dataset cache + run driver.
pub struct Harness {
    config: HarnessConfig,
    datasets: Vec<(SizeClass, Dataset, QueryParams)>,
}

impl Harness {
    /// Generate all configured datasets up front (seeded, reproducible).
    pub fn new(config: HarnessConfig) -> Result<Harness> {
        let mut datasets = Vec::with_capacity(config.sizes.len());
        for &class in &config.sizes {
            let spec = SizeSpec::scaled(class, config.scale);
            let data = generate(&GeneratorConfig::new(spec).with_seed(config.seed))?;
            let params = QueryParams::for_dataset(&data);
            datasets.push((class, data, params));
        }
        Ok(Harness { config, datasets })
    }

    /// The active configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// Borrow a generated dataset.
    pub fn dataset(&self, class: SizeClass) -> Result<&Dataset> {
        self.datasets
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, d, _)| d)
            .ok_or_else(|| Error::invalid(format!("size {class:?} not configured")))
    }

    /// Query parameters for a dataset.
    pub fn params(&self, class: SizeClass) -> Result<&QueryParams> {
        self.datasets
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, _, p)| p)
            .ok_or_else(|| Error::invalid(format!("size {class:?} not configured")))
    }

    /// Execution context for a run.
    pub fn context(&self, nodes: usize) -> ExecContext {
        let mut ctx = ExecContext::multi_node(nodes);
        ctx.threads = self.config.threads;
        ctx.cutoff = Some(self.config.cutoff);
        ctx.r_mem_bytes = Some(self.config.r_mem_bytes);
        ctx
    }

    /// Run one cell, mapping cutoff/OOM to [`RunOutcome::Infinite`] and
    /// missing functionality to [`RunOutcome::Unsupported`]. Genuine engine
    /// errors propagate.
    pub fn run_cell(
        &self,
        engine: &dyn Engine,
        query: Query,
        size: SizeClass,
        nodes: usize,
    ) -> Result<RunRecord> {
        let outcome = if !engine.supports(query) || nodes > engine.max_nodes() {
            RunOutcome::Unsupported
        } else {
            let data = self.dataset(size)?;
            let params = self.params(size)?;
            let ctx = self.context(nodes);
            match engine.run(query, data, params, &ctx) {
                Ok(report) => RunOutcome::Completed(report),
                Err(e) if e.is_infinite_result() => RunOutcome::Infinite {
                    reason: e.to_string(),
                },
                Err(Error::Unsupported { .. }) => RunOutcome::Unsupported,
                Err(e) => return Err(e),
            }
        };
        Ok(RunRecord {
            engine: engine.name().to_string(),
            query,
            size,
            nodes,
            outcome,
        })
    }

    /// Run a full single-node matrix over the given engines and queries.
    pub fn run_matrix(
        &self,
        engines: &[Box<dyn Engine>],
        queries: &[Query],
    ) -> Result<Vec<RunRecord>> {
        let mut records = Vec::new();
        for &query in queries {
            for (class, _, _) in &self.datasets {
                for engine in engines {
                    records.push(self.run_cell(engine.as_ref(), query, *class, 1)?);
                }
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines;

    fn quick_harness() -> Harness {
        let cfg = HarnessConfig {
            scale: 0.012, // 60x60 small
            sizes: vec![SizeClass::Small],
            ..HarnessConfig::quick()
        };
        Harness::new(cfg).unwrap()
    }

    #[test]
    fn datasets_generated_per_size() {
        let h = quick_harness();
        let d = h.dataset(SizeClass::Small).unwrap();
        assert_eq!(d.n_genes(), 60);
        assert_eq!(d.n_patients(), 60);
        assert!(h.dataset(SizeClass::Large).is_err());
    }

    #[test]
    fn run_cell_outcomes() {
        let h = quick_harness();
        let scidb = engines::SciDb::new();
        let rec = h
            .run_cell(&scidb, Query::Regression, SizeClass::Small, 1)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Completed(_)));
        // Unsupported path.
        let hadoop = engines::Hadoop::new();
        let rec = h
            .run_cell(&hadoop, Query::Biclustering, SizeClass::Small, 1)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Unsupported));
        // Multi-node beyond capability.
        let r = engines::VanillaR::new();
        let rec = h
            .run_cell(&r, Query::Regression, SizeClass::Small, 4)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Unsupported));
    }

    #[test]
    fn cutoff_renders_infinite() {
        let mut cfg = HarnessConfig::quick();
        cfg.scale = 0.012;
        cfg.sizes = vec![SizeClass::Small];
        cfg.cutoff = Duration::from_nanos(1);
        let h = Harness::new(cfg).unwrap();
        let scidb = engines::SciDb::new();
        let rec = h
            .run_cell(&scidb, Query::Covariance, SizeClass::Small, 1)
            .unwrap();
        assert!(matches!(rec.outcome, RunOutcome::Infinite { .. }));
    }
}
