//! Shared analytics kernels.
//!
//! Every engine funnels its (differently produced) matrices through these
//! functions, so cross-engine output consistency is guaranteed by
//! construction and the performance differences stay where the paper puts
//! them: in the data-management plumbing, the thread counts, and the
//! export/serialization paths.

use crate::query::{BiclusterOut, QueryOutput};
use genbase_bicluster::{find_biclusters, ChengChurchConfig};
use genbase_linalg::covariance::{quantile_abs_threshold, top_pairs_by_threshold};
use genbase_linalg::{
    covariance, lanczos_topk, ExecOpts, GramOp, LinearRegression, Matrix, RegressionMethod,
};
use genbase_stats::wilcoxon_rank_sum_par;
use genbase_util::{Error, Pcg64, Result};

/// Covariance-query intermediate: the threshold plus the qualifying
/// `(row, col, covariance)` pairs as matrix-column indices.
pub type CovPairs = (f64, Vec<(usize, usize, f64)>);

/// Deterministic Query 5 patient sample: `count` distinct patient indices
/// drawn from `0..n`, ascending. Identical on every engine and node.
pub fn sample_patients(n: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut rng = Pcg64::new(seed ^ 0x51a7_15e1);
    rng.sample_indices(n, count.min(n))
}

/// Query 1 analytics: fit drug response on the selected genes' expression.
pub fn fit_regression(
    x: &Matrix,
    y: &[f64],
    gene_ids: &[i64],
    method: RegressionMethod,
    opts: &ExecOpts,
) -> Result<QueryOutput> {
    if gene_ids.len() != x.cols() {
        return Err(Error::invalid("gene id list must match matrix width"));
    }
    let model = LinearRegression::fit(x, y, method, opts)?;
    let coefficients = gene_ids
        .iter()
        .copied()
        .zip(model.coefficients.iter().copied())
        .collect();
    Ok(QueryOutput::Regression {
        intercept: model.intercept,
        coefficients,
        r_squared: model.r_squared,
    })
}

/// Query 2 analytics: covariance matrix, top-fraction threshold, and the
/// qualifying pairs as matrix-column indices (the caller joins metadata).
pub fn covariance_pairs(mat: &Matrix, fraction: f64, opts: &ExecOpts) -> Result<CovPairs> {
    let cov = covariance(mat, opts)?;
    Ok(pairs_from_cov(&cov, fraction))
}

/// Threshold + pair extraction from an already-computed covariance matrix
/// (used by the distributed and MapReduce paths).
pub fn pairs_from_cov(cov: &Matrix, fraction: f64) -> (f64, Vec<(usize, usize, f64)>) {
    let threshold = quantile_abs_threshold(cov, fraction);
    let pairs = top_pairs_by_threshold(cov, threshold)
        .into_iter()
        .map(|p| (p.a, p.b, p.value))
        .collect();
    (threshold, pairs)
}

/// Query 3 analytics: Cheng–Church on the filtered matrix; positions are
/// translated to global patient/gene ids.
pub fn bicluster_output(
    mat: &Matrix,
    patient_ids: &[i64],
    gene_ids: &[i64],
    config: &ChengChurchConfig,
    opts: &ExecOpts,
) -> Result<QueryOutput> {
    let found = find_biclusters(mat, config, opts)?;
    Ok(QueryOutput::Biclusters(
        found
            .into_iter()
            .map(|bc| BiclusterOut {
                patient_ids: bc.rows.iter().map(|&r| patient_ids[r]).collect(),
                gene_ids: bc.cols.iter().map(|&c| gene_ids[c]).collect(),
                msr: bc.msr,
            })
            .collect(),
    ))
}

/// Query 4 analytics: top-`k` eigenvalues of `AᵀA` for the filtered
/// expression matrix via Lanczos (never materializing the Gram matrix).
pub fn svd_output(mat: &Matrix, k: usize, seed: u64, opts: &ExecOpts) -> Result<QueryOutput> {
    let k = k.min(mat.cols()).max(1);
    let op = GramOp::new(mat).with_threads(opts.threads);
    let res = lanczos_topk(&op, k, 0, seed, opts)?;
    Ok(QueryOutput::Svd {
        eigenvalues: res.eigenvalues,
    })
}

/// Query 5 analytics: given per-gene aggregated expression over the sampled
/// patients, run the Wilcoxon rank-sum test per GO term, R-script style:
/// each term extracts its two value vectors and ranks them fresh (this
/// per-term re-ranking is what the paper's scripts do and is the dominant
/// analytics cost of the statistics task). Terms are independent, so they
/// run in parallel on the shared runtime under `opts.threads`; per-term
/// order is preserved, making results thread-count invariant.
pub fn enrichment_output(
    gene_scores: &[f64],
    memberships: &[Vec<u32>],
    opts: &ExecOpts,
) -> Result<QueryOutput> {
    let n = gene_scores.len();
    // When there are fewer terms than threads, the leftover budget goes to
    // the per-test ranking sort (wilcoxon_rank_sum_par); with many terms
    // the term axis soaks up all threads and each test sorts serially.
    let inner_threads = (opts.threads / memberships.len().max(1)).max(1);
    let tested = genbase_util::parallel_map(
        opts.threads,
        memberships.len(),
        |term| -> Result<Option<(usize, f64, f64)>> {
            // Every task checks: one task is one term (the serial loop
            // checked every 16 iterations, but here a skipped check would
            // mean a whole uncancellable test past the cutoff).
            opts.budget.check("enrichment tests")?;
            let members = &memberships[term];
            if members.is_empty() || members.len() >= n {
                return Ok(None); // degenerate term: no test possible
            }
            let mut in_group = vec![false; n];
            for &g in members {
                if (g as usize) < n {
                    in_group[g as usize] = true;
                }
            }
            let group1: Vec<f64> = (0..n)
                .filter(|&g| in_group[g])
                .map(|g| gene_scores[g])
                .collect();
            let group2: Vec<f64> = (0..n)
                .filter(|&g| !in_group[g])
                .map(|g| gene_scores[g])
                .collect();
            let res = wilcoxon_rank_sum_par(&group1, &group2, inner_threads)?;
            Ok(Some((term, res.z, res.p_value)))
        },
    );
    let mut per_term = Vec::with_capacity(memberships.len());
    for t in tested {
        if let Some(entry) = t? {
            per_term.push(entry);
        }
    }
    Ok(QueryOutput::Enrichment { per_term })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_sorted() {
        let a = sample_patients(100, 10, 7);
        let b = sample_patients(100, 10, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let c = sample_patients(100, 10, 8);
        assert_ne!(a, c);
        assert_eq!(sample_patients(5, 10, 1).len(), 5);
    }

    #[test]
    fn regression_output_keys_by_gene_id() {
        let mut rng = Pcg64::new(151);
        let x = Matrix::from_fn(40, 3, |_, _| rng.normal());
        let y: Vec<f64> = (0..40)
            .map(|r| 1.0 + 2.0 * x.get(r, 0) - x.get(r, 2))
            .collect();
        let out = fit_regression(
            &x,
            &y,
            &[10, 20, 30],
            RegressionMethod::Qr,
            &ExecOpts::serial(),
        )
        .unwrap();
        let QueryOutput::Regression {
            intercept,
            coefficients,
            r_squared,
        } = out
        else {
            panic!("wrong variant")
        };
        assert!((intercept - 1.0).abs() < 1e-9);
        assert_eq!(coefficients[0].0, 10);
        assert!((coefficients[0].1 - 2.0).abs() < 1e-9);
        assert!((coefficients[1].1).abs() < 1e-9);
        assert!((r_squared - 1.0).abs() < 1e-9);
        assert!(fit_regression(&x, &y, &[1], RegressionMethod::Qr, &ExecOpts::serial()).is_err());
    }

    #[test]
    fn covariance_pairs_fraction() {
        let mut rng = Pcg64::new(152);
        let mat = Matrix::from_fn(60, 12, |_, _| rng.normal());
        let (threshold, pairs) = covariance_pairs(&mat, 0.10, &ExecOpts::serial()).unwrap();
        assert!(threshold > 0.0);
        let total = 12 * 11 / 2;
        let expect = (total as f64 * 0.10).ceil() as usize;
        assert!(pairs.len() >= expect && pairs.len() <= expect + 2);
        // Sorted by descending |cov|.
        assert!(pairs
            .windows(2)
            .all(|w| w[0].2.abs() >= w[1].2.abs() - 1e-12));
    }

    #[test]
    fn svd_output_descending() {
        let mut rng = Pcg64::new(153);
        let mat = Matrix::from_fn(50, 10, |_, _| rng.normal());
        let QueryOutput::Svd { eigenvalues } = svd_output(&mat, 5, 7, &ExecOpts::serial()).unwrap()
        else {
            panic!("wrong variant")
        };
        assert_eq!(eigenvalues.len(), 5);
        assert!(eigenvalues.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        assert!(eigenvalues.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn enrichment_detects_planted_term() {
        // Genes 0..5 score high; term 0 = those genes; term 1 = random.
        let mut scores = vec![0.0; 50];
        for (g, s) in scores.iter_mut().enumerate().take(5) {
            *s = 100.0 + g as f64;
        }
        for (g, s) in scores.iter_mut().enumerate().skip(5) {
            *s = g as f64 * 0.01;
        }
        let memberships = vec![vec![0u32, 1, 2, 3, 4], vec![7, 19, 33], vec![]];
        let QueryOutput::Enrichment { per_term } =
            enrichment_output(&scores, &memberships, &ExecOpts::serial()).unwrap()
        else {
            panic!("wrong variant")
        };
        assert_eq!(per_term.len(), 2, "empty term skipped");
        let (t0, z0, p0) = per_term[0];
        assert_eq!(t0, 0);
        assert!(z0 > 3.0, "planted term must rank at the top, z = {z0}");
        assert!(p0 < 0.01);
        let (_, _, p1) = per_term[1];
        assert!(p1 > 0.05, "random term insignificant, p = {p1}");
    }

    #[test]
    fn bicluster_output_maps_ids() {
        let mut rng = Pcg64::new(154);
        let mut mat = Matrix::from_fn(20, 16, |_, _| rng.normal() * 3.0);
        for r in (0..20).step_by(2) {
            for c in (0..16).step_by(2) {
                mat.set(r, c, 8.0);
            }
        }
        let patient_ids: Vec<i64> = (0..20).map(|i| 1000 + i).collect();
        let gene_ids: Vec<i64> = (0..16).map(|i| 2000 + i).collect();
        let config = ChengChurchConfig {
            delta: 0.05,
            max_biclusters: 1,
            ..Default::default()
        };
        let QueryOutput::Biclusters(bcs) =
            bicluster_output(&mat, &patient_ids, &gene_ids, &config, &ExecOpts::serial()).unwrap()
        else {
            panic!("wrong variant")
        };
        assert_eq!(bcs.len(), 1);
        assert!(bcs[0]
            .patient_ids
            .iter()
            .all(|&p| (1000..1020).contains(&p)));
        assert!(bcs[0].gene_ids.iter().all(|&g| (2000..2016).contains(&g)));
    }
}
