//! Query identifiers, parameters and typed outputs.

use genbase_bicluster::ChengChurchConfig;
use genbase_datagen::Dataset;

/// The five benchmark queries (§3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Query 1: predictive modeling (linear regression on drug response).
    Regression,
    /// Query 2: gene×gene covariance with top-pair selection.
    Covariance,
    /// Query 3: Cheng–Church biclustering.
    Biclustering,
    /// Query 4: Lanczos SVD, top eigenpairs.
    Svd,
    /// Query 5: statistics / GO-term enrichment via Wilcoxon rank-sum.
    Statistics,
}

impl Query {
    /// All five queries in paper order.
    pub const ALL: [Query; 5] = [
        Query::Regression,
        Query::Covariance,
        Query::Biclustering,
        Query::Svd,
        Query::Statistics,
    ];

    /// Short name used in harness output.
    pub fn name(&self) -> &'static str {
        match self {
            Query::Regression => "regression",
            Query::Covariance => "covariance",
            Query::Biclustering => "biclustering",
            Query::Svd => "svd",
            Query::Statistics => "statistics",
        }
    }

    /// Inverse of [`Query::name`] (cell keys, wire protocol).
    pub fn from_name(name: &str) -> Option<Query> {
        Query::ALL.into_iter().find(|q| q.name() == name)
    }

    /// Figure title fragment from the paper.
    pub fn title(&self) -> &'static str {
        match self {
            Query::Regression => "Linear Regression",
            Query::Covariance => "Covariance",
            Query::Biclustering => "Biclustering",
            Query::Svd => "SVD",
            Query::Statistics => "Statistics",
        }
    }
}

/// Parameters for all five queries, fixed per dataset so every engine
/// answers exactly the same question.
#[derive(Debug, Clone)]
pub struct QueryParams {
    /// Query 1/4 gene filter: keep genes with `function < function_threshold`.
    pub function_threshold: i64,
    /// Query 2 patient filter: keep patients with this disease.
    pub disease_id: i64,
    /// Query 3 patient filter: gender code to keep (1 = male).
    pub gender: i64,
    /// Query 3 patient filter: strict age upper bound.
    pub max_age: i64,
    /// Query 5: fraction of patients to sample (paper: 0.25%).
    pub patient_sample_frac: f64,
    /// Query 5: minimum sampled patients (keeps tiny datasets meaningful).
    pub min_sampled_patients: usize,
    /// Query 2: fraction of gene pairs to keep (paper example: top 10%).
    pub top_pair_fraction: f64,
    /// Query 4: eigenpair count (paper: 50; clamped to the filtered width).
    pub svd_k: usize,
    /// Query 3 algorithm configuration.
    pub bicluster: ChengChurchConfig,
    /// Seed for sampling and iterative analytics (identical across engines
    /// so outputs verify).
    pub seed: u64,
}

impl QueryParams {
    /// Paper-faithful parameters adapted to a dataset's size.
    pub fn for_dataset(data: &Dataset) -> QueryParams {
        let delta = {
            // δ tuned to the generator's planted bicluster noise (0.05² cell
            // noise): tight enough to find structure, loose enough to stop.
            0.02
        };
        QueryParams {
            function_threshold: genbase_datagen::generate::FUNCTION_FILTER,
            disease_id: data.truth.focus_disease,
            gender: 1,
            max_age: 40,
            patient_sample_frac: 0.0025,
            min_sampled_patients: 12.min(data.n_patients()),
            top_pair_fraction: 0.10,
            svd_k: 50,
            bicluster: ChengChurchConfig {
                delta,
                alpha: 1.2,
                max_biclusters: 1,
                min_rows: 2,
                min_cols: 2,
                seed: 0xb1c1,
                node_addition: true,
            },
            seed: 0x6e55,
        }
    }

    /// Number of patients Query 5 samples from a population of `n`.
    pub fn sample_count(&self, n_patients: usize) -> usize {
        ((n_patients as f64 * self.patient_sample_frac).round() as usize)
            .max(self.min_sampled_patients)
            .min(n_patients)
    }
}

/// One bicluster in engine-output form (global ids, not matrix positions).
#[derive(Debug, Clone, PartialEq)]
pub struct BiclusterOut {
    /// Patient ids in the bicluster.
    pub patient_ids: Vec<i64>,
    /// Gene ids in the bicluster.
    pub gene_ids: Vec<i64>,
    /// Mean squared residue.
    pub msr: f64,
}

/// Typed result of one query; engines must agree on these (see
/// [`QueryOutput::consistency_error`]).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Query 1: fitted model.
    Regression {
        /// Intercept term.
        intercept: f64,
        /// `(gene_id, coefficient)` sorted by gene id.
        coefficients: Vec<(i64, f64)>,
        /// Training R².
        r_squared: f64,
    },
    /// Query 2: thresholded covariance pairs with gene metadata.
    Covariance {
        /// Threshold on |cov| that realizes the top fraction.
        threshold: f64,
        /// `(gene_a, gene_b, cov, function_a, function_b)` sorted by
        /// descending |cov| then ids; metadata columns come from the final
        /// join in the query plan.
        pairs: Vec<(i64, i64, f64, i64, i64)>,
    },
    /// Query 3: discovered biclusters.
    Biclusters(Vec<BiclusterOut>),
    /// Query 4: top eigenvalues of the filtered Gram matrix, descending.
    Svd {
        /// Eigenvalues, descending.
        eigenvalues: Vec<f64>,
    },
    /// Query 5: per-GO-term test results.
    Enrichment {
        /// `(go_term, z, p)` sorted by term index.
        per_term: Vec<(usize, f64, f64)>,
    },
}

impl QueryOutput {
    /// Which query this output answers.
    pub fn query(&self) -> Query {
        match self {
            QueryOutput::Regression { .. } => Query::Regression,
            QueryOutput::Covariance { .. } => Query::Covariance,
            QueryOutput::Biclusters(_) => Query::Biclustering,
            QueryOutput::Svd { .. } => Query::Svd,
            QueryOutput::Enrichment { .. } => Query::Statistics,
        }
    }

    /// One-line human summary for harness output.
    pub fn summary(&self) -> String {
        match self {
            QueryOutput::Regression {
                coefficients,
                r_squared,
                ..
            } => format!("{} coefficients, R^2 = {r_squared:.4}", coefficients.len()),
            QueryOutput::Covariance { pairs, threshold } => {
                format!("{} pairs over |cov| >= {threshold:.4}", pairs.len())
            }
            QueryOutput::Biclusters(bcs) => {
                let cells: usize = bcs
                    .iter()
                    .map(|b| b.patient_ids.len() * b.gene_ids.len())
                    .sum();
                format!("{} bicluster(s) covering {cells} cells", bcs.len())
            }
            QueryOutput::Svd { eigenvalues } => format!(
                "top {} eigenvalues, largest = {:.4}",
                eigenvalues.len(),
                eigenvalues.first().copied().unwrap_or(0.0)
            ),
            QueryOutput::Enrichment { per_term } => {
                let significant = per_term.iter().filter(|&&(_, _, p)| p < 0.01).count();
                format!(
                    "{} terms tested, {significant} with p < 0.01",
                    per_term.len()
                )
            }
        }
    }

    /// `None` when two engines' outputs agree within numerical tolerance;
    /// otherwise a description of the first mismatch. `rel_tol` covers
    /// floating-point drift between algebraically identical computations
    /// (e.g. QR vs normal equations, serial vs allreduce ordering).
    pub fn consistency_error(&self, other: &QueryOutput, rel_tol: f64) -> Option<String> {
        let close = |a: f64, b: f64| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= rel_tol * scale
        };
        match (self, other) {
            (
                QueryOutput::Regression {
                    intercept: i1,
                    coefficients: c1,
                    r_squared: r1,
                },
                QueryOutput::Regression {
                    intercept: i2,
                    coefficients: c2,
                    r_squared: r2,
                },
            ) => {
                if !close(*i1, *i2) {
                    return Some(format!("intercept {i1} vs {i2}"));
                }
                if !close(*r1, *r2) {
                    return Some(format!("R^2 {r1} vs {r2}"));
                }
                if c1.len() != c2.len() {
                    return Some(format!("{} vs {} coefficients", c1.len(), c2.len()));
                }
                for ((g1, v1), (g2, v2)) in c1.iter().zip(c2) {
                    if g1 != g2 {
                        return Some(format!("coefficient genes {g1} vs {g2}"));
                    }
                    if !close(*v1, *v2) {
                        return Some(format!("gene {g1} coefficient {v1} vs {v2}"));
                    }
                }
                None
            }
            (
                QueryOutput::Covariance {
                    threshold: t1,
                    pairs: p1,
                },
                QueryOutput::Covariance {
                    threshold: t2,
                    pairs: p2,
                },
            ) => {
                if !close(*t1, *t2) {
                    return Some(format!("threshold {t1} vs {t2}"));
                }
                if p1.len() != p2.len() {
                    return Some(format!("{} vs {} pairs", p1.len(), p2.len()));
                }
                for (a, b) in p1.iter().zip(p2) {
                    if a.0 != b.0 || a.1 != b.1 {
                        return Some(format!("pair ({},{}) vs ({},{})", a.0, a.1, b.0, b.1));
                    }
                    if !close(a.2, b.2) {
                        return Some(format!("pair ({},{}) cov {} vs {}", a.0, a.1, a.2, b.2));
                    }
                    if a.3 != b.3 || a.4 != b.4 {
                        return Some(format!("pair ({},{}) metadata mismatch", a.0, a.1));
                    }
                }
                None
            }
            (QueryOutput::Biclusters(b1), QueryOutput::Biclusters(b2)) => {
                if b1.len() != b2.len() {
                    return Some(format!("{} vs {} biclusters", b1.len(), b2.len()));
                }
                for (x, y) in b1.iter().zip(b2) {
                    if x.patient_ids != y.patient_ids {
                        return Some("bicluster patient sets differ".into());
                    }
                    if x.gene_ids != y.gene_ids {
                        return Some("bicluster gene sets differ".into());
                    }
                    if !close(x.msr, y.msr) {
                        return Some(format!("bicluster msr {} vs {}", x.msr, y.msr));
                    }
                }
                None
            }
            (QueryOutput::Svd { eigenvalues: e1 }, QueryOutput::Svd { eigenvalues: e2 }) => {
                if e1.len() != e2.len() {
                    return Some(format!("{} vs {} eigenvalues", e1.len(), e2.len()));
                }
                for (i, (a, b)) in e1.iter().zip(e2).enumerate() {
                    if !close(*a, *b) {
                        return Some(format!("eigenvalue {i}: {a} vs {b}"));
                    }
                }
                None
            }
            (
                QueryOutput::Enrichment { per_term: t1 },
                QueryOutput::Enrichment { per_term: t2 },
            ) => {
                if t1.len() != t2.len() {
                    return Some(format!("{} vs {} terms", t1.len(), t2.len()));
                }
                for ((g1, z1, p1), (g2, z2, p2)) in t1.iter().zip(t2) {
                    if g1 != g2 {
                        return Some(format!("terms {g1} vs {g2}"));
                    }
                    if !close(*z1, *z2) {
                        return Some(format!("term {g1} z {z1} vs {z2}"));
                    }
                    if !close(*p1, *p2) {
                        return Some(format!("term {g1} p {p1} vs {p2}"));
                    }
                }
                None
            }
            _ => Some("different query kinds".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_names_and_order() {
        assert_eq!(Query::ALL.len(), 5);
        assert_eq!(Query::ALL[0].name(), "regression");
        assert_eq!(Query::ALL[4].title(), "Statistics");
    }

    #[test]
    fn sample_count_bounds() {
        let data = genbase_datagen::generate(&genbase_datagen::GeneratorConfig::new(
            genbase_datagen::SizeSpec::tiny(),
        ))
        .unwrap();
        let p = QueryParams::for_dataset(&data);
        // 0.25% of 50 rounds to 0; the minimum keeps it meaningful.
        assert_eq!(p.sample_count(50), 12);
        assert_eq!(p.sample_count(100_000), 250);
        assert_eq!(p.sample_count(4), 4);
    }

    #[test]
    fn consistency_detects_matches_and_mismatches() {
        let a = QueryOutput::Svd {
            eigenvalues: vec![10.0, 5.0, 1.0],
        };
        let b = QueryOutput::Svd {
            eigenvalues: vec![10.0 + 1e-9, 5.0, 1.0],
        };
        assert!(a.consistency_error(&b, 1e-6).is_none());
        let c = QueryOutput::Svd {
            eigenvalues: vec![10.1, 5.0, 1.0],
        };
        assert!(a.consistency_error(&c, 1e-6).is_some());
        let d = QueryOutput::Enrichment { per_term: vec![] };
        assert!(a.consistency_error(&d, 1e-6).is_some());
    }

    #[test]
    fn summaries_render() {
        let out = QueryOutput::Regression {
            intercept: 1.0,
            coefficients: vec![(3, 0.5)],
            r_squared: 0.95,
        };
        assert!(out.summary().contains("R^2"));
        assert_eq!(out.query(), Query::Regression);
    }
}
