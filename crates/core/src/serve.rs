//! The resident benchmark server behind `paper_harness serve`.
//!
//! A batch sweep pays dataset generation and plan compilation on every
//! invocation. This module keeps that state resident — the pool-backed
//! [`Scheduler`] (datasets, engine registry) and the compiled
//! [`LogicalPlan`]s — inside one long-running process that answers query /
//! explain / status requests from many concurrent clients, on two listeners:
//!
//! - a **framed** listener speaking the same `genbase-coord-v1` codec as the
//!   distributed coordinator (`hello`/`welcome` handshake with the same
//!   auth-token rules, then `query` / `explain` / `status` request frames);
//! - a minimal **HTTP/1.1** listener (`GET /status`, `GET /metrics` in
//!   Prometheus text format, `POST /query`).
//!
//! Under `TimingMode::SimOnly` a served query's outcome JSON is byte-identical
//! to the same cell's entry in a batch sweep grid: both sides are
//! [`CellOutcome::to_json`] over the same deterministic execution.
//!
//! **Admission control.** Each request carries a working-set estimate
//! ([`working_set_estimate`]) that is reserved against a [`MemTracker`]
//! budget (`--mem-budget`) before the query runs. A request that cannot
//! reserve queues behind a bounded backpressure queue (`--queue-depth`) and
//! is admitted when memory frees; queue overflow — and an estimate larger
//! than the whole budget — returns a clean 429-style rejection (a `busy`
//! frame, HTTP 429) that shows up in `/metrics` instead of an OOM.
//!
//! **Shutdown.** SIGTERM (via [`genbase_util::shutdown`]) or the options'
//! stop flag drains the server: in-flight queries run to completion, queued
//! admissions are rejected as draining, idle connections get a `bye`, and
//! [`BenchServer::serve`] returns a final [`ServeReport`].

use crate::engine::StreamConfig;
use crate::figures;
use crate::harness::{HarnessConfig, TimingMode};
use crate::plan::{logical_plan, LogicalPlan, Phase};
use crate::query::Query;
use crate::sched::{config_fingerprint, CellKey, CellOutcome, FigureId, Scheduler};
use genbase_datagen::{SizeClass, SizeSpec};
use genbase_storage::{ArtifactCache, CacheScope, MemTracker, Reservation};
use genbase_util::frame::{read_frame_opt, write_frame};
use genbase_util::{http, shutdown, Error, Json, Result};
use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Multiplier from raw microarray bytes to a conservative working-set
/// estimate: source columns + pivoted dense copy + one materialized
/// intermediate + kernel output headroom.
const WORKING_SET_FACTOR: u64 = 4;

/// Floor on the working-set estimate, so admission stays meaningful at the
/// tiny CI scales where a dataset is a few hundred kilobytes.
const MIN_ESTIMATE_BYTES: u64 = 1 << 20;

/// Read timeout for an idle connection; doubles as the drain poll interval
/// (every idle connection notices a drain within one tick).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Read timeout for the handshake and for HTTP requests: a peer that takes
/// longer than this to produce its first bytes is wedged, not slow.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a queued request waits between admission retries.
const ADMIT_POLL: Duration = Duration::from_millis(20);

/// Conservative bytes a query against `size` will hold live at peak, the
/// quantity the admission controller reserves against the `--mem-budget`
/// tracker before the query may run.
pub fn working_set_estimate(config: &HarnessConfig, size: SizeClass) -> u64 {
    SizeSpec::scaled(size, config.scale)
        .bytes()
        .saturating_mul(WORKING_SET_FACTOR)
        .max(MIN_ESTIMATE_BYTES)
}

/// Server tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Shared-secret token; when set, framed clients must present it in
    /// `hello` (same mutual-agreement rule as the coordinator) and HTTP
    /// `POST /query` must carry it (`Authorization: Bearer <token>`).
    pub auth_token: Option<String>,
    /// Admission budget in bytes; `None` admits everything immediately.
    pub mem_budget: Option<u64>,
    /// Bounded backpressure queue: how many over-budget requests may wait
    /// for memory before further ones are rejected outright. 0 = no queue.
    pub queue_depth: usize,
    /// Artifact-cache budget in bytes (`--cache-budget`); `None` disables
    /// the cache and every conversion runs cold. The cache charges its own
    /// [`MemTracker`], never a run's `--mem-budget` tracker.
    pub cache_budget: Option<u64>,
    /// Enable the served-result cache (`--result-cache`): a completed
    /// SimOnly outcome is replayed byte-identically for repeat queries on
    /// the same cell. Ignored (always cold) under measured timing, where
    /// wall-clock fields make replays non-identical by construction.
    pub result_cache: bool,
    /// External stop flag (tests); SIGTERM via [`shutdown`] always works.
    pub stop: Option<Arc<AtomicBool>>,
}

impl ServeOptions {
    /// Require `token` from framed clients and HTTP query submitters.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> ServeOptions {
        self.auth_token = Some(token.into());
        self
    }

    /// Set the admission budget in bytes.
    pub fn with_mem_budget(mut self, bytes: u64) -> ServeOptions {
        self.mem_budget = Some(bytes);
        self
    }

    /// Set the backpressure queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> ServeOptions {
        self.queue_depth = depth;
        self
    }

    /// Set the artifact-cache budget in bytes.
    pub fn with_cache_budget(mut self, bytes: u64) -> ServeOptions {
        self.cache_budget = Some(bytes);
        self
    }

    /// Enable the served-result cache.
    pub fn with_result_cache(mut self) -> ServeOptions {
        self.result_cache = true;
        self
    }

    /// Attach an external stop flag (set it to drain the server).
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> ServeOptions {
        self.stop = Some(stop);
        self
    }
}

/// Final tallies returned by [`BenchServer::serve`] after a drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Query/explain requests answered (including "infinite" outcomes).
    pub served: u64,
    /// Requests that failed with a hard error.
    pub failed: u64,
    /// Requests rejected by admission control (all reasons).
    pub rejected: u64,
}

/// Why admission control turned a request away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The estimate exceeds the whole budget — it can never be admitted.
    OverBudget {
        /// The request's working-set estimate.
        estimate: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The backpressure queue is full.
    QueueFull {
        /// The configured queue bound.
        depth: usize,
    },
    /// The server is draining and admits nothing new.
    Draining,
}

impl Rejection {
    /// Human-readable rejection reason (busy frames, HTTP bodies).
    pub fn reason(&self) -> String {
        match self {
            Rejection::OverBudget { estimate, budget } => format!(
                "working-set estimate of {estimate} bytes exceeds the \
                 {budget}-byte memory budget"
            ),
            Rejection::QueueFull { depth } => {
                format!("admission queue full ({depth} waiting); retry later")
            }
            Rejection::Draining => "server is draining; not accepting new work".to_string(),
        }
    }

    /// The `/metrics` label and HTTP status for this rejection.
    fn label_and_status(&self) -> (&'static str, u16) {
        match self {
            Rejection::OverBudget { .. } => ("over_budget", 429),
            Rejection::QueueFull { .. } => ("queue_full", 429),
            Rejection::Draining => ("draining", 503),
        }
    }
}

/// The admission controller: a [`MemTracker`] holding the budget plus the
/// bounded wait queue in front of it.
struct Admission {
    tracker: MemTracker,
    queue_depth: usize,
    queued: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    fn new(budget: Option<u64>, queue_depth: usize) -> Admission {
        Admission {
            tracker: MemTracker::new(budget),
            queue_depth,
            queued: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    fn queued(&self) -> usize {
        *self.queued.lock().expect("admission queue")
    }

    /// Reserve `estimate` bytes, waiting in the bounded queue if the budget
    /// is currently exhausted. `draining` is polled while waiting.
    fn admit(
        &self,
        estimate: u64,
        draining: &dyn Fn() -> bool,
    ) -> std::result::Result<Reservation, Rejection> {
        if draining() {
            return Err(Rejection::Draining);
        }
        if estimate > self.tracker.limit() {
            return Err(Rejection::OverBudget {
                estimate,
                budget: self.tracker.limit(),
            });
        }
        if let Ok(r) = self.tracker.reserve(estimate) {
            return Ok(r);
        }
        let mut queued = self.queued.lock().expect("admission queue");
        if *queued >= self.queue_depth {
            return Err(Rejection::QueueFull {
                depth: self.queue_depth,
            });
        }
        *queued += 1;
        loop {
            if draining() {
                *queued -= 1;
                return Err(Rejection::Draining);
            }
            match self.tracker.reserve(estimate) {
                Ok(r) => {
                    *queued -= 1;
                    return Ok(r);
                }
                Err(_) => {
                    // Reservations release through RAII drops that cannot
                    // signal the condvar, so the wait is a bounded poll.
                    let (guard, _) = self
                        .freed
                        .wait_timeout(queued, ADMIT_POLL)
                        .expect("admission queue");
                    queued = guard;
                }
            }
        }
    }
}

/// Monotonic counters and gauges behind `GET /metrics`.
#[derive(Default)]
struct Metrics {
    /// Answered queries per engine (completed + infinite + unsupported).
    queries: Mutex<BTreeMap<String, u64>>,
    served: AtomicU64,
    failed: AtomicU64,
    dm_sim_nanos: AtomicU64,
    an_sim_nanos: AtomicU64,
    bytes_moved: AtomicU64,
    peak_alloc: AtomicU64,
    stream_batches: AtomicU64,
    spill_bytes: AtomicU64,
    rejected_over_budget: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_draining: AtomicU64,
    inflight: AtomicU64,
    connections: AtomicU64,
    /// Result-cache replays (a subset of `served`).
    result_hits: AtomicU64,
    /// The most recent admission reservation estimate, after any
    /// artifact-cache shrink — the observable that warm admission is
    /// cheaper than cold.
    last_estimate: AtomicU64,
}

impl Metrics {
    fn record_outcome(&self, engine: &str, outcome: &CellOutcome) {
        self.served.fetch_add(1, Ordering::Relaxed);
        *self
            .queries
            .lock()
            .expect("metrics")
            .entry(engine.to_string())
            .or_insert(0) += 1;
        if let CellOutcome::Completed { trace, .. } = outcome {
            for op in trace {
                let nanos = op.cost.sim_nanos;
                match op.phase {
                    Phase::DataManagement => &self.dm_sim_nanos,
                    Phase::Analytics => &self.an_sim_nanos,
                }
                .fetch_add(nanos, Ordering::Relaxed);
                self.bytes_moved
                    .fetch_add(op.cost.bytes_moved(), Ordering::Relaxed);
                self.peak_alloc
                    .fetch_max(op.cost.peak_alloc_bytes, Ordering::Relaxed);
                self.stream_batches
                    .fetch_add(op.cost.batches, Ordering::Relaxed);
                self.spill_bytes
                    .fetch_add(op.cost.spill_bytes, Ordering::Relaxed);
            }
        }
    }

    fn record_rejection(&self, rejection: &Rejection) {
        match rejection.label_and_status().0 {
            "over_budget" => &self.rejected_over_budget,
            "queue_full" => &self.rejected_queue_full,
            _ => &self.rejected_draining,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn rejected_total(&self) -> u64 {
        self.rejected_over_budget.load(Ordering::Relaxed)
            + self.rejected_queue_full.load(Ordering::Relaxed)
            + self.rejected_draining.load(Ordering::Relaxed)
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    scheduler: Scheduler,
    fingerprint: String,
    /// Compiled logical plans, one per query, kept resident for the life
    /// of the server (request validation + the `plans` status field).
    plans: Vec<LogicalPlan>,
    engine_names: Vec<String>,
    options: ServeOptions,
    admission: Admission,
    metrics: Metrics,
    draining: AtomicBool,
    /// The artifact cache (when `--cache-budget` is set), scoped under this
    /// server's config fingerprint — the same scope the harness injects
    /// into every run's [`crate::engine::ExecContext`].
    cache: Option<CacheScope>,
    /// Completed SimOnly replies by cell id, replayed byte-identically for
    /// repeat queries. `None` when `--result-cache` is off or timing is
    /// measured.
    results: Option<Mutex<HashMap<String, Json>>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed) || self.stop_requested()
    }

    fn stop_requested(&self) -> bool {
        shutdown::requested()
            || self
                .options
                .stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    fn config(&self) -> &HarnessConfig {
        self.scheduler.harness().config()
    }

    /// Resolve an engine name case-insensitively to its canonical form.
    fn canonical_engine(&self, name: &str) -> Result<String> {
        self.engine_names
            .iter()
            .find(|e| e.eq_ignore_ascii_case(name))
            .cloned()
            .ok_or_else(|| Error::invalid(format!("unknown engine {name:?}")))
    }

    /// Build the cell key a query request names. `engine` and `query` are
    /// required; `size` defaults to the first configured size class,
    /// `nodes` to 1 and `figure` to fig1.
    fn cell_from_request(&self, req: &Json) -> Result<CellKey> {
        let engine = req
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::invalid("query request missing engine"))?;
        let query = req
            .get("query")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::invalid("query request missing query"))?;
        let query = Query::from_name(query)
            .ok_or_else(|| Error::invalid(format!("unknown query {query:?}")))?;
        let size = match req.get("size").and_then(Json::as_str) {
            Some(slug) => SizeClass::from_slug(slug)
                .ok_or_else(|| Error::invalid(format!("unknown size {slug:?}")))?,
            None => *self
                .config()
                .sizes
                .first()
                .ok_or_else(|| Error::invalid("server has no configured sizes"))?,
        };
        if !self.config().sizes.contains(&size) {
            return Err(Error::invalid(format!(
                "size {:?} is not resident on this server (configured: {:?})",
                size.slug(),
                self.config()
                    .sizes
                    .iter()
                    .map(|s| s.slug())
                    .collect::<Vec<_>>()
            )));
        }
        let figure = match req.get("figure").and_then(Json::as_str) {
            Some(name) => FigureId::from_name(name)
                .ok_or_else(|| Error::invalid(format!("unknown figure {name:?}")))?,
            None => FigureId::Fig1,
        };
        Ok(CellKey {
            figure,
            query,
            size,
            nodes: req.get("nodes").and_then(Json::as_u64).unwrap_or(1) as usize,
            engine: self.canonical_engine(engine)?,
        })
    }

    /// Parse the optional per-request streaming override: `"stream":
    /// "staged"` or `"stream": "fused"` replaces the fused bit of the
    /// server's resident `--stream` config for this query only, so one
    /// server can answer both paths back to back. Requires the server to
    /// have been started with `--stream`; an absent field runs the cell
    /// exactly as configured.
    fn stream_from_request(&self, req: &Json) -> Result<Option<StreamConfig>> {
        let Some(mode) = req.get("stream").and_then(Json::as_str) else {
            return Ok(None);
        };
        let fused = match mode {
            "staged" => false,
            "fused" => true,
            other => {
                return Err(Error::invalid(format!(
                    "unknown stream mode {other:?} (expected \"staged\" or \"fused\")"
                )))
            }
        };
        let Some(base) = self.config().stream.clone() else {
            return Err(Error::invalid(
                "stream override requires a server started with --stream",
            ));
        };
        Ok(Some(StreamConfig { fused, ..base }))
    }

    /// The working-set bytes the admission controller reserves for a query
    /// against `size`: the cold estimate minus whatever conversion
    /// artifacts for that dataset are already resident in the cache
    /// (still floored at [`MIN_ESTIMATE_BYTES`] — a warm query is cheaper,
    /// never free).
    fn admission_estimate(&self, size: SizeClass) -> u64 {
        let base = working_set_estimate(self.config(), size);
        let Some(scope) = &self.cache else {
            return base;
        };
        let spec = SizeSpec::scaled(size, self.config().scale);
        let resident = scope
            .cache()
            .bytes_under_prefix(&scope.size_prefix(spec.patients, spec.genes));
        base.saturating_sub(resident).max(MIN_ESTIMATE_BYTES)
    }

    /// Admit and execute one query request; the reservation is held for
    /// exactly the duration of the run. A result-cache hit replays the
    /// stored reply without admission: no storage is touched, so there is
    /// nothing to reserve.
    /// A `stream` override bypasses the result cache entirely — the cell id
    /// does not encode the streaming mode, and staged/fused traces differ
    /// in their memory columns by design.
    fn execute(
        &self,
        key: &CellKey,
        stream: Option<StreamConfig>,
    ) -> std::result::Result<Json, ServeError> {
        let id = key.id();
        if let (Some(results), None) = (&self.results, &stream) {
            if let Some(reply) = results.lock().expect("result cache").get(&id) {
                self.metrics.result_hits.fetch_add(1, Ordering::Relaxed);
                self.metrics.served.fetch_add(1, Ordering::Relaxed);
                *self
                    .metrics
                    .queries
                    .lock()
                    .expect("metrics")
                    .entry(key.engine.clone())
                    .or_insert(0) += 1;
                return Ok(reply.clone());
            }
        }
        let estimate = self.admission_estimate(key.size);
        self.metrics
            .last_estimate
            .store(estimate, Ordering::Relaxed);
        let _reservation = self
            .admission
            .admit(estimate, &|| self.draining())
            .map_err(|r| {
                self.metrics.record_rejection(&r);
                ServeError::Rejected(r)
            })?;
        self.metrics.inflight.fetch_add(1, Ordering::Relaxed);
        let threads = self.config().threads.max(1);
        let stream_cached = stream.is_none();
        let run = match stream {
            Some(s) => self.scheduler.run_cell_with_stream(key, threads, s),
            None => self.scheduler.run_cell(key, threads),
        };
        self.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
        match run {
            Ok(outcome) => {
                self.metrics.record_outcome(&key.engine, &outcome);
                let mut reply = Json::obj();
                reply.set("type", Json::from("result"));
                reply.set("cell", Json::from(id.as_str()));
                reply.set("outcome", outcome.to_json());
                if let (Some(results), CellOutcome::Completed { .. }) = (&self.results, &outcome) {
                    if stream_cached {
                        results
                            .lock()
                            .expect("result cache")
                            .insert(id, reply.clone());
                    }
                }
                Ok(reply)
            }
            Err(e) => {
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Failed(e))
            }
        }
    }

    /// The `/status` document (also the framed `status` reply).
    fn status_json(&self) -> Json {
        let mut m = Json::obj();
        m.set("type", Json::from("status"));
        m.set("service", Json::from("serve"));
        m.set(
            "state",
            Json::from(if self.draining() {
                "draining"
            } else {
                "serving"
            }),
        );
        m.set("fingerprint", Json::from(self.fingerprint.as_str()));
        m.set("plans", Json::from(self.plans.len()));
        m.set(
            "engines",
            Json::Arr(
                self.engine_names
                    .iter()
                    .map(|e| Json::from(e.as_str()))
                    .collect(),
            ),
        );
        m.set(
            "sizes",
            Json::Arr(
                self.config()
                    .sizes
                    .iter()
                    .map(|s| Json::from(s.slug()))
                    .collect(),
            ),
        );
        // Mirrors of the coordinator snapshot's progress keys.
        m.set(
            "done",
            Json::from(self.metrics.served.load(Ordering::Relaxed)),
        );
        m.set(
            "failed",
            Json::from(self.metrics.failed.load(Ordering::Relaxed)),
        );
        m.set("pending", Json::from(self.admission.queued()));
        m.set(
            "leased",
            Json::from(self.metrics.inflight.load(Ordering::Relaxed)),
        );
        m.set("rejected", Json::from(self.metrics.rejected_total()));
        m.set(
            "workers",
            Json::from(self.metrics.connections.load(Ordering::Relaxed)),
        );
        m.set(
            "mem_budget",
            match self.options.mem_budget {
                Some(bytes) => Json::from(bytes),
                None => Json::Null,
            },
        );
        m.set("mem_reserved", Json::from(self.admission.tracker.current()));
        m.set("queue_depth", Json::from(self.admission.queue_depth));
        match &self.cache {
            Some(scope) => {
                let cache = scope.cache();
                m.set("cache_budget", Json::from(cache.budget()));
                m.set("cache_bytes", Json::from(cache.bytes()));
                m.set("cache_entries", Json::from(cache.entries()));
                m.set("cache_hits", Json::from(cache.hit_count()));
                m.set("cache_misses", Json::from(cache.miss_count()));
                m.set("cache_evictions", Json::from(cache.eviction_count()));
            }
            None => m.set("cache_budget", Json::Null),
        }
        m.set("result_cache", Json::Bool(self.results.is_some()));
        m.set(
            "result_cache_hits",
            Json::from(self.metrics.result_hits.load(Ordering::Relaxed)),
        );
        if let Some(results) = &self.results {
            m.set(
                "result_cache_entries",
                Json::from(results.lock().expect("result cache").len()),
            );
        }
        m
    }

    /// Render the Prometheus text exposition for `GET /metrics`.
    fn metrics_text(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        out.push_str(
            "# HELP genbase_queries_total Answered query requests per engine.\n\
             # TYPE genbase_queries_total counter\n",
        );
        for (engine, count) in m.queries.lock().expect("metrics").iter() {
            out.push_str(&format!(
                "genbase_queries_total{{engine=\"{engine}\"}} {count}\n"
            ));
        }
        counter(
            &mut out,
            "genbase_served_total",
            "Answered query requests, all engines.",
            m.served.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "genbase_query_failures_total",
            "Query requests that failed with a hard error.",
            m.failed.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP genbase_phase_sim_nanos_total Simulated nanoseconds per plan phase.\n\
             # TYPE genbase_phase_sim_nanos_total counter\n",
        );
        for (phase, counter_ref) in [("dm", &m.dm_sim_nanos), ("analytics", &m.an_sim_nanos)] {
            out.push_str(&format!(
                "genbase_phase_sim_nanos_total{{phase=\"{phase}\"}} {}\n",
                counter_ref.load(Ordering::Relaxed)
            ));
        }
        counter(
            &mut out,
            "genbase_bytes_moved_total",
            "Storage-layer bytes read plus materialized across served queries.",
            m.bytes_moved.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "genbase_peak_alloc_bytes",
            "Largest per-operator peak allocation observed.",
            m.peak_alloc.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "genbase_stream_batches_total",
            "Morsel batches streamed across served queries (zero unless serving with --stream).",
            m.stream_batches.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "genbase_spill_bytes_total",
            "Bytes spilled to disk by streaming reels across served queries.",
            m.spill_bytes.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP genbase_rejected_total Requests turned away by admission control.\n\
             # TYPE genbase_rejected_total counter\n",
        );
        for (reason, counter_ref) in [
            ("over_budget", &m.rejected_over_budget),
            ("queue_full", &m.rejected_queue_full),
            ("draining", &m.rejected_draining),
        ] {
            out.push_str(&format!(
                "genbase_rejected_total{{reason=\"{reason}\"}} {}\n",
                counter_ref.load(Ordering::Relaxed)
            ));
        }
        gauge(
            &mut out,
            "genbase_queue_depth",
            "Requests currently waiting for admission.",
            self.admission.queued() as u64,
        );
        gauge(
            &mut out,
            "genbase_inflight",
            "Queries currently executing.",
            m.inflight.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "genbase_mem_reserved_bytes",
            "Bytes currently reserved by admitted requests.",
            self.admission.tracker.current(),
        );
        if let Some(budget) = self.options.mem_budget {
            gauge(
                &mut out,
                "genbase_mem_budget_bytes",
                "Configured admission budget.",
                budget,
            );
        }
        gauge(
            &mut out,
            "genbase_connections",
            "Open client connections (framed + HTTP).",
            m.connections.load(Ordering::Relaxed),
        );
        // Cache counters are always exposed (zero when caching is off), so
        // dashboards and the CI identity check can grep unconditionally.
        let (artifact_hits, artifact_misses, evictions, cache_bytes) = match &self.cache {
            Some(scope) => {
                let c = scope.cache();
                (c.hit_count(), c.miss_count(), c.eviction_count(), c.bytes())
            }
            None => (0, 0, 0, 0),
        };
        let result_hits = m.result_hits.load(Ordering::Relaxed);
        counter(
            &mut out,
            "genbase_cache_hits_total",
            "Cache hits: artifact-cache conversion replays plus result-cache reply replays.",
            artifact_hits + result_hits,
        );
        counter(
            &mut out,
            "genbase_cache_misses_total",
            "Artifact-cache misses (cold conversions that filled or bypassed the cache).",
            artifact_misses,
        );
        counter(
            &mut out,
            "genbase_cache_evictions_total",
            "Artifact-cache entries evicted under the --cache-budget LRU.",
            evictions,
        );
        gauge(
            &mut out,
            "genbase_cache_bytes",
            "Bytes currently charged to the artifact cache's tracker.",
            cache_bytes,
        );
        counter(
            &mut out,
            "genbase_result_cache_hits_total",
            "Served queries answered by replaying a completed SimOnly result.",
            result_hits,
        );
        gauge(
            &mut out,
            "genbase_admission_estimate_bytes",
            "Most recent admission reservation estimate (shrinks on warm artifacts).",
            m.last_estimate.load(Ordering::Relaxed),
        );
        out
    }
}

/// How a request ended without an answer.
enum ServeError {
    Rejected(Rejection),
    Failed(Error),
}

/// The resident benchmark server: bind with [`BenchServer::bind`], run with
/// [`BenchServer::serve`].
pub struct BenchServer {
    frame_listener: TcpListener,
    http_listener: TcpListener,
    shared: Shared,
}

impl BenchServer {
    /// Bind the framed and HTTP listeners (use port 0 for ephemeral), build
    /// the resident scheduler, pre-generate every configured dataset and
    /// compile all five logical plans. Nothing is served until
    /// [`BenchServer::serve`].
    pub fn bind(
        frame_addr: impl ToSocketAddrs,
        http_addr: impl ToSocketAddrs,
        config: HarnessConfig,
        options: ServeOptions,
    ) -> Result<BenchServer> {
        let frame_listener = TcpListener::bind(frame_addr)
            .map_err(|e| Error::invalid(format!("serve bind (framed): {e}")))?;
        let http_listener = TcpListener::bind(http_addr)
            .map_err(|e| Error::invalid(format!("serve bind (http): {e}")))?;
        for listener in [&frame_listener, &http_listener] {
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::invalid(format!("serve listener: {e}")))?;
        }
        let fingerprint = config_fingerprint(&config);
        let mut scheduler = Scheduler::new(config)?;
        let cache = options.cache_budget.map(|budget| {
            let cache = ArtifactCache::new(budget);
            scheduler.harness_mut().set_artifact_cache(cache.clone());
            CacheScope::new(cache, fingerprint.clone())
        });
        // Result replays are only byte-identical under deterministic
        // timing; measured runs carry wall-clock fields, so the flag is
        // inert there and every query runs cold.
        let results = (options.result_cache
            && scheduler.harness().config().timing == TimingMode::SimOnly)
            .then(|| Mutex::new(HashMap::new()));
        // Warm the pool: every configured size is generated now, so the
        // first query pays no generation latency and concurrent first
        // requests cannot race dataset construction.
        for &size in &scheduler.harness().config().sizes.clone() {
            scheduler.harness().dataset(size)?;
        }
        let plans = Query::ALL.into_iter().map(logical_plan).collect();
        let engine_names = crate::engines::all_engines()
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        let admission = Admission::new(options.mem_budget, options.queue_depth);
        Ok(BenchServer {
            frame_listener,
            http_listener,
            shared: Shared {
                scheduler,
                fingerprint,
                plans,
                engine_names,
                options,
                admission,
                metrics: Metrics::default(),
                draining: AtomicBool::new(false),
                cache,
                results,
            },
        })
    }

    /// The framed listener's bound address.
    pub fn frame_addr(&self) -> Result<SocketAddr> {
        self.frame_listener
            .local_addr()
            .map_err(|e| Error::invalid(format!("serve addr: {e}")))
    }

    /// The HTTP listener's bound address.
    pub fn http_addr(&self) -> Result<SocketAddr> {
        self.http_listener
            .local_addr()
            .map_err(|e| Error::invalid(format!("serve addr: {e}")))
    }

    /// Accept and answer requests until SIGTERM or the stop flag, then
    /// drain: stop accepting, let in-flight queries finish, turn queued
    /// admissions away as draining, and join every connection handler.
    pub fn serve(&self) -> Result<ServeReport> {
        let shared = &self.shared;
        // Scoped handler threads: the scheduler (and its `dyn Engine`
        // registry) is `Sync` but not `Send`, so handlers borrow it for
        // the scope's lifetime instead of owning an `Arc`. The scope exit
        // joins every handler, which is exactly the drain barrier.
        let accept_result = std::thread::scope(|scope| {
            let mut result = Ok(());
            'accept: while !shared.stop_requested() {
                let mut accepted = false;
                for (listener, framed) in
                    [(&self.frame_listener, true), (&self.http_listener, false)]
                {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accepted = true;
                            scope.spawn(move || {
                                let _ = stream.set_nodelay(true);
                                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                                if framed {
                                    handle_frame_conn(stream, shared);
                                } else {
                                    handle_http_conn(stream, shared);
                                }
                                shared.metrics.connections.fetch_sub(1, Ordering::Relaxed);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(e) => {
                            result = Err(Error::invalid(format!("serve accept: {e}")));
                            break 'accept;
                        }
                    }
                }
                if !accepted {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            // Drain: no new admissions; every idle connection notices
            // within one IDLE_POLL tick and gets a `bye`; in-flight
            // queries complete and deliver their result before their
            // handler exits (and the scope joins it).
            shared.draining.store(true, Ordering::Relaxed);
            result
        });
        accept_result?;
        Ok(ServeReport {
            served: shared.metrics.served.load(Ordering::Relaxed),
            failed: shared.metrics.failed.load(Ordering::Relaxed),
            rejected: shared.metrics.rejected_total(),
        })
    }
}

fn msg(kind: &str) -> Json {
    let mut m = Json::obj();
    m.set("type", Json::from(kind));
    m
}

fn msg_type(m: &Json) -> Result<&str> {
    m.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| Error::invalid("frame missing type"))
}

/// Validate a framed client's `hello` and send `welcome`/`reject`. Auth
/// runs before anything else (same rules as the coordinator, token never
/// echoed); a `config` fingerprint is optional for clients but checked
/// when present.
fn frame_handshake(stream: &mut TcpStream, shared: &Shared) -> Result<()> {
    let hello = read_frame_opt(stream)?.ok_or_else(|| Error::invalid("closed before hello"))?;
    let reject = |stream: &mut TcpStream, reason: String| -> Result<()> {
        let mut m = msg("reject");
        m.set("reason", Json::from(reason.as_str()));
        let _ = write_frame(stream, &m);
        Err(Error::invalid(reason))
    };
    if msg_type(&hello)? != "hello" {
        return reject(stream, "expected hello".to_string());
    }
    match hello.get("protocol").and_then(Json::as_str) {
        Some(crate::coord::PROTOCOL) => {}
        other => {
            return reject(
                stream,
                format!(
                    "protocol mismatch: client speaks {other:?}, want {:?}",
                    crate::coord::PROTOCOL
                ),
            )
        }
    }
    let presented = hello.get("token").and_then(Json::as_str);
    if presented != shared.options.auth_token.as_deref() {
        let reason = if shared.options.auth_token.is_some() {
            "auth token mismatch; connect with the server's --auth-token"
        } else {
            "auth token mismatch: this server has no --auth-token configured"
        };
        return reject(stream, reason.to_string());
    }
    match hello.get("role").and_then(Json::as_str) {
        None | Some("client") | Some("status") => {}
        Some(other) => return reject(stream, format!("unknown hello role {other:?}")),
    }
    if let Some(have) = hello.get("config").and_then(Json::as_str) {
        if have != shared.fingerprint {
            return reject(
                stream,
                format!(
                    "config fingerprint mismatch ({have} vs {}); \
                     connect with the server's flags or omit config",
                    shared.fingerprint
                ),
            );
        }
    }
    let mut welcome = msg("welcome");
    welcome.set("service", Json::from("serve"));
    welcome.set("fingerprint", Json::from(shared.fingerprint.as_str()));
    write_frame(stream, &welcome)
}

/// One framed connection: handshake, then request/reply until the client
/// leaves, errors, or the server drains.
fn handle_frame_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    if frame_handshake(&mut stream, shared).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    loop {
        // Poll for readability so a drain is noticed between requests;
        // peek honors the read timeout without consuming bytes.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    let mut bye = msg("bye");
                    bye.set("reason", Json::from("draining"));
                    let _ = write_frame(&mut stream, &bye);
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let frame = match read_frame_opt(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let reply = match dispatch_frame(&frame, shared) {
            Ok(reply) => reply,
            Err(e) => {
                let mut reject = msg("reject");
                reject.set("reason", Json::from(e.to_string().as_str()));
                let _ = write_frame(&mut stream, &reject);
                return;
            }
        };
        let closing = matches!(msg_type(&reply), Ok("bye"));
        if write_frame(&mut stream, &reply).is_err() || closing {
            return;
        }
    }
}

/// Route one post-handshake frame to its reply. Admission rejections are
/// `busy` replies (the connection stays open so the client can retry);
/// protocol errors bubble up as `Err` and close the connection.
fn dispatch_frame(frame: &Json, shared: &Shared) -> Result<Json> {
    match msg_type(frame)? {
        "query" => {
            let key = shared.cell_from_request(frame)?;
            let stream = shared.stream_from_request(frame)?;
            match shared.execute(&key, stream) {
                Ok(reply) => Ok(reply),
                Err(ServeError::Rejected(r)) => {
                    let mut busy = msg("busy");
                    busy.set("reason", Json::from(r.reason().as_str()));
                    busy.set(
                        "retry",
                        Json::Bool(!matches!(r, Rejection::OverBudget { .. })),
                    );
                    Ok(busy)
                }
                Err(ServeError::Failed(e)) => {
                    let mut failed = msg("failed");
                    failed.set("cell", Json::from(key.id().as_str()));
                    failed.set("error", Json::from(e.to_string().as_str()));
                    Ok(failed)
                }
            }
        }
        "explain" => {
            let engine = frame.get("engine").and_then(Json::as_str);
            let query = match frame.get("query").and_then(Json::as_str) {
                Some(name) => Some(
                    Query::from_name(name)
                        .ok_or_else(|| Error::invalid(format!("unknown query {name:?}")))?,
                ),
                None => None,
            };
            let size = match frame.get("size").and_then(Json::as_str) {
                Some(slug) => SizeClass::from_slug(slug)
                    .ok_or_else(|| Error::invalid(format!("unknown size {slug:?}")))?,
                None => *shared
                    .config()
                    .sizes
                    .first()
                    .ok_or_else(|| Error::invalid("server has no configured sizes"))?,
            };
            let nodes = frame.get("nodes").and_then(Json::as_u64).unwrap_or(1) as usize;
            let estimate = shared.admission_estimate(size);
            let _reservation = shared
                .admission
                .admit(estimate, &|| shared.draining())
                .map_err(|r| {
                    shared.metrics.record_rejection(&r);
                    Error::invalid(r.reason())
                })?;
            let harness = shared.scheduler.harness();
            let mut reply = msg("result");
            if matches!(frame.get("json"), Some(Json::Bool(true))) {
                let text = figures::explain_json(harness, size, nodes, engine, query)?;
                reply.set("explain_json", Json::from(text.as_str()));
            } else {
                let fig = figures::explain(harness, size, nodes, engine, query)?;
                reply.set("explain", Json::from(fig.render().as_str()));
            }
            Ok(reply)
        }
        "status" => Ok(shared.status_json()),
        "leave" => Ok(msg("bye")),
        other => Err(Error::invalid(format!("unexpected frame type {other:?}"))),
    }
}

/// One HTTP connection: a single request, a single response, close.
fn handle_http_conn(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let request = match http::read_request(&mut reader) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(e) => {
            let _ = http::write_response(
                &mut writer,
                400,
                "text/plain",
                format!("bad request: {e}\n").as_bytes(),
            );
            return;
        }
    };
    let (status, content_type, body) = route_http(&request, shared);
    let _ = http::write_response(&mut writer, status, content_type, body.as_bytes());
}

/// Route one HTTP request to `(status, content-type, body)`.
fn route_http(request: &http::HttpRequest, shared: &Shared) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/status") => (200, "application/json", shared.status_json().render()),
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            shared.metrics_text(),
        ),
        ("POST", "/query") => {
            if let Some(token) = shared.options.auth_token.as_deref() {
                let authorized = request.header("authorization")
                    == Some(format!("Bearer {token}").as_str())
                    || request.header("x-genbase-token") == Some(token);
                if !authorized {
                    return (
                        401,
                        "text/plain",
                        "missing or wrong auth token\n".to_string(),
                    );
                }
            }
            let body = match std::str::from_utf8(&request.body) {
                Ok(text) => text,
                Err(_) => return (400, "text/plain", "body is not UTF-8\n".to_string()),
            };
            let req = match Json::parse(body) {
                Ok(req) => req,
                Err(e) => return (400, "text/plain", format!("bad request body: {e}\n")),
            };
            let key = match shared.cell_from_request(&req) {
                Ok(key) => key,
                Err(e) => return (400, "text/plain", format!("{e}\n")),
            };
            let stream = match shared.stream_from_request(&req) {
                Ok(stream) => stream,
                Err(e) => return (400, "text/plain", format!("{e}\n")),
            };
            match shared.execute(&key, stream) {
                Ok(reply) => (200, "application/json", reply.render()),
                Err(ServeError::Rejected(r)) => {
                    let (_, status) = r.label_and_status();
                    (status, "text/plain", format!("{}\n", r.reason()))
                }
                Err(ServeError::Failed(e)) => (500, "text/plain", format!("query failed: {e}\n")),
            }
        }
        ("GET", "/query") => (405, "text/plain", "use POST /query\n".to_string()),
        _ => (
            404,
            "text/plain",
            "not found; endpoints: GET /status, GET /metrics, POST /query\n".to_string(),
        ),
    }
}

/// Connect to a server's framed listener, handshake, send one request
/// frame and return the reply — the client side the `paper_harness query`
/// subcommand and the integration tests share.
pub fn client_request(
    addr: impl ToSocketAddrs,
    auth_token: Option<&str>,
    request: &Json,
) -> Result<Json> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| Error::invalid(format!("connect to server: {e}")))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let mut hello = msg("hello");
    hello.set("protocol", Json::from(crate::coord::PROTOCOL));
    hello.set("role", Json::from("client"));
    if let Some(token) = auth_token {
        hello.set("token", Json::from(token));
    }
    write_frame(&mut stream, &hello)?;
    let welcome = read_frame_opt(&mut stream)?
        .ok_or_else(|| Error::invalid("server closed during handshake"))?;
    match msg_type(&welcome)? {
        "welcome" => {}
        "reject" => {
            let reason = welcome
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified");
            return Err(Error::invalid(format!("server rejected us: {reason}")));
        }
        other => {
            return Err(Error::invalid(format!(
                "unexpected handshake reply {other:?}"
            )))
        }
    }
    write_frame(&mut stream, request)?;
    read_frame_opt(&mut stream)?.ok_or_else(|| Error::invalid("server closed before reply"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_estimate_is_floored_at_tiny_scales() {
        let mut config = HarnessConfig::quick().sim_only();
        assert_eq!(
            working_set_estimate(&config, SizeClass::Small),
            MIN_ESTIMATE_BYTES,
            "CI-scale datasets floor at the minimum estimate"
        );
        config.scale = 1.0;
        assert!(working_set_estimate(&config, SizeClass::Large) > MIN_ESTIMATE_BYTES);
    }

    #[test]
    fn admission_rejects_estimates_larger_than_the_whole_budget() {
        let a = Admission::new(Some(100), 4);
        match a.admit(101, &|| false) {
            Err(Rejection::OverBudget { estimate, budget }) => {
                assert_eq!((estimate, budget), (101, 100));
            }
            Err(other) => panic!("expected OverBudget, got {other:?}"),
            Ok(_) => panic!("expected OverBudget, got an admission"),
        }
        assert_eq!(a.queued(), 0, "a hopeless request never queues");
    }

    #[test]
    fn unlimited_budget_admits_everything_immediately() {
        let a = Admission::new(None, 0);
        let r = a.admit(u64::MAX / 2, &|| false).expect("unlimited admits");
        assert_eq!(r.bytes(), u64::MAX / 2);
    }

    #[test]
    fn admission_queues_until_memory_frees_and_bounds_the_queue() {
        let a = Arc::new(Admission::new(Some(100), 1));
        let held = a.admit(80, &|| false).expect("first request fits");
        // A second request queues behind the exhausted budget...
        let waiter = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || a.admit(80, &|| false).map(|r| r.bytes()))
        };
        while a.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // ...a third overflows the bounded queue and is turned away...
        match a.admit(80, &|| false) {
            Err(Rejection::QueueFull { depth }) => assert_eq!(depth, 1),
            Err(other) => panic!("expected QueueFull, got {other:?}"),
            Ok(_) => panic!("expected QueueFull, got an admission"),
        }
        // ...and dropping the held reservation admits the queued one.
        drop(held);
        assert_eq!(waiter.join().unwrap(), Ok(80));
        assert_eq!(a.queued(), 0);
        // The waiter's reservation was RAII-released when it went out of
        // scope, so the budget is whole again.
        assert_eq!(a.tracker.current(), 0);
    }

    #[test]
    fn queued_admissions_exit_when_the_server_drains() {
        let a = Arc::new(Admission::new(Some(100), 2));
        let _held = a.admit(100, &|| false).expect("fits exactly");
        let draining = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (a, draining) = (Arc::clone(&a), Arc::clone(&draining));
            std::thread::spawn(move || a.admit(50, &|| draining.load(Ordering::Relaxed)))
        };
        while a.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        draining.store(true, Ordering::Relaxed);
        assert_eq!(waiter.join().unwrap().err(), Some(Rejection::Draining));
        assert_eq!(a.queued(), 0);
    }
}
