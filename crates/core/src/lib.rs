//! # GenBase: a complex analytics genomics benchmark
//!
//! Rust reproduction of *GenBase: A Complex Analytics Genomics Benchmark*
//! (Taft, Vartak, Satish, Sundaram, Madden, Stonebraker — SIGMOD 2014 /
//! MIT-CSAIL-TR-2013-028), including every substrate the paper runs on.
//!
//! The benchmark is five queries mixing data management and complex
//! analytics over four genomics datasets:
//!
//! 1. **Predictive modeling** — filter genes, join, QR linear regression;
//! 2. **Covariance** — filter patients, join, gene×gene covariance, top
//!    pairs joined back to metadata;
//! 3. **Biclustering** — filter patients, join, Cheng–Church δ-biclusters;
//! 4. **SVD** — filter genes, join, Lanczos top-50 eigenpairs;
//! 5. **Statistics (enrichment)** — sample patients, join GO, per-term
//!    Wilcoxon rank-sum.
//!
//! Every query compiles to one engine-independent logical plan
//! ([`plan::logical_plan`]); the [`engines`] module provides the paper's
//! system configurations (R, Postgres+Madlib, Postgres+R, column store
//! ±R/UDFs, SciDB, Hadoop, pbdR, SciDB+Xeon Phi), each a physical lowering
//! of that plan onto its own storage primitives; [`harness`] runs the full
//! matrix and [`figures`] regenerates every table and figure of the
//! evaluation, with per-operator cost traces ([`plan::PlanTrace`]) behind
//! every phase split.
//!
//! ```
//! use genbase::prelude::*;
//!
//! let data = genbase_datagen::generate(
//!     &genbase_datagen::GeneratorConfig::new(genbase_datagen::SizeSpec::tiny()),
//! ).unwrap();
//! let params = QueryParams::for_dataset(&data);
//! let engine = engines::SciDb::new();
//! let ctx = ExecContext::default();
//! let report = engine.run(Query::Regression, &data, &params, &ctx).unwrap();
//! // The phase split is exactly the per-operator trace rollup.
//! assert_eq!(
//!     report.phases.total_secs().to_bits(),
//!     report.trace.phase_times().total_secs().to_bits(),
//! );
//! ```

#![warn(missing_docs)]

pub mod analytics;
pub mod coord;
pub mod engine;
pub mod engines;
pub mod figures;
pub mod harness;
pub mod plan;
pub mod query;
pub mod report;
pub mod sched;
pub mod serve;

pub use coord::{run_worker, run_worker_jobs, CoordOptions, CoordOutcome, Coordinator};
pub use engine::{Engine, ExecContext};
pub use harness::TimingMode;
pub use plan::{logical_plan, LogicalOp, LogicalPlan, OpKind, OpTrace, Phase, PlanTrace};
pub use query::{Query, QueryOutput, QueryParams};
pub use report::{PhaseTimes, QueryReport, RunOutcome};
pub use sched::{CellKey, CellOutcome, FigureId, ReportGrid, Scheduler, SweepOptions};
pub use serve::{BenchServer, ServeOptions, ServeReport};

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::engine::{Engine, ExecContext};
    pub use crate::engines;
    pub use crate::harness::{Harness, HarnessConfig, TimingMode};
    pub use crate::plan::{logical_plan, LogicalOp, OpKind, OpTrace, Phase, PlanTrace};
    pub use crate::query::{Query, QueryOutput, QueryParams};
    pub use crate::report::{PhaseTimes, QueryReport, RunOutcome};
    pub use crate::sched::{CellKey, CellOutcome, FigureId, ReportGrid, Scheduler, SweepOptions};
}
