//! Timing reports with the paper's data-management / analytics split.

use crate::plan::PlanTrace;
use crate::query::QueryOutput;
use genbase_util::CostReport;

/// Per-phase costs for one query execution (the split behind Figures 2/4).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Data management: filters, joins, restructuring, export/reformat.
    pub data_management: CostReport,
    /// Analytics: the linear algebra / statistics kernel.
    pub analytics: CostReport,
}

impl PhaseTimes {
    /// Total reported seconds (measured + simulated across both phases).
    pub fn total_secs(&self) -> f64 {
        self.data_management.total_secs() + self.analytics.total_secs()
    }
}

/// Successful execution of one query on one engine.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Typed output (verified for cross-engine consistency in tests).
    pub output: QueryOutput,
    /// Phase timing split — always the rollup of `trace`
    /// ([`PlanTrace::phase_times`]), kept materialized for renderers.
    pub phases: PhaseTimes,
    /// Per-operator execution trace the phases roll up from.
    pub trace: PlanTrace,
}

impl QueryReport {
    /// Assemble a report from a plan trace: the phase split *is* the
    /// trace's per-phase rollup, so per-op costs sum to the phases exactly.
    pub fn from_trace(output: QueryOutput, trace: PlanTrace) -> QueryReport {
        QueryReport {
            output,
            phases: trace.phase_times(),
            trace,
        }
    }

    /// Whole-run memory rollup of the trace (bytes read/materialized sum,
    /// peak resident bytes take the max) — the storage layer's counterpart
    /// of the time-phase split.
    pub fn memory(&self) -> crate::plan::MemRollup {
        self.trace.memory()
    }
}

/// Outcome of one harness cell, following the paper's conventions: cutoff
/// and memory failure render as "infinite" bars; missing functionality
/// leaves the bar out entirely.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Finished within budget.
    Completed(QueryReport),
    /// Timeout or memory-allocation failure (the horizontal lines across the
    /// top of the paper's charts).
    Infinite {
        /// What gave out, for the report.
        reason: String,
    },
    /// The engine lacks the required functionality (no bar in the paper).
    Unsupported,
}

impl RunOutcome {
    /// Total seconds for plotting; infinite outcomes return `f64::INFINITY`
    /// and unsupported returns `NAN` (no bar).
    pub fn plot_secs(&self) -> f64 {
        match self {
            RunOutcome::Completed(r) => r.phases.total_secs(),
            RunOutcome::Infinite { .. } => f64::INFINITY,
            RunOutcome::Unsupported => f64::NAN,
        }
    }

    /// Cell text for harness tables.
    pub fn cell(&self) -> String {
        match self {
            RunOutcome::Completed(r) => genbase_util::fmt_secs(r.phases.total_secs()),
            RunOutcome::Infinite { .. } => "inf".to_string(),
            RunOutcome::Unsupported => "-".to_string(),
        }
    }

    /// Borrow the report when completed.
    pub fn report(&self) -> Option<&QueryReport> {
        match self {
            RunOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryOutput;

    fn report(dm: f64, an: f64) -> QueryReport {
        use crate::plan::{OpCost, OpKind, OpTrace, Phase, PlanTrace};
        let trace = PlanTrace {
            ops: vec![
                OpTrace {
                    kind: OpKind::Restructure,
                    phase: Phase::DataManagement,
                    label: "pivot".into(),
                    cost: OpCost::wall(dm),
                },
                OpTrace {
                    kind: OpKind::Analytics,
                    phase: Phase::Analytics,
                    label: "kernel".into(),
                    cost: OpCost {
                        wall_secs: an,
                        sim_nanos: 0,
                        model_secs: 0.5,
                        sim_bytes: 0,
                        ..OpCost::default()
                    },
                },
            ],
        };
        QueryReport::from_trace(
            QueryOutput::Svd {
                eigenvalues: vec![1.0],
            },
            trace,
        )
    }

    #[test]
    fn totals_include_simulated() {
        let r = report(1.0, 2.0);
        assert!((r.phases.total_secs() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn outcome_rendering() {
        let done = RunOutcome::Completed(report(0.5, 0.5));
        assert!((done.plot_secs() - 1.5).abs() < 1e-12);
        assert!(done.report().is_some());
        let inf = RunOutcome::Infinite {
            reason: "cutoff".into(),
        };
        assert!(inf.plot_secs().is_infinite());
        assert_eq!(inf.cell(), "inf");
        assert!(inf.report().is_none());
        let uns = RunOutcome::Unsupported;
        assert!(uns.plot_secs().is_nan());
        assert_eq!(uns.cell(), "-");
    }
}
