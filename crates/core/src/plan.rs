//! Logical query-plan IR with per-engine physical lowering and per-operator
//! cost traces.
//!
//! GenBase's thesis (§3–4) is that the engines differ in *data-management
//! plumbing* — filters, joins, restructuring, export — while the analytics
//! kernels are shared. This module makes that structure explicit:
//!
//! - [`logical_plan`] compiles each of the five queries into a declarative
//!   sequence of [`LogicalOp`]s — the engine-independent statement of what
//!   every system must answer. "Every engine answers the identical question"
//!   is true by construction: there is exactly one plan per query.
//! - A [`PhysicalBackend`] *lowers* each logical op onto its store's
//!   primitives (SQL tables, chunked arrays, MapReduce jobs, R vectors).
//!   Lowering is free to realize one logical op as several physical steps
//!   (the export bridge turns `Restructure` into CSV export + re-parse),
//!   to fold an op away entirely (vanilla R holds a matrix, so triple joins
//!   are no-ops), or to push analytics into the store (Madlib).
//! - [`run_plan`] drives the backend through the plan with a [`Tracer`],
//!   producing a [`PlanTrace`]: one [`OpTrace`] per *physical* operator
//!   with its measured and simulated cost. The trace rolls up into the
//!   paper's [`PhaseTimes`] split — Figures 2/4 are literally a sum over
//!   trace entries — and powers the `paper_harness explain` breakdown.
//!
//! ## Exact cost accounting
//!
//! A trace is not a parallel bookkeeping device that merely approximates
//! the old phase totals: [`PlanTrace::phase_times`] **is** the phase split.
//! Simulated time is captured as integer [`SimClock`] nanosecond deltas per
//! op (integer sums are exact, so the per-phase rollup reproduces the
//! pre-IR cumulative totals bit-for-bit), while model-derived costs (the
//! Xeon Phi roofline, the multi-node critical-path combination) pass
//! through as `f64` seconds unchanged. The SimOnly conformance tier pins
//! this: sweep output is byte-identical to the pre-IR engines.

use crate::query::{Query, QueryOutput};
use crate::report::{PhaseTimes, QueryReport};
use genbase_storage::{MemDelta, MemTracker};
use genbase_util::{table::Align, table::TextTable, CostReport, Error, Json, Result, SimClock};

/// Which side of the paper's Figure 2/4 split an operator's cost lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Data management: filters, joins, restructuring, export/reformat.
    DataManagement,
    /// Analytics: the linear algebra / statistics kernel.
    Analytics,
}

impl Phase {
    /// Stable short name (trace serialization, explain tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::DataManagement => "dm",
            Phase::Analytics => "analytics",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        match name {
            "dm" => Some(Phase::DataManagement),
            "analytics" => Some(Phase::Analytics),
            _ => None,
        }
    }
}

/// The physical operator classes a backend may emit while lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Metadata predicate evaluation / sampling: selects gene or patient ids.
    Filter,
    /// Join (or semijoin) against the microarray triples or metadata.
    Join,
    /// Reshaping data into the analytics-ready form (pivot, gather, load).
    Restructure,
    /// Serialization across a system boundary (CSV export into R).
    Export,
    /// Grouped aggregation (SQL GROUP BY, MapReduce group-sum).
    GroupAgg,
    /// Value-at-a-time marshalling across a UDF interface.
    Marshal,
    /// An analytics kernel invocation.
    Analytics,
}

impl OpKind {
    /// Stable short name (trace serialization, explain tables).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Filter => "filter",
            OpKind::Join => "join",
            OpKind::Restructure => "restructure",
            OpKind::Export => "export",
            OpKind::GroupAgg => "group-agg",
            OpKind::Marshal => "marshal",
            OpKind::Analytics => "analytics",
        }
    }

    /// Inverse of [`OpKind::name`].
    pub fn from_name(name: &str) -> Option<OpKind> {
        [
            OpKind::Filter,
            OpKind::Join,
            OpKind::Restructure,
            OpKind::Export,
            OpKind::GroupAgg,
            OpKind::Marshal,
            OpKind::Analytics,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// The analytics kernel a query's terminal op runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Query 1: linear regression of drug response on expression.
    Regression,
    /// Query 2: gene×gene covariance with top-pair thresholding.
    Covariance,
    /// Query 3: Cheng–Church biclustering.
    Biclustering,
    /// Query 4: Lanczos top-k eigenpairs of the Gram matrix.
    Svd,
    /// Query 5: per-GO-term Wilcoxon rank-sum enrichment.
    Enrichment,
}

/// One engine-independent operator in a query's logical plan.
///
/// These are *semantic roles*, not physical steps: a backend decides how —
/// and whether — each one becomes physical work. The two distinct joins in
/// the covariance query (triples⋈patients up front, results⋈gene metadata
/// at the end) are distinct roles so lowering can realize them differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Select genes with `function < threshold` (Queries 1 and 4).
    FilterGenes,
    /// Select patients by the query's metadata predicate (Queries 2 and 3).
    FilterPatients,
    /// Draw the deterministic patient sample (Query 5).
    SamplePatients,
    /// Join the microarray triples against the selected genes.
    JoinOnGenes,
    /// Join the microarray triples against the selected patients.
    JoinOnPatients,
    /// Join the GO-term membership table (Query 5).
    JoinGoTerms,
    /// Restructure the joined data into the kernel's native form.
    Restructure,
    /// Per-gene aggregation of the sampled expression (Query 5).
    GroupAgg,
    /// Run the analytics kernel.
    Analytics(Kernel),
    /// Join analytics results back to gene metadata (Query 2).
    JoinGeneMetadata,
}

/// The logical plan of one query: the ops every engine must answer, in
/// dataflow order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalPlan {
    /// The query this plan answers.
    pub query: Query,
    /// Operators in dataflow order.
    pub ops: Vec<LogicalOp>,
}

/// Compile a query to its logical plan (§3.2 workflow; engine-independent).
pub fn logical_plan(query: Query) -> LogicalPlan {
    use LogicalOp::*;
    let ops = match query {
        Query::Regression => vec![
            FilterGenes,
            JoinOnGenes,
            Restructure,
            Analytics(Kernel::Regression),
        ],
        Query::Covariance => vec![
            FilterPatients,
            JoinOnPatients,
            Restructure,
            Analytics(Kernel::Covariance),
            JoinGeneMetadata,
        ],
        Query::Biclustering => vec![
            FilterPatients,
            JoinOnPatients,
            Restructure,
            Analytics(Kernel::Biclustering),
        ],
        Query::Svd => vec![
            FilterGenes,
            JoinOnGenes,
            Restructure,
            Analytics(Kernel::Svd),
        ],
        Query::Statistics => vec![
            SamplePatients,
            JoinOnPatients,
            JoinGoTerms,
            GroupAgg,
            Analytics(Kernel::Enrichment),
        ],
    };
    LogicalPlan { query, ops }
}

/// Cost of one executed physical operator.
///
/// Simulated time is split by *source* so rollups stay exact: clock-sourced
/// nanoseconds sum as integers; model-sourced seconds sum as the same `f64`
/// terms, in the same order, as the pre-IR phase accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    /// Measured wall-clock seconds (zeroed under SimOnly timing).
    pub wall_secs: f64,
    /// Simulated nanoseconds charged to a [`SimClock`] during the op.
    pub sim_nanos: u64,
    /// Model-derived simulated seconds (coprocessor roofline, critical-path
    /// combination) that never passed through a clock.
    pub model_secs: f64,
    /// Bytes moved over simulated links during the op.
    pub sim_bytes: u64,
    /// Storage-layer bytes the op read (the memory dimension; see
    /// [`genbase_storage::MemTracker`]).
    pub bytes_in: u64,
    /// Storage-layer bytes the op materialized as output.
    pub bytes_out: u64,
    /// Peak live storage-layer bytes while the op ran.
    pub peak_alloc_bytes: u64,
    /// Rows the op materialized.
    pub rows_materialized: u64,
    /// Morsel batches the op streamed (zero for materializing ops).
    pub batches: u64,
    /// Bytes the op spilled to disk to stay under `--mem-budget`.
    pub spill_bytes: u64,
    /// Artifact-cache hits the op's conversion kernels took. Display-only
    /// (the `cache` column of `paper_harness explain`): hits never enter
    /// the serialized trace, because a warm cell must stay byte-identical
    /// to its cold run on the wire and in grid files.
    pub cache_hits: u64,
    /// Rows the op passed downstream as selection-vector survivors instead
    /// of materialized copies (fused streaming only). Display-only (the
    /// `sel rows` explain column), same contract as `cache_hits`: never
    /// serialized, so fused and staged cells stay byte-identical on the
    /// wire and in grid files.
    pub rows_selected: u64,
}

impl OpCost {
    /// A purely measured cost.
    pub fn wall(secs: f64) -> OpCost {
        OpCost {
            wall_secs: secs,
            ..OpCost::default()
        }
    }

    /// Simulated seconds (clock- plus model-sourced).
    pub fn sim_secs(&self) -> f64 {
        self.sim_nanos as f64 / 1e9 + self.model_secs
    }

    /// Attach storage-layer memory deltas.
    pub fn with_mem(mut self, mem: MemDelta) -> OpCost {
        self.bytes_in = mem.bytes_in;
        self.bytes_out = mem.bytes_out;
        self.peak_alloc_bytes = mem.peak_alloc_bytes;
        self.rows_materialized = mem.rows_materialized;
        self.batches = mem.batches;
        self.spill_bytes = mem.spill_bytes;
        self.cache_hits = mem.cache_hits;
        self.rows_selected = mem.rows_selected;
        self
    }

    /// Total storage-layer bytes the op moved (read + materialized) — the
    /// paper's headline cost dimension.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// Total reported seconds for this op.
    pub fn total_secs(&self) -> f64 {
        self.wall_secs + self.sim_secs()
    }
}

/// One executed physical operator in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTrace {
    /// Physical operator class.
    pub kind: OpKind,
    /// Phase the cost is attributed to (each engine attributes exactly as
    /// its pre-IR implementation did; the paper's scripts differ per system
    /// and those differences are part of what the benchmark measures).
    pub phase: Phase,
    /// Human-readable description of the physical step.
    pub label: String,
    /// What it cost.
    pub cost: OpCost,
}

impl OpTrace {
    /// Serialize for grid files and the coordinator wire protocol.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("op", Json::from(self.kind.name()));
        obj.set("phase", Json::from(self.phase.name()));
        obj.set("label", Json::from(self.label.as_str()));
        obj.set("wall", Json::Num(self.cost.wall_secs));
        obj.set("sim_nanos", Json::from(self.cost.sim_nanos));
        obj.set("model", Json::Num(self.cost.model_secs));
        obj.set("bytes", Json::from(self.cost.sim_bytes));
        obj.set("mem_in", Json::from(self.cost.bytes_in));
        obj.set("mem_out", Json::from(self.cost.bytes_out));
        obj.set("mem_peak", Json::from(self.cost.peak_alloc_bytes));
        obj.set("rows", Json::from(self.cost.rows_materialized));
        obj.set("batches", Json::from(self.cost.batches));
        obj.set("spill", Json::from(self.cost.spill_bytes));
        obj
    }

    /// Inverse of [`OpTrace::to_json`].
    pub fn from_json(value: &Json) -> Result<OpTrace> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| Error::invalid(format!("trace op missing {name}")))
        };
        let num = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| Error::invalid(format!("trace op missing numeric {name}")))
        };
        let int = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| Error::invalid(format!("trace op missing integer {name}")))
        };
        // Memory columns are absent in pre-storage-layer artifacts; those
        // load as zero-memory ops (figures only need the time split).
        let mem = |name: &str| value.get(name).and_then(Json::as_u64).unwrap_or(0);
        Ok(OpTrace {
            kind: OpKind::from_name(field("op")?)
                .ok_or_else(|| Error::invalid("trace op: unknown kind"))?,
            phase: Phase::from_name(field("phase")?)
                .ok_or_else(|| Error::invalid("trace op: unknown phase"))?,
            label: field("label")?.to_string(),
            cost: OpCost {
                wall_secs: num("wall")?,
                sim_nanos: int("sim_nanos")?,
                model_secs: num("model")?,
                sim_bytes: int("bytes")?,
                bytes_in: mem("mem_in"),
                bytes_out: mem("mem_out"),
                peak_alloc_bytes: mem("mem_peak"),
                rows_materialized: mem("rows"),
                batches: mem("batches"),
                spill_bytes: mem("spill"),
                // Display-only columns never round-trip (see `OpCost`).
                cache_hits: 0,
                rows_selected: 0,
            },
        })
    }
}

/// Per-operator execution trace of one query run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanTrace {
    /// Executed physical ops, in execution order.
    pub ops: Vec<OpTrace>,
}

impl PlanTrace {
    /// Roll the trace up into the paper's phase split. This *defines*
    /// [`QueryReport::phases`]: per phase, wall seconds sum in op order,
    /// clock-sourced nanoseconds sum as integers before one conversion, and
    /// model-sourced seconds sum in op order — reproducing the pre-IR
    /// accumulation bit-for-bit.
    pub fn phase_times(&self) -> PhaseTimes {
        let mut wall = [0.0f64; 2];
        let mut nanos = [0u64; 2];
        let mut model = [0.0f64; 2];
        let mut bytes = [0u64; 2];
        for op in &self.ops {
            let i = match op.phase {
                Phase::DataManagement => 0,
                Phase::Analytics => 1,
            };
            wall[i] += op.cost.wall_secs;
            nanos[i] += op.cost.sim_nanos;
            model[i] += op.cost.model_secs;
            bytes[i] += op.cost.sim_bytes;
        }
        let cost = |i: usize| CostReport {
            wall_secs: wall[i],
            sim_secs: nanos[i] as f64 / 1e9 + model[i],
            sim_bytes: bytes[i],
        };
        PhaseTimes {
            data_management: cost(0),
            analytics: cost(1),
        }
    }

    /// Zero every op's measured wall seconds (SimOnly timing: the harness
    /// zeroes the phase split and the trace together, keeping the
    /// sums-exactly invariant).
    pub fn zero_wall(&mut self) {
        for op in &mut self.ops {
            op.cost.wall_secs = 0.0;
        }
    }

    /// Roll the memory dimension up over the whole trace: bytes/rows sum,
    /// peaks take the maximum (an op's peak already includes working sets
    /// carried from earlier ops, so the max is the run's resident peak).
    pub fn memory(&self) -> MemRollup {
        let mut roll = MemRollup::default();
        for op in &self.ops {
            roll.bytes_in += op.cost.bytes_in;
            roll.bytes_out += op.cost.bytes_out;
            roll.peak_alloc_bytes = roll.peak_alloc_bytes.max(op.cost.peak_alloc_bytes);
            roll.rows_materialized += op.cost.rows_materialized;
            roll.batches += op.cost.batches;
            roll.spill_bytes += op.cost.spill_bytes;
        }
        roll
    }

    /// Render the per-operator cost table behind `paper_harness explain`.
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(&[
            ("op", Align::Left),
            ("phase", Align::Left),
            ("physical step", Align::Left),
            ("wall", Align::Right),
            ("sim", Align::Right),
            ("total", Align::Right),
            ("bytes", Align::Right),
            ("mem in", Align::Right),
            ("mem out", Align::Right),
            ("mem peak", Align::Right),
            ("rows", Align::Right),
            ("batches", Align::Right),
            ("spill", Align::Right),
            ("cache", Align::Right),
            ("sel rows", Align::Right),
        ]);
        for op in &self.ops {
            table.row(vec![
                op.kind.name().to_string(),
                op.phase.name().to_string(),
                op.label.clone(),
                genbase_util::fmt_secs(op.cost.wall_secs),
                genbase_util::fmt_secs(op.cost.sim_secs()),
                genbase_util::fmt_secs(op.cost.total_secs()),
                genbase_util::fmt_bytes(op.cost.sim_bytes),
                genbase_util::fmt_bytes(op.cost.bytes_in),
                genbase_util::fmt_bytes(op.cost.bytes_out),
                genbase_util::fmt_bytes(op.cost.peak_alloc_bytes),
                op.cost.rows_materialized.to_string(),
                op.cost.batches.to_string(),
                genbase_util::fmt_bytes(op.cost.spill_bytes),
                op.cost.cache_hits.to_string(),
                op.cost.rows_selected.to_string(),
            ]);
        }
        table
    }
}

/// Whole-run rollup of the trace's memory dimension (see
/// [`PlanTrace::memory`]); surfaced through `QueryReport::memory`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemRollup {
    /// Total storage-layer bytes read across all ops.
    pub bytes_in: u64,
    /// Total storage-layer bytes materialized across all ops.
    pub bytes_out: u64,
    /// Peak live storage-layer bytes across the run.
    pub peak_alloc_bytes: u64,
    /// Total rows materialized across all ops.
    pub rows_materialized: u64,
    /// Total morsel batches streamed across all ops.
    pub batches: u64,
    /// Total bytes spilled to disk across all ops.
    pub spill_bytes: u64,
}

/// Records physical operators as a backend lowers and executes the plan.
///
/// When a [`SimClock`] is attached (MapReduce engines), each traced op
/// captures the integer nanosecond/byte delta charged during its closure;
/// model-derived costs are recorded explicitly via [`Tracer::record`].
#[derive(Debug, Default)]
pub struct Tracer {
    ops: Vec<OpTrace>,
    sim: Option<SimClock>,
    mem: Option<MemTracker>,
}

impl Tracer {
    /// Tracer with no simulated-cost source (wall-only engines).
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Tracer capturing per-op deltas from `sim` alongside wall time.
    pub fn with_sim(sim: SimClock) -> Tracer {
        Tracer {
            ops: Vec::new(),
            sim: Some(sim),
            mem: None,
        }
    }

    /// Attach the storage layer's allocation tracker: every traced op then
    /// carries the `bytes_in`/`bytes_out`/`peak_alloc_bytes`/`rows` deltas
    /// its closure charged or noted.
    pub fn with_mem(mut self, mem: MemTracker) -> Tracer {
        self.mem = Some(mem);
        self
    }

    /// Execute `f` as one traced physical operator: wall seconds plus (when
    /// a clock is attached) the simulated nanosecond/byte delta it charged,
    /// plus (when a tracker is attached) the memory deltas it accounted.
    pub fn exec<T>(
        &mut self,
        kind: OpKind,
        phase: Phase,
        label: impl Into<String>,
        f: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        let snap = self.sim.as_ref().map(|s| (s.nanos(), s.bytes()));
        let scope = self.mem.as_ref().map(|m| m.op_begin());
        let start = std::time::Instant::now();
        let out = f()?;
        let wall_secs = start.elapsed().as_secs_f64();
        let (sim_nanos, sim_bytes) = match (&self.sim, snap) {
            (Some(s), Some((n0, b0))) => (s.nanos() - n0, s.bytes() - b0),
            _ => (0, 0),
        };
        let mem = match (&self.mem, scope) {
            (Some(m), Some(scope)) => m.op_delta(scope),
            _ => MemDelta::default(),
        };
        self.ops.push(OpTrace {
            kind,
            phase,
            label: label.into(),
            cost: OpCost {
                wall_secs,
                sim_nanos,
                model_secs: 0.0,
                sim_bytes,
                ..OpCost::default()
            }
            .with_mem(mem),
        });
        Ok(out)
    }

    /// Record an operator whose cost was produced outside the tracer (the
    /// Phi roofline model, the multi-node critical-path combination).
    pub fn record(&mut self, kind: OpKind, phase: Phase, label: impl Into<String>, cost: OpCost) {
        self.ops.push(OpTrace {
            kind,
            phase,
            label: label.into(),
            cost,
        });
    }

    /// Finish tracing.
    pub fn finish(self) -> PlanTrace {
        PlanTrace { ops: self.ops }
    }
}

/// An engine's physical lowering: executes each [`LogicalOp`] against its
/// native store, recording the physical steps into the tracer. State flows
/// between ops through the backend itself (the selected ids, the joined
/// triples, the restructured matrix).
pub trait PhysicalBackend {
    /// One-time setup before the plan runs. Untimed ingest (loading the
    /// dataset into native storage is not timed, per the paper) records
    /// nothing; engines whose load *is* part of the measured query (vanilla
    /// R's `read.csv` + pivot) trace it here.
    fn prepare(&mut self, tracer: &mut Tracer) -> Result<()> {
        let _ = tracer;
        Ok(())
    }

    /// Lower and execute one logical operator. A backend may record zero
    /// (op folded away by the storage model), one, or several physical ops.
    fn execute(&mut self, op: LogicalOp, tracer: &mut Tracer) -> Result<()>;

    /// The typed output, after every op has executed.
    fn finish(&mut self) -> Result<QueryOutput>;
}

/// Drive `backend` through `query`'s logical plan and assemble the report:
/// output from the backend, phases as the rollup of the trace.
pub fn run_plan<B: PhysicalBackend>(
    mut backend: B,
    query: Query,
    mut tracer: Tracer,
) -> Result<QueryReport> {
    backend.prepare(&mut tracer)?;
    for op in logical_plan(query).ops {
        backend.execute(op, &mut tracer)?;
    }
    let output = backend.finish()?;
    Ok(QueryReport::from_trace(output, tracer.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_cover_all_queries_and_end_in_analytics() {
        for query in Query::ALL {
            let plan = logical_plan(query);
            assert_eq!(plan.query, query);
            assert!(!plan.ops.is_empty());
            let kernels = plan
                .ops
                .iter()
                .filter(|op| matches!(op, LogicalOp::Analytics(_)))
                .count();
            assert_eq!(kernels, 1, "{query:?}: exactly one kernel per plan");
        }
        // The two covariance joins are distinct roles.
        let cov = logical_plan(Query::Covariance);
        assert!(cov.ops.contains(&LogicalOp::JoinOnPatients));
        assert!(cov.ops.contains(&LogicalOp::JoinGeneMetadata));
    }

    #[test]
    fn names_round_trip() {
        for kind in [
            OpKind::Filter,
            OpKind::Join,
            OpKind::Restructure,
            OpKind::Export,
            OpKind::GroupAgg,
            OpKind::Marshal,
            OpKind::Analytics,
        ] {
            assert_eq!(OpKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(OpKind::from_name("shuffle"), None);
        for phase in [Phase::DataManagement, Phase::Analytics] {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
    }

    #[test]
    fn rollup_is_exact_over_integer_nanos() {
        // Two ops whose f64 sim_secs would not sum exactly; the integer
        // rollup must equal one conversion of the summed nanos.
        let mut trace = PlanTrace::default();
        let nanos = [3_333_333_333u64, 1_111_111_111];
        for (i, &n) in nanos.iter().enumerate() {
            trace.ops.push(OpTrace {
                kind: OpKind::Join,
                phase: Phase::DataManagement,
                label: format!("op {i}"),
                cost: OpCost {
                    wall_secs: 0.0,
                    sim_nanos: n,
                    model_secs: 0.0,
                    sim_bytes: 7,
                    ..OpCost::default()
                },
            });
        }
        let phases = trace.phase_times();
        let expect = (nanos[0] + nanos[1]) as f64 / 1e9;
        assert_eq!(phases.data_management.sim_secs.to_bits(), expect.to_bits());
        assert_eq!(phases.data_management.sim_bytes, 14);
        assert_eq!(phases.analytics.sim_secs, 0.0);
    }

    #[test]
    fn tracer_captures_sim_deltas() {
        let sim = SimClock::new();
        let mut tracer = Tracer::with_sim(sim.clone());
        tracer
            .exec(OpKind::Join, Phase::DataManagement, "shuffle", || {
                sim.charge_transfer(1000, 0.0, 1e9);
                Ok(())
            })
            .unwrap();
        tracer
            .exec(OpKind::Analytics, Phase::Analytics, "kernel", || Ok(()))
            .unwrap();
        let trace = tracer.finish();
        assert_eq!(trace.ops[0].cost.sim_nanos, 1000);
        assert_eq!(trace.ops[0].cost.sim_bytes, 1000);
        assert_eq!(trace.ops[1].cost.sim_nanos, 0);
        assert!(trace.ops[1].cost.wall_secs >= 0.0);
    }

    #[test]
    fn trace_json_round_trips() {
        let op = OpTrace {
            kind: OpKind::Export,
            phase: Phase::DataManagement,
            label: "export triples as CSV".into(),
            cost: OpCost {
                wall_secs: 0.125,
                sim_nanos: 42,
                model_secs: 0.5,
                sim_bytes: 1024,
                ..OpCost::default()
            },
        };
        let back = OpTrace::from_json(&op.to_json()).unwrap();
        assert_eq!(back, op);
        assert!(OpTrace::from_json(&Json::obj()).is_err());
    }

    #[test]
    fn zero_wall_keeps_sim_costs() {
        let mut trace = PlanTrace {
            ops: vec![OpTrace {
                kind: OpKind::Analytics,
                phase: Phase::Analytics,
                label: "kernel".into(),
                cost: OpCost {
                    wall_secs: 3.0,
                    sim_nanos: 500,
                    model_secs: 0.25,
                    sim_bytes: 9,
                    ..OpCost::default()
                },
            }],
        };
        trace.zero_wall();
        assert_eq!(trace.ops[0].cost.wall_secs, 0.0);
        assert_eq!(trace.ops[0].cost.sim_nanos, 500);
        let phases = trace.phase_times();
        assert_eq!(phases.analytics.wall_secs, 0.0);
        assert!(phases.analytics.sim_secs > 0.25);
    }

    #[test]
    fn table_renders_every_op() {
        let trace = PlanTrace {
            ops: vec![
                OpTrace {
                    kind: OpKind::Filter,
                    phase: Phase::DataManagement,
                    label: "function < 250".into(),
                    cost: OpCost::wall(0.5),
                },
                OpTrace {
                    kind: OpKind::Analytics,
                    phase: Phase::Analytics,
                    label: "QR regression".into(),
                    cost: OpCost::wall(1.0),
                },
            ],
        };
        let text = trace.table().render();
        assert!(text.contains("function < 250"));
        assert!(text.contains("QR regression"));
        assert!(text.contains("analytics"));
    }
}
