//! Shared machinery for the SQL-engine configurations (Postgres-like row
//! store and the commercial-style column store, with their R/Madlib/UDF
//! analytics bridges).
//!
//! Each query's data-management pipeline follows the workflow in §3.2 of
//! the paper: filter metadata → join with the microarray triples → project →
//! restructure as a matrix. The *bridge* decides how the restructured data
//! reaches the analytics runtime:
//!
//! - [`Bridge::ExportToR`]: serialize the filtered triples to CSV text and
//!   re-parse them in "R" (the paper's copy-and-reformat path; counted as
//!   data management);
//! - [`Bridge::InProcess`]: direct in-database pivot handed to a UDF (the
//!   column store + UDFs configuration);
//! - [`Bridge::InDatabase`]: Madlib-style — regression as a streaming
//!   normal-equation aggregate, covariance/SVD *simulated in SQL* over the
//!   triple representation (slow by construction, as the paper observes).

use crate::analytics;
use crate::engine::{ExecContext, StreamConfig};
use crate::plan::{self, Kernel, LogicalOp, OpCost, OpKind, Phase, PhysicalBackend, Tracer};
use crate::query::{Query, QueryOutput, QueryParams};
use crate::report::QueryReport;
use genbase_datagen::Dataset;
use genbase_linalg::{lanczos_topk, ExecOpts, LinearOp, Matrix, RegressionMethod};
use genbase_relational::{
    ColumnData, ColumnTable, DataType, Pred, Relation, RowTable, Schema, Value,
};
use genbase_storage::{
    self as storage, BatchReel, CachePin, CacheScope, CacheValue, Column, ColumnarTable,
    DenseHandle, MemTracker, Morsel,
};
use genbase_util::{Budget, Error, Result};
use std::collections::{HashMap, HashSet};

/// Which store backs the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Paged row store (Postgres).
    Row,
    /// Typed column store.
    Column,
}

/// How the analytics runtime receives the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bridge {
    /// CSV export + re-parse into a single-threaded R runtime.
    ExportToR,
    /// In-process pivot handed to an R UDF (no reformat, small call
    /// overhead, still single-threaded R).
    InProcess,
    /// Madlib: in-database aggregates and SQL-simulated matrix math.
    InDatabase,
}

/// Patient-table column names, in schema order (predicate labels).
pub const PATIENT_COLS: [&str; 6] = [
    "patient_id",
    "age",
    "gender",
    "zipcode",
    "disease_id",
    "drug_response",
];

/// Gene-table column names, in schema order (predicate labels).
pub const GENE_COLS: [&str; 5] = ["gene_id", "target", "position", "length", "function"];

fn triple_schema() -> Schema {
    Schema::new(&[
        ("gene_id", DataType::Int),
        ("patient_id", DataType::Int),
        ("value", DataType::Float),
    ])
    .expect("static schema")
}

fn patient_schema() -> Schema {
    Schema::new(&[
        ("patient_id", DataType::Int),
        ("age", DataType::Int),
        ("gender", DataType::Int),
        ("zipcode", DataType::Int),
        ("disease_id", DataType::Int),
        ("drug_response", DataType::Float),
    ])
    .expect("static schema")
}

fn gene_schema() -> Schema {
    Schema::new(&[
        ("gene_id", DataType::Int),
        ("target", DataType::Int),
        ("position", DataType::Int),
        ("length", DataType::Int),
        ("function", DataType::Int),
    ])
    .expect("static schema")
}

fn go_schema() -> Schema {
    Schema::new(&[("gene_id", DataType::Int), ("go_id", DataType::Int)]).expect("static schema")
}

/// Either store behind one dispatching interface. Only the operations the
/// five queries need are exposed.
pub enum SqlStore {
    /// Row-store tables.
    Row {
        /// Microarray triples.
        triples: RowTable,
        /// Patient metadata.
        patients: RowTable,
        /// Gene metadata.
        genes: RowTable,
        /// GO membership pairs.
        go: RowTable,
    },
    /// Column-store tables.
    Column {
        /// Microarray triples.
        triples: ColumnTable,
        /// Patient metadata.
        patients: ColumnTable,
        /// Gene metadata.
        genes: ColumnTable,
        /// GO membership pairs.
        go: ColumnTable,
    },
}

/// A filtered/joined triple working set. Regardless of which store
/// produced it, it is held in the unified storage layer's columnar form —
/// the row-store path pays an instrumented row→column pivot to get there,
/// the column-store path adopts its columns without copying. Downstream
/// consumers (pivot, export, the Madlib SQL-simulation paths) are written
/// once against this one representation.
pub type TripleSet = ColumnarTable;

impl SqlStore {
    /// Load a dataset into the store (untimed ingest).
    pub fn ingest(kind: StoreKind, data: &Dataset) -> Result<SqlStore> {
        Self::ingest_inner(kind, data, true)
    }

    /// Load only the metadata tables (streaming ingest: the microarray
    /// triples live in a [`BatchReel`] instead of a base table; the store
    /// keeps empty triple tables so every metadata path is unchanged).
    pub fn ingest_metadata(kind: StoreKind, data: &Dataset) -> Result<SqlStore> {
        Self::ingest_inner(kind, data, false)
    }

    fn ingest_inner(kind: StoreKind, data: &Dataset, with_triples: bool) -> Result<SqlStore> {
        match kind {
            StoreKind::Row => {
                let mut triples = RowTable::new(triple_schema());
                if with_triples {
                    for p in 0..data.n_patients() {
                        let row = data.expression.row(p);
                        for (g, &v) in row.iter().enumerate() {
                            triples.insert(&[
                                Value::Int(g as i64),
                                Value::Int(p as i64),
                                Value::Float(v),
                            ])?;
                        }
                    }
                }
                let patients = RowTable::from_rows(
                    patient_schema(),
                    data.patients.iter().map(|p| {
                        vec![
                            Value::Int(p.id as i64),
                            Value::Int(p.age),
                            Value::Int(p.gender),
                            Value::Int(p.zipcode),
                            Value::Int(p.disease_id),
                            Value::Float(p.drug_response),
                        ]
                    }),
                )?;
                let genes = RowTable::from_rows(
                    gene_schema(),
                    data.genes.iter().map(|g| {
                        vec![
                            Value::Int(g.id as i64),
                            Value::Int(g.target),
                            Value::Int(g.position),
                            Value::Int(g.length),
                            Value::Int(g.function),
                        ]
                    }),
                )?;
                let mut go_rows = Vec::new();
                for (term, members) in data.ontology.members.iter().enumerate() {
                    for &g in members {
                        go_rows.push(vec![Value::Int(g as i64), Value::Int(term as i64)]);
                    }
                }
                let go = RowTable::from_rows(go_schema(), go_rows)?;
                Ok(SqlStore::Row {
                    triples,
                    patients,
                    genes,
                    go,
                })
            }
            StoreKind::Column => {
                let n = if with_triples {
                    data.n_patients() * data.n_genes()
                } else {
                    0
                };
                let mut gene_col = Vec::with_capacity(n);
                let mut patient_col = Vec::with_capacity(n);
                let mut value_col = Vec::with_capacity(n);
                if with_triples {
                    for p in 0..data.n_patients() {
                        let row = data.expression.row(p);
                        for (g, &v) in row.iter().enumerate() {
                            gene_col.push(g as i64);
                            patient_col.push(p as i64);
                            value_col.push(v);
                        }
                    }
                }
                let triples = ColumnTable::from_columns(
                    triple_schema(),
                    vec![
                        ColumnData::Ints(gene_col),
                        ColumnData::Ints(patient_col),
                        ColumnData::Floats(value_col),
                    ],
                )?;
                let patients = ColumnTable::from_columns(
                    patient_schema(),
                    vec![
                        ColumnData::Ints(data.patients.iter().map(|p| p.id as i64).collect()),
                        ColumnData::Ints(data.patients.iter().map(|p| p.age).collect()),
                        ColumnData::Ints(data.patients.iter().map(|p| p.gender).collect()),
                        ColumnData::Ints(data.patients.iter().map(|p| p.zipcode).collect()),
                        ColumnData::Ints(data.patients.iter().map(|p| p.disease_id).collect()),
                        ColumnData::Floats(data.patients.iter().map(|p| p.drug_response).collect()),
                    ],
                )?;
                let genes = ColumnTable::from_columns(
                    gene_schema(),
                    vec![
                        ColumnData::Ints(data.genes.iter().map(|g| g.id as i64).collect()),
                        ColumnData::Ints(data.genes.iter().map(|g| g.target).collect()),
                        ColumnData::Ints(data.genes.iter().map(|g| g.position).collect()),
                        ColumnData::Ints(data.genes.iter().map(|g| g.length).collect()),
                        ColumnData::Ints(data.genes.iter().map(|g| g.function).collect()),
                    ],
                )?;
                let mut go_gene = Vec::new();
                let mut go_term = Vec::new();
                for (term, members) in data.ontology.members.iter().enumerate() {
                    for &g in members {
                        go_gene.push(g as i64);
                        go_term.push(term as i64);
                    }
                }
                let go = ColumnTable::from_columns(
                    go_schema(),
                    vec![ColumnData::Ints(go_gene), ColumnData::Ints(go_term)],
                )?;
                Ok(SqlStore::Column {
                    triples,
                    patients,
                    genes,
                    go,
                })
            }
        }
    }

    /// Gene ids with `function < threshold`, ascending.
    pub fn filter_gene_ids(&self, threshold: i64, budget: &Budget) -> Result<Vec<i64>> {
        let pred = Pred::IntLt(4, threshold);
        match self {
            SqlStore::Row { genes, .. } => {
                genes.filter_project(&pred, &[0], budget)?.distinct_ints(0)
            }
            SqlStore::Column { genes, .. } => {
                let sel = genes.select(&pred, budget)?;
                let mut ids: Vec<i64> = {
                    let col = genes.int_col(0)?;
                    sel.iter().map(|&i| col[i as usize]).collect()
                };
                ids.sort_unstable();
                Ok(ids)
            }
        }
    }

    /// Patient ids matching a metadata predicate, ascending.
    pub fn filter_patient_ids(&self, pred: &Pred, budget: &Budget) -> Result<Vec<i64>> {
        match self {
            SqlStore::Row { patients, .. } => patients
                .filter_project(pred, &[0], budget)?
                .distinct_ints(0),
            SqlStore::Column { patients, .. } => {
                let sel = patients.select(pred, budget)?;
                let mut ids: Vec<i64> = {
                    let col = patients.int_col(0)?;
                    sel.iter().map(|&i| col[i as usize]).collect()
                };
                ids.sort_unstable();
                Ok(ids)
            }
        }
    }

    /// Resident heap bytes of the ingested base tables (storage-layer
    /// residency, charged against the run's tracker at ingest).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            SqlStore::Row {
                triples,
                patients,
                genes,
                go,
            } => {
                triples.heap_bytes() + patients.heap_bytes() + genes.heap_bytes() + go.heap_bytes()
            }
            SqlStore::Column {
                triples,
                patients,
                genes,
                go,
            } => {
                triples.heap_bytes() + patients.heap_bytes() + genes.heap_bytes() + go.heap_bytes()
            }
        }
    }

    /// Store-kind tag for cache keys: row- and column-store joins replay
    /// different accounting, so their artifacts never share an entry.
    fn kind_tag(&self) -> &'static str {
        match self {
            SqlStore::Row { .. } => "row",
            SqlStore::Column { .. } => "col",
        }
    }

    /// Rebuild a cached join's working set, replaying the cold path's
    /// accounting exactly (base-table read, conversion input, output note).
    fn replay_join(
        &self,
        schema: &Schema,
        columns: &[Column],
        mem: &MemTracker,
    ) -> Result<TripleSet> {
        let n_rows = columns.first().map_or(0, Column::len);
        match self {
            SqlStore::Row { triples, .. } => {
                mem.note_input(triples.heap_bytes());
                // The row store's join output leaves its pages through
                // `columnar_from_relation`; replay its input note.
                mem.note_input((n_rows * schema.arity() * 8) as u64);
            }
            SqlStore::Column { triples, .. } => {
                // `columnar_from_column_table` adopts the columns directly.
                mem.note_input(triples.heap_bytes());
            }
        }
        let table = ColumnarTable::from_columns(mem, schema.clone(), columns.to_vec())?;
        mem.note_output(table.heap_bytes(), table.n_rows() as u64);
        Ok(table)
    }

    /// Memoized triple join: a hit skips the hash join and the row→column
    /// conversion, rebuilding the working set from the cached columns with
    /// the cold path's accounting; a miss runs `cold` and publishes its
    /// columns. `dims` names the source dataset (`patients x genes`).
    fn join_cached(
        &self,
        cache: Option<&CacheScope>,
        dims: (usize, usize),
        conversion: &str,
        ids: &[i64],
        mem: &MemTracker,
        cold: impl FnOnce() -> Result<TripleSet>,
    ) -> Result<(TripleSet, Option<CachePin>)> {
        let Some(scope) = cache else {
            return Ok((cold()?, None));
        };
        let extra = format!("{}|{:016x}", self.kind_tag(), storage::digest_ids(ids));
        let key = scope.key(dims.0, dims.1, conversion, &extra);
        match scope.cache().begin(&key) {
            storage::Lookup::Hit(value, pin) => {
                let (schema, columns) = value
                    .as_columnar()
                    .ok_or_else(|| Error::invalid("cache type confusion on a join key"))?;
                let table = self.replay_join(schema, columns, mem)?;
                mem.note_cache_hit();
                Ok((table, Some(pin)))
            }
            storage::Lookup::Build(slot) => {
                let table = cold()?;
                let columns: Vec<Column> = (0..table.schema().arity())
                    .map(|i| table.view().column_copy(i))
                    .collect();
                let pin = slot
                    .fill(CacheValue::Columnar {
                        schema: table.schema().clone(),
                        columns,
                    })
                    .map(|(_, pin)| pin);
                Ok((table, pin))
            }
        }
    }

    /// Cache-aware [`SqlStore::join_triples_on_genes`].
    pub fn join_triples_on_genes_cached(
        &self,
        cache: Option<&CacheScope>,
        dims: (usize, usize),
        gene_ids: &[i64],
        budget: &Budget,
        mem: &MemTracker,
    ) -> Result<(TripleSet, Option<CachePin>)> {
        self.join_cached(cache, dims, "join-genes", gene_ids, mem, || {
            self.join_triples_on_genes(gene_ids, budget, mem)
        })
    }

    /// Cache-aware [`SqlStore::join_triples_on_patients`].
    pub fn join_triples_on_patients_cached(
        &self,
        cache: Option<&CacheScope>,
        dims: (usize, usize),
        patient_ids: &[i64],
        budget: &Budget,
        mem: &MemTracker,
    ) -> Result<(TripleSet, Option<CachePin>)> {
        self.join_cached(cache, dims, "join-patients", patient_ids, mem, || {
            self.join_triples_on_patients(patient_ids, budget, mem)
        })
    }

    /// Join the microarray triples against a set of gene ids, projecting
    /// `(gene_id, patient_id, value)` into the unified columnar working set.
    pub fn join_triples_on_genes(
        &self,
        gene_ids: &[i64],
        budget: &Budget,
        mem: &MemTracker,
    ) -> Result<TripleSet> {
        let key_schema = Schema::new(&[("gene_id", DataType::Int)]).expect("static schema");
        match self {
            SqlStore::Row { triples, .. } => {
                mem.note_input(triples.heap_bytes());
                let build =
                    RowTable::from_rows(key_schema, gene_ids.iter().map(|&g| vec![Value::Int(g)]))?;
                let joined = triples.hash_join(0, &build, 0, budget)?;
                let projected = joined.project(&[0, 1, 2], budget)?;
                // Row store output leaves the pages through a row→column
                // pivot (genuine reformatting work, and measured as such).
                storage::columnar_from_relation(mem, &projected)
            }
            SqlStore::Column { triples, .. } => {
                mem.note_input(triples.heap_bytes());
                let build = ColumnTable::from_columns(
                    key_schema,
                    vec![ColumnData::Ints(gene_ids.to_vec())],
                )?;
                let joined = triples.hash_join(0, &build, 0, budget)?;
                storage::columnar_from_column_table(mem, joined.project(&[0, 1, 2])?)
            }
        }
    }

    /// Join the microarray triples against a set of patient ids.
    pub fn join_triples_on_patients(
        &self,
        patient_ids: &[i64],
        budget: &Budget,
        mem: &MemTracker,
    ) -> Result<TripleSet> {
        let key_schema = Schema::new(&[("patient_id", DataType::Int)]).expect("static schema");
        match self {
            SqlStore::Row { triples, .. } => {
                mem.note_input(triples.heap_bytes());
                let build = RowTable::from_rows(
                    key_schema,
                    patient_ids.iter().map(|&p| vec![Value::Int(p)]),
                )?;
                let joined = triples.hash_join(1, &build, 0, budget)?;
                let projected = joined.project(&[0, 1, 2], budget)?;
                storage::columnar_from_relation(mem, &projected)
            }
            SqlStore::Column { triples, .. } => {
                mem.note_input(triples.heap_bytes());
                let build = ColumnTable::from_columns(
                    key_schema,
                    vec![ColumnData::Ints(patient_ids.to_vec())],
                )?;
                let joined = triples.hash_join(1, &build, 0, budget)?;
                storage::columnar_from_column_table(mem, joined.project(&[0, 1, 2])?)
            }
        }
    }

    /// Drug response for each patient id, in the ids' order.
    pub fn drug_responses(&self, patient_ids: &[i64]) -> Result<Vec<f64>> {
        let mut by_id: HashMap<i64, f64> = HashMap::new();
        match self {
            SqlStore::Row { patients, .. } => {
                patients.for_each_row(|row| {
                    if let (Value::Int(id), Value::Float(r)) = (row[0], row[5]) {
                        by_id.insert(id, r);
                    }
                });
            }
            SqlStore::Column { patients, .. } => {
                let ids = patients.int_col(0)?;
                let resp = patients.float_col(5)?;
                for (&id, &r) in ids.iter().zip(resp) {
                    by_id.insert(id, r);
                }
            }
        }
        patient_ids
            .iter()
            .map(|id| {
                by_id
                    .get(id)
                    .copied()
                    .ok_or_else(|| Error::invalid(format!("unknown patient {id}")))
            })
            .collect()
    }

    /// `gene_id -> function` map (the Query 2 metadata join).
    pub fn gene_functions(&self) -> Result<HashMap<i64, i64>> {
        let mut out = HashMap::new();
        match self {
            SqlStore::Row { genes, .. } => {
                genes.for_each_row(|row| {
                    if let (Value::Int(id), Value::Int(f)) = (row[0], row[4]) {
                        out.insert(id, f);
                    }
                });
            }
            SqlStore::Column { genes, .. } => {
                let ids = genes.int_col(0)?;
                let funcs = genes.int_col(4)?;
                for (&id, &f) in ids.iter().zip(funcs) {
                    out.insert(id, f);
                }
            }
        }
        Ok(out)
    }

    /// GO memberships as per-term gene lists (the Query 5 GO join).
    pub fn go_memberships(&self, n_terms: usize) -> Result<Vec<Vec<u32>>> {
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_terms];
        let mut push = |gene: i64, term: i64| {
            if let Some(m) = members.get_mut(term as usize) {
                m.push(gene as u32);
            }
        };
        match self {
            SqlStore::Row { go, .. } => {
                go.for_each_row(|row| {
                    if let (Value::Int(g), Value::Int(t)) = (row[0], row[1]) {
                        push(g, t);
                    }
                });
            }
            SqlStore::Column { go, .. } => {
                let genes = go.int_col(0)?;
                let terms = go.int_col(1)?;
                for (&g, &t) in genes.iter().zip(terms) {
                    push(g, t);
                }
            }
        }
        for m in &mut members {
            m.sort_unstable();
        }
        Ok(members)
    }

    /// Per-gene `(sum, count)` of expression values in a triple set (SQL
    /// GROUP BY gene_id).
    pub fn group_sum_by_gene(&self, set: &TripleSet) -> Result<Vec<(i64, f64, u64)>> {
        set.group_sum(0, 2)
    }
}

/// Row-order scan of the filtered `(gene_id, patient_id, value)` triples:
/// the one interface the SQL-simulated analytics read, implemented by both
/// the materialized [`TripleSet`] and the streaming reel. Implementations
/// must yield triples in the base table's row order — that ordering is what
/// keeps floating-point accumulation bit-identical across execution modes.
pub trait TripleScan {
    /// Apply `f` to every triple in row order.
    fn scan(&self, f: &mut dyn FnMut(i64, i64, f64)) -> Result<()>;
}

impl TripleScan for TripleSet {
    fn scan(&self, f: &mut dyn FnMut(i64, i64, f64)) -> Result<()> {
        self.for_each(&mut |row: &[Value]| {
            if let (Value::Int(g), Value::Int(p), Value::Float(v)) = (row[0], row[1], row[2]) {
                f(g, p, v);
            }
        });
        Ok(())
    }
}

/// Streaming-mode state of one SQL-engine run: the triple reel plus the
/// semijoin filters staged by the executed join prefix. The materialized
/// `joined` set stays empty in this mode — downstream operators replay the
/// reel through the staged filters instead, batch by batch, in push order.
struct StreamState {
    reel: BatchReel,
    batch_rows: usize,
    threads: usize,
    /// Fused pipeline mode: joins stage their filters without a reel pass
    /// and the consuming operator runs one probe+sink pass per morsel.
    fused: bool,
    gene_filter: Option<HashSet<i64>>,
    patient_filter: Option<HashSet<i64>>,
    /// Triples passing the staged filters — the row count the materialized
    /// join would have produced (labels and byte accounting downstream).
    joined_rows: usize,
}

impl StreamState {
    fn passes(&self, g: i64, p: i64) -> bool {
        self.gene_filter.as_ref().is_none_or(|s| s.contains(&g))
            && self.patient_filter.as_ref().is_none_or(|s| s.contains(&p))
    }

    fn scan(&self) -> ReelScan<'_> {
        ReelScan { state: self }
    }

    /// Semijoin probe of the fused pipeline: mark a batch's survivors of
    /// the staged filters as a selection vector. Pure per-batch function —
    /// safe to run in parallel at any thread count.
    fn probe(&self, m: &Morsel) -> storage::SelVec {
        let g = m.int_col(0).expect("reel gene column");
        let p = m.int_col(1).expect("reel patient column");
        storage::SelVec::from_predicate(m.n_rows(), |i| self.passes(g[i], p[i]))
    }

    /// Filter ids that actually occur in the reel's dense id domain `0..n`
    /// (the reel holds every `(gene, patient)` pair exactly once, so this
    /// is what a counting pass would tally per row of the other dimension).
    fn domain_count(filter: &HashSet<i64>, n: usize) -> usize {
        filter
            .iter()
            .filter(|&&id| id >= 0 && (id as usize) < n)
            .count()
    }

    /// Rows of the reel passing *both* staged filters, computed without a
    /// pass. The fused pipeline records this where the staged path ran a
    /// counting pass, and verifies it against the actual survivor count of
    /// its one fused pass.
    fn expected_survivors(&self, n_genes: usize, n_patients: usize) -> usize {
        let g = match &self.gene_filter {
            Some(f) => Self::domain_count(f, n_genes),
            None => n_genes,
        };
        let p = match &self.patient_filter {
            Some(f) => Self::domain_count(f, n_patients),
            None => n_patients,
        };
        g * p
    }
}

/// [`TripleScan`] over the reel through the staged semijoin filters.
struct ReelScan<'a> {
    state: &'a StreamState,
}

impl TripleScan for ReelScan<'_> {
    fn scan(&self, f: &mut dyn FnMut(i64, i64, f64)) -> Result<()> {
        self.state.reel.replay(|m| {
            let g = m.int_col(0)?;
            let p = m.int_col(1)?;
            let v = m.float_col(2)?;
            for i in 0..m.n_rows() {
                if self.state.passes(g[i], p[i]) {
                    f(g[i], p[i], v[i]);
                }
            }
            Ok(())
        })
    }
}

/// Streaming ingest: carve the dataset's microarray triples into
/// `batch_rows`-row morsels in base order (patient-major, gene-minor — the
/// exact order both stores ingest in) and push them onto a reel. The
/// resident cap is a quarter of the cell budget when one is set, leaving
/// room for the pipeline's sinks; unlimited reels never spill.
fn reel_from_dataset(
    data: &Dataset,
    mem: &MemTracker,
    cfg: &StreamConfig,
    mem_budget: Option<u64>,
) -> Result<BatchReel> {
    if cfg.batch_rows == 0 {
        return Err(Error::invalid("batch_rows must be at least 1"));
    }
    let cap = mem_budget.map(|b| b / 4).unwrap_or(u64::MAX);
    let mut reel = BatchReel::new(mem, triple_schema(), cap, cfg.spill_dir.as_deref());
    let batch = cfg.batch_rows;
    let mut gene_col: Vec<i64> = Vec::with_capacity(batch);
    let mut patient_col: Vec<i64> = Vec::with_capacity(batch);
    let mut value_col: Vec<f64> = Vec::with_capacity(batch);
    let mut flush = |g: &mut Vec<i64>, p: &mut Vec<i64>, v: &mut Vec<f64>| -> Result<()> {
        reel.push(Morsel::from_columns(
            mem,
            vec![
                Column::Ints(std::mem::take(g)),
                Column::Ints(std::mem::take(p)),
                Column::Floats(std::mem::take(v)),
            ],
        )?)
    };
    for p in 0..data.n_patients() {
        let row = data.expression.row(p);
        for (g, &v) in row.iter().enumerate() {
            gene_col.push(g as i64);
            patient_col.push(p as i64);
            value_col.push(v);
            if gene_col.len() == batch {
                flush(&mut gene_col, &mut patient_col, &mut value_col)?;
            }
        }
    }
    if !gene_col.is_empty() {
        flush(&mut gene_col, &mut patient_col, &mut value_col)?;
    }
    Ok(reel)
}

/// Stream the filtered triples out as CSV text chunks in reel order. Chunk
/// boundaries follow batch boundaries; the CSV form has no header row, so
/// the concatenation of the chunks is byte-identical to a whole-set export
/// — which is what keeps the streaming export bridge's re-parse exact.
fn stream_export_chunks(
    st: &StreamState,
    db_budget: &Budget,
    f: &mut dyn FnMut(&str) -> Result<()>,
) -> Result<()> {
    st.reel.replay(|m| {
        let g = m.int_col(0)?;
        let p = m.int_col(1)?;
        let v = m.float_col(2)?;
        let mut gf: Vec<i64> = Vec::new();
        let mut pf: Vec<i64> = Vec::new();
        let mut vf: Vec<f64> = Vec::new();
        for i in 0..m.n_rows() {
            if st.passes(g[i], p[i]) {
                gf.push(g[i]);
                pf.push(p[i]);
                vf.push(v[i]);
            }
        }
        if gf.is_empty() {
            return Ok(());
        }
        let chunk = ColumnTable::from_columns(
            triple_schema(),
            vec![
                ColumnData::Ints(gf),
                ColumnData::Ints(pf),
                ColumnData::Floats(vf),
            ],
        )?;
        let text = genbase_relational::export_csv(&chunk, db_budget)?;
        f(&text)
    })
}

/// In-database restructure: pivot a triple set into a dense matrix through
/// the storage layer's one pivot kernel (single-threaded here — the pivot
/// runs inside one Postgres/column-store backend process).
pub fn pivot(
    set: &TripleSet,
    patient_ids: &[i64],
    gene_ids: &[i64],
    budget: &Budget,
    mem: &MemTracker,
) -> Result<Matrix> {
    storage::pivot_dense(
        &set.view(),
        (1, 0, 2),
        patient_ids,
        gene_ids,
        1,
        mem,
        budget,
    )
}

/// Cache-aware [`pivot`]; `dims` names the source dataset so the cached
/// matrix is shared by every query that pivots the same id selections.
pub fn pivot_cached(
    cache: Option<&CacheScope>,
    dims: (usize, usize),
    set: &TripleSet,
    patient_ids: &[i64],
    gene_ids: &[i64],
    budget: &Budget,
    mem: &MemTracker,
) -> Result<(Matrix, Option<CachePin>)> {
    storage::pivot_dense_cached(
        cache,
        dims,
        &set.view(),
        (1, 0, 2),
        patient_ids,
        gene_ids,
        1,
        mem,
        budget,
    )
}

/// DBMS half of the export bridge: serialize the triple set to CSV text.
pub fn export_triples_csv(set: &TripleSet, db_budget: &Budget, mem: &MemTracker) -> Result<String> {
    storage::export_csv_tracked(set, mem, db_budget)
}

/// R half of the export bridge: `read.csv` the exported text and pivot it
/// into a dense matrix (single-threaded, against the R memory budget).
pub fn pivot_csv_in_r(
    text: &str,
    patient_ids: &[i64],
    gene_ids: &[i64],
    r_budget: &Budget,
    mem: &MemTracker,
) -> Result<Matrix> {
    storage::pivot_csv_tracked(text, patient_ids, gene_ids, mem, r_budget)
}

/// The export bridge end to end: CSV-serialize the triple set (DBMS side),
/// then parse and pivot it "in R". The plan executor traces the two halves
/// as separate `Export` and `Restructure` ops.
pub fn export_and_pivot_in_r(
    set: &TripleSet,
    patient_ids: &[i64],
    gene_ids: &[i64],
    db_budget: &Budget,
    r_budget: &Budget,
    mem: &MemTracker,
) -> Result<Matrix> {
    let text = export_triples_csv(set, db_budget, mem)?;
    pivot_csv_in_r(&text, patient_ids, gene_ids, r_budget, mem)
}

/// The UDF marshalling penalty observed by the paper on the biclustering
/// query: the column store's R-UDF interface hands the matrix over
/// row-at-a-time through boxed records rather than as one block. We
/// reproduce the mechanism: every row is converted to a `Vec<Value>` and
/// back (allocation + boxing per cell).
pub fn udf_row_marshal(mat: &Matrix, budget: &Budget, mem: &MemTracker) -> Result<Matrix> {
    mem.note_input(mat.heap_bytes());
    let mut out = Matrix::zeros(mat.rows(), mat.cols());
    for r in 0..mat.rows() {
        if r % 256 == 0 {
            budget.check("udf marshalling")?;
        }
        let boxed: Vec<Value> = mat.row(r).iter().map(|&v| Value::Float(v)).collect();
        for (c, v) in boxed.iter().enumerate() {
            out.set(r, c, v.as_float()?);
        }
    }
    mem.note_output(out.heap_bytes(), out.rows() as u64);
    Ok(out)
}

/// SQL-simulated covariance (the Madlib path): per-gene means via GROUP BY,
/// then a hash aggregate over all per-patient gene-pair products —
/// `O(m_sel · n²)` hash updates through interpreted plumbing, which is why
/// the paper sees Madlib exceed the cutoff on bigger datasets.
pub fn sql_sim_covariance(
    set: &dyn TripleScan,
    patient_ids: &[i64],
    gene_ids: &[i64],
    budget: &Budget,
) -> Result<Matrix> {
    let n = gene_ids.len();
    let m = patient_ids.len();
    if m < 2 {
        return Err(Error::invalid("covariance requires at least 2 patients"));
    }
    let gene_index: HashMap<i64, usize> =
        gene_ids.iter().enumerate().map(|(i, &g)| (g, i)).collect();
    let patient_index: HashMap<i64, usize> = patient_ids
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i))
        .collect();
    // Pass 1 (SQL GROUP BY gene): means.
    let mut means = vec![0.0; n];
    set.scan(&mut |g, _p, v| {
        if let Some(&gi) = gene_index.get(&g) {
            means[gi] += v;
        }
    })?;
    for mu in &mut means {
        *mu /= m as f64;
    }
    // Pass 2: assemble per-patient centered vectors (array_agg), then the
    // pair-product hash aggregate.
    let mut per_patient: Vec<Vec<f64>> = vec![vec![0.0; n]; m];
    set.scan(&mut |g, p, v| {
        if let (Some(&gi), Some(&pi)) = (gene_index.get(&g), patient_index.get(&p)) {
            per_patient[pi][gi] = v - means[gi];
        }
    })?;
    let mut acc: HashMap<(u32, u32), f64> = HashMap::new();
    for (pi, vec) in per_patient.iter().enumerate() {
        if pi % 4 == 0 {
            budget.check("sql-simulated covariance")?;
        }
        for i in 0..n {
            let vi = vec[i];
            if vi == 0.0 {
                continue;
            }
            for (j, &vj) in vec.iter().enumerate().skip(i) {
                *acc.entry((i as u32, j as u32)).or_insert(0.0) += vi * vj;
            }
        }
    }
    let mut cov = Matrix::zeros(n, n);
    let inv = 1.0 / (m - 1) as f64;
    for ((i, j), v) in acc {
        cov.set(i as usize, j as usize, v * inv);
        cov.set(j as usize, i as usize, v * inv);
    }
    Ok(cov)
}

/// SQL-simulated Lanczos matvec operator (the Madlib SVD path): each
/// operator application is two full passes over the triple table —
/// `u = A v` then `w = Aᵀ u` — executed row-at-a-time as a SQL join +
/// aggregate would be.
pub struct SqlSimGramOp<'a> {
    set: &'a dyn TripleScan,
    patient_index: HashMap<i64, usize>,
    gene_index: HashMap<i64, usize>,
    n_patients: usize,
}

impl<'a> SqlSimGramOp<'a> {
    /// Build from a filtered triple scan and its id universes.
    pub fn new(set: &'a dyn TripleScan, patient_ids: &[i64], gene_ids: &[i64]) -> Self {
        SqlSimGramOp {
            set,
            patient_index: patient_ids
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i))
                .collect(),
            gene_index: gene_ids.iter().enumerate().map(|(i, &g)| (g, i)).collect(),
            n_patients: patient_ids.len(),
        }
    }
}

impl LinearOp for SqlSimGramOp<'_> {
    fn dim(&self) -> usize {
        self.gene_index.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        let mut u = vec![0.0; self.n_patients];
        self.set.scan(&mut |g, p, v| {
            if let (Some(&gi), Some(&pi)) = (self.gene_index.get(&g), self.patient_index.get(&p)) {
                u[pi] += v * x[gi];
            }
        })?;
        y.iter_mut().for_each(|v| *v = 0.0);
        self.set.scan(&mut |g, p, v| {
            if let (Some(&gi), Some(&pi)) = (self.gene_index.get(&g), self.patient_index.get(&p)) {
                y[gi] += v * u[pi];
            }
        })?;
        Ok(())
    }
}

/// Full single-node SQL-engine runner shared by Postgres+R, column store
/// +R/UDFs, and Postgres+Madlib.
pub struct SqlEngineSpec {
    /// Display name.
    pub name: &'static str,
    /// Row or column storage.
    pub kind: StoreKind,
    /// Analytics bridge.
    pub bridge: Bridge,
    /// Pay the UDF row-marshalling penalty on Query 3 (column store + UDFs).
    pub udf_q3_penalty: bool,
}

impl SqlEngineSpec {
    /// Run one query by lowering its logical plan onto the configured
    /// store/bridge pair.
    pub fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        let db_budget = ctx.db_budget();
        let r_budget = ctx.r_budget();
        let mem = ctx.mem_tracker();
        // Untimed ingest (both modes, matching the paper's methodology of
        // timing queries against loaded data). Streaming mode keeps the
        // triples on a morsel reel instead of a base table, so residency is
        // the metadata tables plus the reel's bounded resident window —
        // never the full triple relation.
        let (store, stream) = match &ctx.stream {
            Some(cfg) => {
                let store = SqlStore::ingest_metadata(self.kind, data)?;
                mem.charge(store.heap_bytes())?;
                let reel = reel_from_dataset(data, &mem, cfg, ctx.mem_budget)?;
                let state = StreamState {
                    reel,
                    batch_rows: cfg.batch_rows,
                    threads: ctx.threads.max(1),
                    fused: cfg.fused,
                    gene_filter: None,
                    patient_filter: None,
                    joined_rows: 0,
                };
                (store, Some(state))
            }
            None => {
                let store = SqlStore::ingest(self.kind, data)?;
                mem.charge(store.heap_bytes())?; // store residency under the tracker
                (store, None)
            }
        };
        let backend = SqlBackend {
            spec: self,
            data,
            params,
            query,
            // Analytics run in R (single-threaded) for every bridge;
            // Madlib's C++ aggregate is also single-threaded inside one
            // Postgres backend.
            r_opts: ExecOpts::with_threads(1)
                .with_budget(r_budget.clone())
                .with_progress(ctx.progress.clone()),
            store,
            stream,
            db_budget,
            r_budget,
            mem: mem.clone(),
            cache: ctx.cache.clone(),
            pins: Vec::new(),
            gene_ids: Vec::new(),
            patient_ids: Vec::new(),
            joined: None,
            mat: None,
            y: Vec::new(),
            memberships: Vec::new(),
            scores: Vec::new(),
            cov: None,
            output: None,
        };
        plan::run_plan(backend, query, Tracer::new().with_mem(mem))
    }
}

/// Physical state of one SQL-engine run: the ingested store plus whatever
/// the executed prefix of the plan has produced so far.
struct SqlBackend<'a> {
    spec: &'a SqlEngineSpec,
    data: &'a Dataset,
    params: &'a QueryParams,
    query: Query,
    db_budget: Budget,
    r_budget: Budget,
    mem: MemTracker,
    /// Artifact-cache scope for this run (`None` = always cold).
    cache: Option<CacheScope>,
    /// Pins holding cached artifacts resident for the run's duration.
    pins: Vec<CachePin>,
    r_opts: ExecOpts,
    store: SqlStore,
    stream: Option<StreamState>,
    gene_ids: Vec<i64>,
    patient_ids: Vec<i64>,
    joined: Option<TripleSet>,
    mat: Option<DenseHandle>,
    y: Vec<f64>,
    memberships: Vec<Vec<u32>>,
    scores: Vec<f64>,
    cov: Option<analytics::CovPairs>,
    output: Option<QueryOutput>,
}

impl SqlBackend<'_> {
    fn joined(&self) -> Result<&TripleSet> {
        self.joined
            .as_ref()
            .ok_or_else(|| Error::invalid("triple join did not run before this op"))
    }

    fn mat(&self) -> Result<&Matrix> {
        self.mat
            .as_ref()
            .map(DenseHandle::matrix)
            .ok_or_else(|| Error::invalid("restructure did not run before analytics"))
    }

    /// In-database paths that never materialize a matrix: Madlib simulates
    /// covariance and the SVD matvec directly over the triple table.
    fn analytics_on_triples(&self) -> bool {
        self.spec.bridge == Bridge::InDatabase
            && matches!(self.query, Query::Covariance | Query::Svd)
    }
}

impl PhysicalBackend for SqlBackend<'_> {
    fn prepare(&mut self, tracer: &mut Tracer) -> Result<()> {
        if let Some(st) = &self.stream {
            // Ingest stays untimed in both modes, but the reel's shape is
            // part of the run's record: surface it as a zero-wall op so
            // the ingest-side batch and spill tallies land in the trace.
            tracer.record(
                OpKind::Restructure,
                Phase::DataManagement,
                format!(
                    "stream ingest: {} triples as {}-row morsels",
                    st.reel.total_rows(),
                    st.batch_rows
                ),
                OpCost {
                    bytes_in: st.reel.span_bytes(),
                    bytes_out: st.reel.resident_bytes(),
                    peak_alloc_bytes: self.mem.peak(),
                    rows_materialized: st.reel.total_rows() as u64,
                    batches: st.reel.n_batches() as u64,
                    spill_bytes: st.reel.spill_bytes(),
                    ..OpCost::default()
                },
            );
        }
        Ok(())
    }

    fn execute(&mut self, op: LogicalOp, tracer: &mut Tracer) -> Result<()> {
        let data = self.data;
        let params = self.params;
        match op {
            LogicalOp::FilterGenes => {
                let pred = Pred::IntLt(4, params.function_threshold);
                let store = &self.store;
                let db_budget = &self.db_budget;
                let gene_ids = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("SELECT gene_id WHERE {}", pred.describe(&GENE_COLS)),
                    || store.filter_gene_ids(params.function_threshold, db_budget),
                )?;
                if gene_ids.is_empty() {
                    return Err(Error::invalid("gene filter selected nothing"));
                }
                self.gene_ids = gene_ids;
            }
            LogicalOp::FilterPatients => {
                let pred = match self.query {
                    Query::Covariance => Pred::IntEq(4, params.disease_id),
                    _ => Pred::IntEq(2, params.gender).and(Pred::IntLt(1, params.max_age)),
                };
                let store = &self.store;
                let db_budget = &self.db_budget;
                let patient_ids = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("SELECT patient_id WHERE {}", pred.describe(&PATIENT_COLS)),
                    || store.filter_patient_ids(&pred, db_budget),
                )?;
                match self.query {
                    Query::Covariance if patient_ids.len() < 2 => {
                        return Err(Error::invalid("disease filter selected < 2 patients"))
                    }
                    Query::Biclustering if patient_ids.len() < params.bicluster.min_rows => {
                        return Err(Error::invalid(
                            "age/gender filter selected too few patients",
                        ))
                    }
                    _ => {}
                }
                self.patient_ids = patient_ids;
            }
            LogicalOp::SamplePatients => {
                let count = params.sample_count(data.n_patients());
                let sampled = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("TABLESAMPLE: {count} seeded patient ids"),
                    || {
                        Ok(
                            analytics::sample_patients(data.n_patients(), count, params.seed)
                                .into_iter()
                                .map(|p| p as i64)
                                .collect::<Vec<i64>>(),
                        )
                    },
                )?;
                self.patient_ids = sampled;
            }
            LogicalOp::JoinOnGenes => {
                let store = &self.store;
                let db_budget = &self.db_budget;
                let mem = &self.mem;
                let gene_ids = &self.gene_ids;
                let want_y = self.query == Query::Regression;
                let patient_ids: Vec<i64> = (0..data.n_patients() as i64).collect();
                let label = format!("hash join: triples x {} filtered genes", gene_ids.len());
                if let Some(st) = self.stream.as_mut() {
                    if st.fused {
                        // Fused lowering: stage the filter only — no reel
                        // pass at all. The matched-row count the staged
                        // counting pass would tally is known analytically
                        // (the reel is the dense patient x gene cross
                        // product) and verified by the fused pass later.
                        let filter: HashSet<i64> = gene_ids.iter().copied().collect();
                        let matched =
                            StreamState::domain_count(&filter, data.n_genes()) * data.n_patients();
                        let y = tracer.exec(
                            OpKind::Join,
                            Phase::DataManagement,
                            format!("stage semijoin: {} filtered genes (fused)", gene_ids.len()),
                            || {
                                mem.note_selected(matched as u64);
                                if want_y {
                                    store.drug_responses(&patient_ids)
                                } else {
                                    Ok(Vec::new())
                                }
                            },
                        )?;
                        st.gene_filter = Some(filter);
                        st.joined_rows = matched;
                        self.patient_ids = patient_ids;
                        self.y = y;
                        return Ok(());
                    }
                    // Streaming lowering: stage the join as a semijoin
                    // filter on the reel. The matched-row count (one
                    // parallel counting pass over the morsels) is what the
                    // materialized join would have output.
                    let filter: HashSet<i64> = gene_ids.iter().copied().collect();
                    let reel = &st.reel;
                    let threads = st.threads;
                    let (matched, y) =
                        tracer.exec(OpKind::Join, Phase::DataManagement, label, || {
                            mem.note_input(reel.span_bytes());
                            let counts = reel.map_batches(threads, |m| {
                                let g = m.int_col(0).expect("reel gene column");
                                g.iter().filter(|g| filter.contains(g)).count()
                            })?;
                            let matched: usize = counts.iter().sum();
                            mem.note_output((matched * 24) as u64, matched as u64);
                            mem.note_batches(reel.n_batches() as u64);
                            let y = if want_y {
                                store.drug_responses(&patient_ids)?
                            } else {
                                Vec::new()
                            };
                            Ok((matched, y))
                        })?;
                    st.gene_filter = Some(filter);
                    st.joined_rows = matched;
                    self.patient_ids = patient_ids;
                    self.y = y;
                } else {
                    let cache = self.cache.clone();
                    let dims = (data.n_patients(), data.n_genes());
                    let (joined, pin, y) =
                        tracer.exec(OpKind::Join, Phase::DataManagement, label, || {
                            let (joined, pin) = store.join_triples_on_genes_cached(
                                cache.as_ref(),
                                dims,
                                gene_ids,
                                db_budget,
                                mem,
                            )?;
                            let y = if want_y {
                                store.drug_responses(&patient_ids)?
                            } else {
                                Vec::new()
                            };
                            Ok((joined, pin, y))
                        })?;
                    self.pins.extend(pin);
                    self.joined = Some(joined);
                    self.patient_ids = patient_ids;
                    self.y = y;
                }
            }
            LogicalOp::JoinOnPatients => {
                let store = &self.store;
                let db_budget = &self.db_budget;
                let mem = &self.mem;
                let patient_ids = &self.patient_ids;
                let label = format!(
                    "hash join: triples x {} selected patients",
                    patient_ids.len()
                );
                if let Some(st) = self.stream.as_mut() {
                    if st.fused {
                        // Fused lowering: stage the filter, defer the pass
                        // (see `JoinOnGenes`).
                        let filter: HashSet<i64> = patient_ids.iter().copied().collect();
                        let matched =
                            StreamState::domain_count(&filter, data.n_patients()) * data.n_genes();
                        tracer.exec(
                            OpKind::Join,
                            Phase::DataManagement,
                            format!(
                                "stage semijoin: {} selected patients (fused)",
                                patient_ids.len()
                            ),
                            || {
                                mem.note_selected(matched as u64);
                                Ok(())
                            },
                        )?;
                        st.patient_filter = Some(filter);
                        st.joined_rows = matched;
                    } else {
                        let filter: HashSet<i64> = patient_ids.iter().copied().collect();
                        let reel = &st.reel;
                        let threads = st.threads;
                        let matched =
                            tracer.exec(OpKind::Join, Phase::DataManagement, label, || {
                                mem.note_input(reel.span_bytes());
                                let counts = reel.map_batches(threads, |m| {
                                    let p = m.int_col(1).expect("reel patient column");
                                    p.iter().filter(|p| filter.contains(p)).count()
                                })?;
                                let matched: usize = counts.iter().sum();
                                mem.note_output((matched * 24) as u64, matched as u64);
                                mem.note_batches(reel.n_batches() as u64);
                                Ok(matched)
                            })?;
                        st.patient_filter = Some(filter);
                        st.joined_rows = matched;
                    }
                } else {
                    let cache = self.cache.clone();
                    let dims = (data.n_patients(), data.n_genes());
                    let (joined, pin) =
                        tracer.exec(OpKind::Join, Phase::DataManagement, label, || {
                            store.join_triples_on_patients_cached(
                                cache.as_ref(),
                                dims,
                                patient_ids,
                                db_budget,
                                mem,
                            )
                        })?;
                    self.pins.extend(pin);
                    self.joined = Some(joined);
                }
                if self.gene_ids.is_empty() {
                    self.gene_ids = (0..data.n_genes() as i64).collect();
                }
            }
            LogicalOp::JoinGoTerms => {
                let store = &self.store;
                let memberships = tracer.exec(
                    OpKind::Join,
                    Phase::DataManagement,
                    "join GO membership pairs into per-term gene lists",
                    || store.go_memberships(data.ontology.n_terms()),
                )?;
                self.memberships = memberships;
            }
            LogicalOp::Restructure => {
                if self.analytics_on_triples() {
                    // Madlib covariance/SVD read the triple table directly:
                    // the restructure lowers away (and that is precisely why
                    // those paths are slow — no dense kernel ever runs).
                    return Ok(());
                }
                if self.stream.is_some() {
                    return self.stream_restructure(tracer);
                }
                let mem = &self.mem;
                let mut mat = match self.spec.bridge {
                    Bridge::ExportToR => {
                        let joined = self.joined()?;
                        let db_budget = &self.db_budget;
                        let text = tracer.exec(
                            OpKind::Export,
                            Phase::DataManagement,
                            format!("COPY TO: {} triples as CSV text", joined.n_rows()),
                            || export_triples_csv(joined, db_budget, mem),
                        )?;
                        let (patient_ids, gene_ids) = (&self.patient_ids, &self.gene_ids);
                        let r_budget = &self.r_budget;
                        tracer.exec(
                            OpKind::Restructure,
                            Phase::DataManagement,
                            "R read.csv + pivot to matrix",
                            || {
                                let mat =
                                    pivot_csv_in_r(&text, patient_ids, gene_ids, r_budget, mem)?;
                                DenseHandle::new(mem, mat)
                            },
                        )?
                    }
                    Bridge::InProcess | Bridge::InDatabase => {
                        let joined = self.joined()?;
                        let (patient_ids, gene_ids) = (&self.patient_ids, &self.gene_ids);
                        let db_budget = &self.db_budget;
                        let cache = self.cache.clone();
                        let dims = (data.n_patients(), data.n_genes());
                        let mut pin = None;
                        let handle = tracer.exec(
                            OpKind::Restructure,
                            Phase::DataManagement,
                            format!(
                                "in-database pivot to {}x{} matrix",
                                patient_ids.len(),
                                gene_ids.len()
                            ),
                            || {
                                let (mat, p) = pivot_cached(
                                    cache.as_ref(),
                                    dims,
                                    joined,
                                    patient_ids,
                                    gene_ids,
                                    db_budget,
                                    mem,
                                )?;
                                pin = p;
                                DenseHandle::new(mem, mat)
                            },
                        )?;
                        self.pins.extend(pin);
                        handle
                    }
                };
                if self.spec.udf_q3_penalty && self.query == Query::Biclustering {
                    let db_budget = &self.db_budget;
                    mat = tracer.exec(
                        OpKind::Marshal,
                        Phase::DataManagement,
                        "UDF interface: box every row as records",
                        || {
                            let boxed = udf_row_marshal(&mat, db_budget, mem)?;
                            DenseHandle::new(mem, boxed)
                        },
                    )?;
                }
                self.mat = Some(mat);
            }
            LogicalOp::GroupAgg => {
                let mem = &self.mem;
                let n_genes = data.n_genes();
                let label = "GROUP BY gene_id: per-gene mean of the sample";
                let scores = if let Some(st) = self.stream.as_ref().filter(|st| st.fused) {
                    // Fused lowering: the only reel pass of the Statistics
                    // pipeline — parallel semijoin probe, serial in-push-
                    // order accumulate over the survivors, so the f64 sums
                    // are bit-identical to the staged hash aggregate.
                    let expected = st.expected_survivors(data.n_genes(), data.n_patients()) as u64;
                    tracer.exec(
                        OpKind::GroupAgg,
                        Phase::DataManagement,
                        format!("{label} (fused)"),
                        || {
                            mem.note_input(st.reel.span_bytes());
                            mem.note_output((n_genes * 8) as u64, n_genes as u64);
                            mem.note_batches(st.reel.n_batches() as u64);
                            let mut acc: HashMap<i64, (f64, u64)> = HashMap::new();
                            let survivors = storage::fused_scan(
                                &st.reel,
                                st.threads,
                                |m| st.probe(m),
                                |m, sel| {
                                    let g = m.int_col(0)?;
                                    let v = m.float_col(2)?;
                                    for &i in sel.positions() {
                                        let e = acc.entry(g[i as usize]).or_insert((0.0, 0));
                                        e.0 += v[i as usize];
                                        e.1 += 1;
                                    }
                                    Ok(())
                                },
                            )?;
                            if survivors != expected {
                                return Err(Error::invalid(format!(
                                    "fused group-by saw {survivors} survivors, expected {expected}"
                                )));
                            }
                            mem.note_selected(survivors);
                            let mut groups: Vec<(i64, f64, u64)> =
                                acc.into_iter().map(|(k, (s, c))| (k, s, c)).collect();
                            groups.sort_unstable_by_key(|&(k, _, _)| k);
                            let mut scores = vec![0.0; n_genes];
                            for (g, s, c) in groups {
                                if (g as usize) < scores.len() && c > 0 {
                                    scores[g as usize] = s / c as f64;
                                }
                            }
                            Ok(scores)
                        },
                    )?
                } else if let Some(st) = self.stream.as_ref() {
                    tracer.exec(OpKind::GroupAgg, Phase::DataManagement, label, || {
                        mem.note_input((st.joined_rows * 24) as u64);
                        mem.note_output((n_genes * 8) as u64, n_genes as u64);
                        mem.note_batches(st.reel.n_batches() as u64);
                        // Same hash-aggregate as the materialized
                        // `group_sum`, accumulating in replay (== row)
                        // order so the f64 sums are bit-identical.
                        let mut acc: HashMap<i64, (f64, u64)> = HashMap::new();
                        st.scan().scan(&mut |g, _p, v| {
                            let e = acc.entry(g).or_insert((0.0, 0));
                            e.0 += v;
                            e.1 += 1;
                        })?;
                        let mut groups: Vec<(i64, f64, u64)> =
                            acc.into_iter().map(|(k, (s, c))| (k, s, c)).collect();
                        groups.sort_unstable_by_key(|&(k, _, _)| k);
                        let mut scores = vec![0.0; n_genes];
                        for (g, s, c) in groups {
                            if (g as usize) < scores.len() && c > 0 {
                                scores[g as usize] = s / c as f64;
                            }
                        }
                        Ok(scores)
                    })?
                } else {
                    let store = &self.store;
                    let joined = self.joined()?;
                    tracer.exec(OpKind::GroupAgg, Phase::DataManagement, label, || {
                        mem.note_input(joined.heap_bytes());
                        mem.note_output((n_genes * 8) as u64, n_genes as u64);
                        let groups = store.group_sum_by_gene(joined)?;
                        let mut scores = vec![0.0; n_genes];
                        for (g, s, c) in groups {
                            if (g as usize) < scores.len() && c > 0 {
                                scores[g as usize] = s / c as f64;
                            }
                        }
                        Ok(scores)
                    })?
                };
                self.scores = scores;
            }
            LogicalOp::Analytics(kernel) => self.run_kernel(kernel, tracer)?,
            LogicalOp::JoinGeneMetadata => {
                let (threshold, idx_pairs) = self.cov.take().ok_or_else(|| {
                    Error::invalid("covariance kernel did not run before metadata join")
                })?;
                let store = &self.store;
                let gene_ids = &self.gene_ids;
                let pairs = tracer.exec(
                    OpKind::Join,
                    Phase::DataManagement,
                    "join top pairs back to gene function codes",
                    || {
                        let functions = store.gene_functions()?;
                        attach_gene_metadata(&idx_pairs, gene_ids, &functions)
                    },
                )?;
                self.output = Some(QueryOutput::Covariance { threshold, pairs });
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<QueryOutput> {
        self.output
            .take()
            .ok_or_else(|| Error::invalid("plan produced no output"))
    }
}

impl SqlBackend<'_> {
    /// Streaming lowering of [`LogicalOp::Restructure`]: replay the reel
    /// through the staged semijoin filters and scatter each batch straight
    /// into the dense matrix, so no materialized triple set (and, on the
    /// export bridge, no whole-set CSV text) ever exists. Scatter order is
    /// replay order == base row order, so last-write-wins duplicate
    /// resolution — and therefore the matrix — is bit-identical to the
    /// materializing pivot.
    fn stream_restructure(&mut self, tracer: &mut Tracer) -> Result<()> {
        if self.stream.as_ref().is_some_and(|st| st.fused) {
            return self.fused_restructure(tracer);
        }
        let st = self.stream.as_ref().expect("streaming state");
        let mem = &self.mem;
        let (patient_ids, gene_ids) = (&self.patient_ids, &self.gene_ids);
        let rows = patient_ids.len();
        let cols = gene_ids.len();
        let row_index: HashMap<i64, usize> = patient_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let col_index: HashMap<i64, usize> = gene_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut mat = match self.spec.bridge {
            Bridge::ExportToR => {
                // DBMS half: the COPY producer, streamed chunk by chunk.
                // The text is transient, so the R half below re-produces
                // each chunk instead of buffering the full serialization —
                // that re-production is the price of never holding it.
                let db_budget = &self.db_budget;
                tracer.exec(
                    OpKind::Export,
                    Phase::DataManagement,
                    format!("COPY TO: {} triples as CSV text", st.joined_rows),
                    || {
                        mem.note_input((st.joined_rows * 24) as u64);
                        let mut total = 0u64;
                        stream_export_chunks(st, db_budget, &mut |text| {
                            total += text.len() as u64;
                            Ok(())
                        })?;
                        mem.note_output(total, st.joined_rows as u64);
                        mem.note_batches(st.reel.n_batches() as u64);
                        Ok(())
                    },
                )?;
                let r_budget = &self.r_budget;
                tracer.exec(
                    OpKind::Restructure,
                    Phase::DataManagement,
                    "R read.csv + pivot to matrix",
                    || {
                        let mut mat = Matrix::zeros_budgeted(rows, cols, r_budget)?;
                        let mut in_bytes = 0u64;
                        stream_export_chunks(st, db_budget, &mut |text| {
                            in_bytes += text.len() as u64;
                            let parsed = genbase_relational::import_matrix_csv(text, r_budget)?;
                            if parsed.cols != 3 && parsed.rows != 0 {
                                return Err(Error::invalid("exported triples must have 3 columns"));
                            }
                            for r in 0..parsed.rows {
                                let g = parsed.data[r * 3] as i64;
                                let p = parsed.data[r * 3 + 1] as i64;
                                let v = parsed.data[r * 3 + 2];
                                if let (Some(&ri), Some(&ci)) =
                                    (row_index.get(&p), col_index.get(&g))
                                {
                                    mat.set(ri, ci, v);
                                }
                            }
                            Ok(())
                        })?;
                        mem.note_input(in_bytes);
                        r_budget.free(mat.heap_bytes());
                        mem.note_output(mat.heap_bytes(), mat.rows() as u64);
                        mem.note_batches(st.reel.n_batches() as u64);
                        DenseHandle::new(mem, mat)
                    },
                )?
            }
            Bridge::InProcess | Bridge::InDatabase => {
                let db_budget = &self.db_budget;
                let cache = self.cache.clone();
                let dims = (self.data.n_patients(), self.data.n_genes());
                let mut pin = None;
                let handle = tracer.exec(
                    OpKind::Restructure,
                    Phase::DataManagement,
                    format!("in-database pivot to {rows}x{cols} matrix"),
                    || {
                        let mut build = None;
                        if let Some(scope) = cache.as_ref() {
                            let extra = format!(
                                "r{:016x}|k{:016x}",
                                storage::digest_ids(patient_ids),
                                storage::digest_ids(gene_ids)
                            );
                            let key = scope.key(dims.0, dims.1, "stream-pivot", &extra);
                            match scope.cache().begin(&key) {
                                storage::Lookup::Hit(value, p) => {
                                    let cached = value.as_dense().ok_or_else(|| {
                                        Error::invalid("cache type confusion on a stream-pivot key")
                                    })?;
                                    // Replay the cold pivot's accounting
                                    // exactly; skip only the reel scatter.
                                    db_budget.check("pivot")?;
                                    mem.note_input(st.reel.span_bytes());
                                    db_budget
                                        .alloc((rows * cols * 8) as u64, (rows * cols) as u64)?;
                                    db_budget.free((rows * cols * 8) as u64);
                                    let mat = cached.clone();
                                    mem.note_output(mat.heap_bytes(), mat.rows() as u64);
                                    mem.note_batches(st.reel.n_batches() as u64);
                                    mem.note_cache_hit();
                                    pin = Some(p);
                                    return DenseHandle::new(mem, mat);
                                }
                                storage::Lookup::Build(slot) => build = Some(slot),
                            }
                        }
                        db_budget.check("pivot")?;
                        mem.note_input(st.reel.span_bytes());
                        db_budget.alloc((rows * cols * 8) as u64, (rows * cols) as u64)?;
                        let mut data = vec![0.0; rows * cols];
                        // The index maps' key sets equal the staged join
                        // filters, so the lookups implement the semijoin.
                        st.reel.replay(|m| {
                            let gc = m.int_col(0)?;
                            let pc = m.int_col(1)?;
                            let vc = m.float_col(2)?;
                            for i in 0..m.n_rows() {
                                if let (Some(&ri), Some(&ci)) =
                                    (row_index.get(&pc[i]), col_index.get(&gc[i]))
                                {
                                    data[ri * cols + ci] = vc[i];
                                }
                            }
                            Ok(())
                        })?;
                        db_budget.free((rows * cols * 8) as u64);
                        let mat = Matrix::from_vec(rows, cols, data)?;
                        if let Some(slot) = build {
                            pin = slot
                                .fill(CacheValue::Dense(mat.clone()))
                                .map(|(_, pin)| pin);
                        }
                        mem.note_output(mat.heap_bytes(), mat.rows() as u64);
                        mem.note_batches(st.reel.n_batches() as u64);
                        DenseHandle::new(mem, mat)
                    },
                )?;
                self.pins.extend(pin);
                handle
            }
        };
        if self.spec.udf_q3_penalty && self.query == Query::Biclustering {
            let db_budget = &self.db_budget;
            mat = tracer.exec(
                OpKind::Marshal,
                Phase::DataManagement,
                "UDF interface: box every row as records",
                || {
                    let boxed = udf_row_marshal(&mat, db_budget, mem)?;
                    DenseHandle::new(mem, boxed)
                },
            )?;
        }
        self.mat = Some(mat);
        Ok(())
    }

    /// Fused lowering of [`LogicalOp::Restructure`]: the deferred semijoin
    /// and the pivot/export run as *one* probe+sink pass over the reel
    /// ([`genbase_storage::fused_scan`]) — the staged path's counting pass
    /// and double export pass never happen. The probe marks each batch's
    /// survivors in parallel; the serial in-push-order sink scatters (or
    /// serializes, re-parses, and scatters, on the export bridge) only the
    /// survivors, so duplicate resolution and f64 effects are bit-identical
    /// to the staged and materializing paths.
    fn fused_restructure(&mut self, tracer: &mut Tracer) -> Result<()> {
        let st = self.stream.as_ref().expect("streaming state");
        let mem = &self.mem;
        let (patient_ids, gene_ids) = (&self.patient_ids, &self.gene_ids);
        let rows = patient_ids.len();
        let cols = gene_ids.len();
        let row_index: HashMap<i64, usize> = patient_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let col_index: HashMap<i64, usize> = gene_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let expected = st.expected_survivors(self.data.n_genes(), self.data.n_patients()) as u64;
        let n_batches = st.reel.n_batches() as u64;
        let mut mat = match self.spec.bridge {
            Bridge::ExportToR => {
                // One pass drives both halves of the bridge: the sink
                // serializes each batch's survivors straight off the
                // selection vector, immediately re-parses the chunk (the
                // values still make the CSV format -> parse round trip the
                // bridge measures) and scatters it, then drops the text.
                // The R half's tallies are recorded as its own trace op
                // below, from the same pass.
                let db_budget = &self.db_budget;
                let r_budget = &self.r_budget;
                let mut text_total = 0u64;
                let mut mat_stats = (0u64, 0u64); // (heap bytes, rows)
                let handle = tracer.exec(
                    OpKind::Export,
                    Phase::DataManagement,
                    format!("fused COPY TO: {} triples as CSV text", st.joined_rows),
                    || {
                        mem.note_input(st.reel.span_bytes());
                        db_budget.check("csv export")?;
                        let mut mat = Matrix::zeros_budgeted(rows, cols, r_budget)?;
                        let survivors = storage::fused_scan(
                            &st.reel,
                            st.threads,
                            |m| st.probe(m),
                            |m, sel| {
                                if sel.is_empty() {
                                    return Ok(());
                                }
                                let mut text = String::new();
                                storage::csv_selected(m, sel, &mut text);
                                text_total += text.len() as u64;
                                let parsed =
                                    genbase_relational::import_matrix_csv(&text, r_budget)?;
                                if parsed.cols != 3 && parsed.rows != 0 {
                                    return Err(Error::invalid(
                                        "exported triples must have 3 columns",
                                    ));
                                }
                                for r in 0..parsed.rows {
                                    let g = parsed.data[r * 3] as i64;
                                    let p = parsed.data[r * 3 + 1] as i64;
                                    let v = parsed.data[r * 3 + 2];
                                    if let (Some(&ri), Some(&ci)) =
                                        (row_index.get(&p), col_index.get(&g))
                                    {
                                        mat.set(ri, ci, v);
                                    }
                                }
                                Ok(())
                            },
                        )?;
                        if survivors != expected {
                            return Err(Error::invalid(format!(
                                "fused export saw {survivors} survivors, expected {expected}"
                            )));
                        }
                        mem.note_output(text_total, st.joined_rows as u64);
                        mem.note_batches(n_batches);
                        mem.note_selected(survivors);
                        r_budget.free(mat.heap_bytes());
                        mat_stats = (mat.heap_bytes(), mat.rows() as u64);
                        DenseHandle::new(mem, mat)
                    },
                )?;
                tracer.record(
                    OpKind::Restructure,
                    Phase::DataManagement,
                    "R read.csv + pivot to matrix (fused pass)".to_string(),
                    OpCost {
                        bytes_in: text_total,
                        bytes_out: mat_stats.0,
                        peak_alloc_bytes: mem.peak(),
                        rows_materialized: mat_stats.1,
                        batches: n_batches,
                        rows_selected: expected,
                        ..OpCost::default()
                    },
                );
                handle
            }
            Bridge::InProcess | Bridge::InDatabase => {
                let db_budget = &self.db_budget;
                let cache = self.cache.clone();
                let dims = (self.data.n_patients(), self.data.n_genes());
                let mut pin = None;
                let handle = tracer.exec(
                    OpKind::Restructure,
                    Phase::DataManagement,
                    format!("fused pivot to {rows}x{cols} matrix"),
                    || {
                        let mut build = None;
                        if let Some(scope) = cache.as_ref() {
                            // A fused artifact is bit-identical to the
                            // staged one, but its key stays distinct
                            // ("fused-pivot") so a warm fused cell replays
                            // *fused* cold accounting, never staged.
                            let extra = format!(
                                "r{:016x}|k{:016x}",
                                storage::digest_ids(patient_ids),
                                storage::digest_ids(gene_ids)
                            );
                            let key = scope.key(dims.0, dims.1, "fused-pivot", &extra);
                            match scope.cache().begin(&key) {
                                storage::Lookup::Hit(value, p) => {
                                    let cached = value.as_dense().ok_or_else(|| {
                                        Error::invalid("cache type confusion on a fused-pivot key")
                                    })?;
                                    db_budget.check("pivot")?;
                                    mem.note_input(st.reel.span_bytes());
                                    db_budget
                                        .alloc((rows * cols * 8) as u64, (rows * cols) as u64)?;
                                    db_budget.free((rows * cols * 8) as u64);
                                    let mat = cached.clone();
                                    mem.note_output(mat.heap_bytes(), mat.rows() as u64);
                                    mem.note_batches(n_batches);
                                    mem.note_cache_hit();
                                    mem.note_selected(expected);
                                    pin = Some(p);
                                    return DenseHandle::new(mem, mat);
                                }
                                storage::Lookup::Build(slot) => build = Some(slot),
                            }
                        }
                        db_budget.check("pivot")?;
                        mem.note_input(st.reel.span_bytes());
                        db_budget.alloc((rows * cols * 8) as u64, (rows * cols) as u64)?;
                        let mut data = vec![0.0; rows * cols];
                        let survivors = storage::fused_scan(
                            &st.reel,
                            st.threads,
                            |m| st.probe(m),
                            |m, sel| {
                                storage::scatter_selected(
                                    m, sel, 1, 0, 2, &row_index, &col_index, cols, &mut data,
                                )
                            },
                        )?;
                        if survivors != expected {
                            return Err(Error::invalid(format!(
                                "fused pivot saw {survivors} survivors, expected {expected}"
                            )));
                        }
                        db_budget.free((rows * cols * 8) as u64);
                        let mat = Matrix::from_vec(rows, cols, data)?;
                        if let Some(slot) = build {
                            pin = slot
                                .fill(CacheValue::Dense(mat.clone()))
                                .map(|(_, pin)| pin);
                        }
                        mem.note_output(mat.heap_bytes(), mat.rows() as u64);
                        mem.note_batches(n_batches);
                        mem.note_selected(survivors);
                        DenseHandle::new(mem, mat)
                    },
                )?;
                self.pins.extend(pin);
                handle
            }
        };
        if self.spec.udf_q3_penalty && self.query == Query::Biclustering {
            let db_budget = &self.db_budget;
            mat = tracer.exec(
                OpKind::Marshal,
                Phase::DataManagement,
                "UDF interface: box every row as records",
                || {
                    let boxed = udf_row_marshal(&mat, db_budget, mem)?;
                    DenseHandle::new(mem, boxed)
                },
            )?;
        }
        self.mat = Some(mat);
        Ok(())
    }

    fn run_kernel(&mut self, kernel: Kernel, tracer: &mut Tracer) -> Result<()> {
        let params = self.params;
        let r_opts = self.r_opts.clone();
        match kernel {
            Kernel::Regression => {
                let (method, label) = if self.spec.bridge == Bridge::InDatabase {
                    // Madlib linregr: one streaming normal-equation pass.
                    (
                        RegressionMethod::NormalEquations,
                        "Madlib linregr: streaming normal equations",
                    )
                } else {
                    (RegressionMethod::Qr, "R lm(): QR least squares")
                };
                let mat = self.mat()?;
                let (y, gene_ids) = (&self.y, &self.gene_ids);
                let out = tracer.exec(OpKind::Analytics, Phase::Analytics, label, || {
                    analytics::fit_regression(mat, y, gene_ids, method, &r_opts)
                })?;
                self.output = Some(out);
            }
            Kernel::Covariance => {
                let cov = if self.spec.bridge == Bridge::InDatabase {
                    let (patient_ids, gene_ids) = (&self.patient_ids, &self.gene_ids);
                    let db_budget = &self.db_budget;
                    let stream_scan;
                    let scan: &dyn TripleScan = match self.stream.as_ref() {
                        Some(st) => {
                            stream_scan = st.scan();
                            &stream_scan
                        }
                        None => self.joined()?,
                    };
                    tracer.exec(
                        OpKind::Analytics,
                        Phase::Analytics,
                        "covariance simulated in SQL: pair-product hash aggregate",
                        || {
                            let cov = sql_sim_covariance(scan, patient_ids, gene_ids, db_budget)?;
                            Ok(analytics::pairs_from_cov(&cov, params.top_pair_fraction))
                        },
                    )?
                } else {
                    let mat = self.mat()?;
                    tracer.exec(
                        OpKind::Analytics,
                        Phase::Analytics,
                        "R cov() + top-fraction threshold",
                        || analytics::covariance_pairs(mat, params.top_pair_fraction, &r_opts),
                    )?
                };
                self.cov = Some(cov);
            }
            Kernel::Biclustering => {
                let mat = self.mat()?;
                let (patient_ids, gene_ids) = (&self.patient_ids, &self.gene_ids);
                let out = tracer.exec(
                    OpKind::Analytics,
                    Phase::Analytics,
                    "Cheng-Church delta-biclustering (R UDF)",
                    || {
                        analytics::bicluster_output(
                            mat,
                            patient_ids,
                            gene_ids,
                            &params.bicluster,
                            &r_opts,
                        )
                    },
                )?;
                self.output = Some(out);
            }
            Kernel::Svd => {
                let out = if self.spec.bridge == Bridge::InDatabase {
                    // Madlib SVD: Lanczos whose matvec is simulated in SQL.
                    let (patient_ids, gene_ids) = (&self.patient_ids, &self.gene_ids);
                    let stream_scan;
                    let scan: &dyn TripleScan = match self.stream.as_ref() {
                        Some(st) => {
                            stream_scan = st.scan();
                            &stream_scan
                        }
                        None => self.joined()?,
                    };
                    tracer.exec(
                        OpKind::Analytics,
                        Phase::Analytics,
                        "Lanczos with SQL-simulated matvec (two triple scans/iter)",
                        || {
                            let op = SqlSimGramOp::new(scan, patient_ids, gene_ids);
                            let k = params.svd_k.min(gene_ids.len()).max(1);
                            let res = lanczos_topk(&op, k, 0, params.seed, &r_opts)?;
                            Ok(QueryOutput::Svd {
                                eigenvalues: res.eigenvalues,
                            })
                        },
                    )?
                } else {
                    let mat = self.mat()?;
                    tracer.exec(
                        OpKind::Analytics,
                        Phase::Analytics,
                        "R svd(): Lanczos top-k eigenpairs",
                        || analytics::svd_output(mat, params.svd_k, params.seed, &r_opts),
                    )?
                };
                self.output = Some(out);
            }
            Kernel::Enrichment => {
                let (scores, memberships) = (&self.scores, &self.memberships);
                let out = tracer.exec(
                    OpKind::Analytics,
                    Phase::Analytics,
                    "per-GO-term wilcox.test",
                    || analytics::enrichment_output(scores, memberships, &r_opts),
                )?;
                self.output = Some(out);
            }
        }
        Ok(())
    }
}

/// One covariance output row: `(gene_a, gene_b, cov, function_a, function_b)`.
pub type CovRow = (i64, i64, f64, i64, i64);

/// Join covariance pairs back to gene metadata (function codes).
pub fn attach_gene_metadata(
    idx_pairs: &[(usize, usize, f64)],
    gene_ids: &[i64],
    functions: &HashMap<i64, i64>,
) -> Result<Vec<CovRow>> {
    idx_pairs
        .iter()
        .map(|&(a, b, v)| {
            let ga = gene_ids[a];
            let gb = gene_ids[b];
            let fa = *functions
                .get(&ga)
                .ok_or_else(|| Error::invalid(format!("no metadata for gene {ga}")))?;
            let fb = *functions
                .get(&gb)
                .ok_or_else(|| Error::invalid(format!("no metadata for gene {gb}")))?;
            Ok((ga, gb, v, fa, fb))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

    fn mem() -> MemTracker {
        MemTracker::unlimited()
    }

    fn tiny() -> Dataset {
        generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap()
    }

    #[test]
    fn stores_agree_on_filters() {
        let data = tiny();
        let row = SqlStore::ingest(StoreKind::Row, &data).unwrap();
        let col = SqlStore::ingest(StoreKind::Column, &data).unwrap();
        let b = Budget::unlimited();
        assert_eq!(
            row.filter_gene_ids(250, &b).unwrap(),
            col.filter_gene_ids(250, &b).unwrap()
        );
        let pred = Pred::IntEq(2, 1).and(Pred::IntLt(1, 40));
        assert_eq!(
            row.filter_patient_ids(&pred, &b).unwrap(),
            col.filter_patient_ids(&pred, &b).unwrap()
        );
    }

    #[test]
    fn join_and_pivot_reconstruct_submatrix() {
        let data = tiny();
        let store = SqlStore::ingest(StoreKind::Column, &data).unwrap();
        let b = Budget::unlimited();
        let gene_ids = store.filter_gene_ids(250, &b).unwrap();
        let joined = store.join_triples_on_genes(&gene_ids, &b, &mem()).unwrap();
        assert_eq!(joined.n_rows(), gene_ids.len() * data.n_patients());
        let patient_ids: Vec<i64> = (0..data.n_patients() as i64).collect();
        let mat = pivot(&joined, &patient_ids, &gene_ids, &b, &mem()).unwrap();
        assert_eq!(mat.shape(), (data.n_patients(), gene_ids.len()));
        for (ci, &g) in gene_ids.iter().enumerate() {
            for p in 0..data.n_patients() {
                assert_eq!(mat.get(p, ci), data.expression.get(p, g as usize));
            }
        }
    }

    #[test]
    fn export_bridge_matches_in_process_pivot() {
        let data = tiny();
        let store = SqlStore::ingest(StoreKind::Row, &data).unwrap();
        let b = Budget::unlimited();
        let gene_ids = store.filter_gene_ids(250, &b).unwrap();
        let joined = store.join_triples_on_genes(&gene_ids, &b, &mem()).unwrap();
        let patient_ids: Vec<i64> = (0..data.n_patients() as i64).collect();
        let direct = pivot(&joined, &patient_ids, &gene_ids, &b, &mem()).unwrap();
        let via_csv =
            export_and_pivot_in_r(&joined, &patient_ids, &gene_ids, &b, &b, &mem()).unwrap();
        assert!(direct.approx_eq(&via_csv, 0.0), "CSV round trip is exact");
    }

    #[test]
    fn udf_marshal_is_identity_on_values() {
        let mat = Matrix::from_fn(10, 7, |r, c| (r * 7 + c) as f64);
        let out = udf_row_marshal(&mat, &Budget::unlimited(), &mem()).unwrap();
        assert_eq!(mat, out);
    }

    #[test]
    fn sql_sim_covariance_matches_fast_path() {
        let data = tiny();
        let store = SqlStore::ingest(StoreKind::Row, &data).unwrap();
        let b = Budget::unlimited();
        let patient_ids: Vec<i64> = (0..20).collect();
        let joined = store
            .join_triples_on_patients(&patient_ids, &b, &mem())
            .unwrap();
        let gene_ids: Vec<i64> = (0..data.n_genes() as i64).collect();
        let slow = sql_sim_covariance(&joined, &patient_ids, &gene_ids, &b).unwrap();
        let mat = pivot(&joined, &patient_ids, &gene_ids, &b, &mem()).unwrap();
        let fast = genbase_linalg::covariance(&mat, &ExecOpts::serial()).unwrap();
        assert!(slow.approx_eq(&fast, 1e-9));
    }

    #[test]
    fn sql_sim_gram_op_matches_dense() {
        let data = tiny();
        let store = SqlStore::ingest(StoreKind::Column, &data).unwrap();
        let b = Budget::unlimited();
        let gene_ids = store.filter_gene_ids(250, &b).unwrap();
        let joined = store.join_triples_on_genes(&gene_ids, &b, &mem()).unwrap();
        let patient_ids: Vec<i64> = (0..data.n_patients() as i64).collect();
        let op = SqlSimGramOp::new(&joined, &patient_ids, &gene_ids);
        let mat = pivot(&joined, &patient_ids, &gene_ids, &b, &mem()).unwrap();
        let x: Vec<f64> = (0..gene_ids.len()).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0; gene_ids.len()];
        op.apply(&x, &mut y).unwrap();
        let ax = genbase_linalg::matvec(&mat, &x);
        let expect = genbase_linalg::matvec_transposed(&mat, &ax);
        for (a, e) in y.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-9);
        }
    }

    #[test]
    fn metadata_attachment() {
        let mut functions = HashMap::new();
        functions.insert(5i64, 100i64);
        functions.insert(9, 200);
        let pairs = attach_gene_metadata(&[(0, 1, 0.5)], &[5, 9], &functions).unwrap();
        assert_eq!(pairs, vec![(5, 9, 0.5, 100, 200)]);
        assert!(attach_gene_metadata(&[(0, 1, 0.5)], &[5, 7], &functions).is_err());
    }
}
