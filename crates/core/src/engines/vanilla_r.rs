//! Vanilla R: the whole benchmark inside one single-threaded, memory-bound
//! in-memory runtime.
//!
//! R keeps everything in process memory (data frames + a numeric matrix),
//! runs one thread regardless of core count, and dies when its allocations
//! exceed the machine (the paper: "R alone ... cannot scale to the large
//! dataset"). The load step models R's real behavior: a transient read
//! buffer, a persistent triple data frame, and the pivoted matrix — about
//! 56 bytes/cell peak, which is exactly what pushes the Large dataset over
//! the scaled 48 GB budget while Medium survives.

use crate::analytics;
use crate::engine::{Engine, ExecContext, PhaseClock};
use crate::query::{Query, QueryOutput, QueryParams};
use crate::report::{PhaseTimes, QueryReport};
use genbase_datagen::Dataset;
use genbase_linalg::{ExecOpts, Matrix, RegressionMethod};
use genbase_util::{budget::AllocGuard, Error, Result};

/// The vanilla R configuration.
#[derive(Debug, Default)]
pub struct VanillaR;

impl VanillaR {
    /// New engine.
    pub fn new() -> VanillaR {
        VanillaR
    }
}

impl Engine for VanillaR {
    fn name(&self) -> &'static str {
        "Vanilla R"
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        let budget = ctx.r_budget();
        let opts = ExecOpts::with_threads(1).with_budget(budget.clone());
        let mut phases = PhaseTimes::default();

        // ---- load (data management) ---------------------------------------
        let clock = PhaseClock::start();
        let cells = (data.n_patients() * data.n_genes()) as u64;
        // Transient read.csv buffer (3 numeric columns), freed after parse.
        let read_buffer = AllocGuard::claim(&budget, cells * 24, cells)?;
        // Persistent triple data frame: build real column vectors (this is
        // genuine work, like R materializing the frame).
        budget.alloc(cells * 24, cells)?;
        let mut value_col: Vec<f64> = Vec::with_capacity(cells as usize);
        for p in 0..data.n_patients() {
            value_col.extend_from_slice(data.expression.row(p));
        }
        drop(read_buffer);
        // Pivot to the working matrix (kept for all queries).
        let mut matrix = Matrix::zeros_budgeted(data.n_patients(), data.n_genes(), &budget)?;
        for p in 0..data.n_patients() {
            matrix
                .row_mut(p)
                .copy_from_slice(&value_col[p * data.n_genes()..(p + 1) * data.n_genes()]);
        }
        drop(value_col);
        budget.free(cells * 24);
        phases.data_management.wall_secs += clock.secs();

        // ---- query -----------------------------------------------------------
        let output = match query {
            Query::Regression => {
                let clock = PhaseClock::start();
                let gene_ids: Vec<i64> = data
                    .genes
                    .iter()
                    .filter(|g| g.function < params.function_threshold)
                    .map(|g| g.id as i64)
                    .collect();
                if gene_ids.is_empty() {
                    return Err(Error::invalid("gene filter selected nothing"));
                }
                let cols: Vec<usize> = gene_ids.iter().map(|&g| g as usize).collect();
                let sub_guard = AllocGuard::claim(
                    &budget,
                    (matrix.rows() * cols.len() * 8) as u64,
                    (matrix.rows() * cols.len()) as u64,
                )?;
                let x = matrix.select_cols(&cols);
                let y: Vec<f64> = data.patients.iter().map(|p| p.drug_response).collect();
                phases.data_management.wall_secs += clock.secs();
                let clock = PhaseClock::start();
                let out =
                    analytics::fit_regression(&x, &y, &gene_ids, RegressionMethod::Qr, &opts)?;
                phases.analytics.wall_secs += clock.secs();
                drop(sub_guard);
                out
            }
            Query::Covariance => {
                let clock = PhaseClock::start();
                let rows: Vec<usize> = data
                    .patients
                    .iter()
                    .filter(|p| p.disease_id == params.disease_id)
                    .map(|p| p.id as usize)
                    .collect();
                if rows.len() < 2 {
                    return Err(Error::invalid("disease filter selected < 2 patients"));
                }
                let sub = matrix.select_rows(&rows);
                phases.data_management.wall_secs += clock.secs();
                let clock = PhaseClock::start();
                let (threshold, idx_pairs) =
                    analytics::covariance_pairs(&sub, params.top_pair_fraction, &opts)?;
                phases.analytics.wall_secs += clock.secs();
                let clock = PhaseClock::start();
                let gene_ids: Vec<i64> = (0..data.n_genes() as i64).collect();
                let functions = data
                    .genes
                    .iter()
                    .map(|g| (g.id as i64, g.function))
                    .collect();
                let pairs =
                    super::sql_common::attach_gene_metadata(&idx_pairs, &gene_ids, &functions)?;
                phases.data_management.wall_secs += clock.secs();
                QueryOutput::Covariance { threshold, pairs }
            }
            Query::Biclustering => {
                let clock = PhaseClock::start();
                let patient_ids: Vec<i64> = data
                    .patients
                    .iter()
                    .filter(|p| p.gender == params.gender && p.age < params.max_age)
                    .map(|p| p.id as i64)
                    .collect();
                if patient_ids.len() < params.bicluster.min_rows {
                    return Err(Error::invalid("age/gender filter selected too few patients"));
                }
                let rows: Vec<usize> = patient_ids.iter().map(|&p| p as usize).collect();
                let sub = matrix.select_rows(&rows);
                let gene_ids: Vec<i64> = (0..data.n_genes() as i64).collect();
                phases.data_management.wall_secs += clock.secs();
                let clock = PhaseClock::start();
                let out = analytics::bicluster_output(
                    &sub,
                    &patient_ids,
                    &gene_ids,
                    &params.bicluster,
                    &opts,
                )?;
                phases.analytics.wall_secs += clock.secs();
                out
            }
            Query::Svd => {
                let clock = PhaseClock::start();
                let gene_ids: Vec<i64> = data
                    .genes
                    .iter()
                    .filter(|g| g.function < params.function_threshold)
                    .map(|g| g.id as i64)
                    .collect();
                if gene_ids.is_empty() {
                    return Err(Error::invalid("gene filter selected nothing"));
                }
                let cols: Vec<usize> = gene_ids.iter().map(|&g| g as usize).collect();
                let x = matrix.select_cols(&cols);
                phases.data_management.wall_secs += clock.secs();
                let clock = PhaseClock::start();
                let out = analytics::svd_output(&x, params.svd_k, params.seed, &opts)?;
                phases.analytics.wall_secs += clock.secs();
                out
            }
            Query::Statistics => {
                let clock = PhaseClock::start();
                let count = params.sample_count(data.n_patients());
                let sampled = analytics::sample_patients(data.n_patients(), count, params.seed);
                let sub = matrix.select_rows(&sampled);
                phases.data_management.wall_secs += clock.secs();
                let clock = PhaseClock::start();
                // colMeans over the sample, then per-term wilcox.test.
                let mut scores = genbase_linalg::column_means(&sub);
                if sub.rows() == 0 {
                    scores = vec![0.0; data.n_genes()];
                }
                let out =
                    analytics::enrichment_output(&scores, &data.ontology.members, &opts)?;
                phases.analytics.wall_secs += clock.secs();
                out
            }
        };
        budget.free(cells * 8); // the working matrix
        Ok(QueryReport { output, phases })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

    #[test]
    fn runs_all_queries_on_tiny_data() {
        let data = generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let engine = VanillaR::new();
        for q in Query::ALL {
            let report = engine.run(q, &data, &params, &ctx).unwrap();
            assert_eq!(report.output.query(), q, "query {q:?}");
            assert!(report.phases.total_secs() >= 0.0);
        }
    }

    #[test]
    fn dies_when_memory_too_small() {
        let data = generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap();
        let params = QueryParams::for_dataset(&data);
        let mut ctx = ExecContext::single_node();
        // Tiny dataset needs ~56 B/cell * 3000 cells ≈ 168 KB at load peak.
        ctx.r_mem_bytes = Some(100_000);
        let err = VanillaR::new()
            .run(Query::Regression, &data, &params, &ctx)
            .unwrap_err();
        assert!(err.is_infinite_result(), "memory failure renders as infinite");
    }
}
