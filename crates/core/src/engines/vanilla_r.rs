//! Vanilla R: the whole benchmark inside one single-threaded, memory-bound
//! in-memory runtime.
//!
//! R keeps everything in process memory (data frames + a numeric matrix),
//! runs one thread regardless of core count, and dies when its allocations
//! exceed the machine (the paper: "R alone ... cannot scale to the large
//! dataset"). The load step models R's real behavior: a transient read
//! buffer, a persistent triple data frame, and the pivoted matrix — about
//! 56 bytes/cell peak, which is exactly what pushes the Large dataset over
//! the scaled 48 GB budget while Medium survives.
//!
//! Physical lowering: R holds the full pivoted matrix in memory, so the
//! triple joins of the logical plan fold away entirely — `Filter` selects
//! id lists against the metadata frames, and `Restructure` is an in-memory
//! row/column subset. The `read.csv` load is traced as the first
//! restructure op (it is part of the measured query in R, unlike the other
//! engines' untimed ingest).

use crate::analytics;
use crate::engine::{Engine, ExecContext};
use crate::plan::{self, Kernel, LogicalOp, OpKind, Phase, PhysicalBackend, Tracer};
use crate::query::{Query, QueryOutput, QueryParams};
use crate::report::QueryReport;
use genbase_datagen::Dataset;
use genbase_linalg::{ExecOpts, Matrix, RegressionMethod};
use genbase_storage::{self as storage, DenseHandle, MemTracker};
use genbase_util::{budget::AllocGuard, Budget, Error, Result};

/// The vanilla R configuration.
#[derive(Debug, Default)]
pub struct VanillaR;

impl VanillaR {
    /// New engine.
    pub fn new() -> VanillaR {
        VanillaR
    }
}

impl Engine for VanillaR {
    fn name(&self) -> &'static str {
        "Vanilla R"
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        let budget = ctx.r_budget();
        let mem = ctx.mem_tracker();
        let backend = RBackend {
            data,
            params,
            cache: ctx.cache.clone(),
            pins: Vec::new(),
            opts: ExecOpts::with_threads(1)
                .with_budget(budget.clone())
                .with_progress(ctx.progress.clone()),
            budget,
            mem: mem.clone(),
            query,
            matrix: None,
            gene_ids: Vec::new(),
            patient_ids: Vec::new(),
            rows: Vec::new(),
            sub: None,
            sub_guard: None,
            y: Vec::new(),
            scores: Vec::new(),
            cov: None,
            output: None,
        };
        plan::run_plan(backend, query, Tracer::new().with_mem(mem))
    }
}

/// Physical state of one vanilla-R run: the loaded matrix plus whatever the
/// executed prefix of the plan has produced so far.
struct RBackend<'a> {
    data: &'a Dataset,
    params: &'a QueryParams,
    /// Artifact-cache scope for this run (`None` = always cold).
    cache: Option<storage::CacheScope>,
    /// Pins holding cached artifacts resident for the run's duration.
    pins: Vec<storage::CachePin>,
    opts: ExecOpts,
    budget: Budget,
    mem: MemTracker,
    query: Query,
    matrix: Option<DenseHandle>,
    gene_ids: Vec<i64>,
    patient_ids: Vec<i64>,
    rows: Vec<usize>,
    sub: Option<DenseHandle>,
    sub_guard: Option<AllocGuard>,
    y: Vec<f64>,
    scores: Vec<f64>,
    cov: Option<analytics::CovPairs>,
    output: Option<QueryOutput>,
}

impl RBackend<'_> {
    fn sub(&self) -> Result<&Matrix> {
        self.sub
            .as_ref()
            .map(DenseHandle::matrix)
            .ok_or_else(|| Error::invalid("restructure did not run before analytics"))
    }
}

impl PhysicalBackend for RBackend<'_> {
    /// R's load *is* measured work: read.csv buffer, triple data frame,
    /// pivot to the working matrix — the ~56 B/cell peak that kills the
    /// Large dataset.
    fn prepare(&mut self, tracer: &mut Tracer) -> Result<()> {
        let data = self.data;
        let budget = self.budget.clone();
        let mem = self.mem.clone();
        let cache = self.cache.clone();
        let cells = (data.n_patients() * data.n_genes()) as u64;
        let mut pin = None;
        let matrix = tracer.exec(
            OpKind::Restructure,
            Phase::DataManagement,
            "read.csv triples + data.frame + pivot to matrix",
            || {
                let mut build = None;
                if let Some(scope) = cache.as_ref() {
                    let key = scope.key(data.n_patients(), data.n_genes(), "r-load", "full");
                    match scope.cache().begin(&key) {
                        storage::Lookup::Hit(value, p) => {
                            let cached = value.as_dense().ok_or_else(|| {
                                Error::invalid("cache type confusion on an r-load key")
                            })?;
                            // Replay the cold load's budget choreography —
                            // read buffer, data frame, working matrix — so a
                            // too-small R heap still dies at the same point,
                            // and the op's memory trace is byte-identical.
                            mem.note_input(cells * 24);
                            let read_buffer = AllocGuard::claim(&budget, cells * 24, cells)?;
                            mem.charge(cells * 24)?;
                            budget.alloc(cells * 24, cells)?;
                            mem.charge(cells * 24)?;
                            drop(read_buffer);
                            mem.release(cells * 24);
                            budget.alloc(cells * 8, cells)?; // the working matrix
                            let matrix = cached.clone();
                            budget.free(cells * 24);
                            mem.release(cells * 24);
                            mem.note_output(matrix.heap_bytes(), matrix.rows() as u64);
                            mem.note_cache_hit();
                            pin = Some(p);
                            return DenseHandle::new(&mem, matrix);
                        }
                        storage::Lookup::Build(slot) => build = Some(slot),
                    }
                }
                // Transient read.csv buffer (3 numeric columns), freed after
                // parse.
                mem.note_input(cells * 24);
                let read_buffer = AllocGuard::claim(&budget, cells * 24, cells)?;
                mem.charge(cells * 24)?;
                // Persistent triple data frame: build real column vectors
                // (this is genuine work, like R materializing the frame).
                budget.alloc(cells * 24, cells)?;
                mem.charge(cells * 24)?;
                let mut value_col: Vec<f64> = Vec::with_capacity(cells as usize);
                for p in 0..data.n_patients() {
                    value_col.extend_from_slice(data.expression.row(p));
                }
                drop(read_buffer);
                mem.release(cells * 24);
                // Pivot to the working matrix (kept for all queries).
                let mut matrix =
                    Matrix::zeros_budgeted(data.n_patients(), data.n_genes(), &budget)?;
                for p in 0..data.n_patients() {
                    matrix
                        .row_mut(p)
                        .copy_from_slice(&value_col[p * data.n_genes()..(p + 1) * data.n_genes()]);
                }
                drop(value_col);
                budget.free(cells * 24);
                mem.release(cells * 24);
                if let Some(slot) = build {
                    pin = slot
                        .fill(storage::CacheValue::Dense(matrix.clone()))
                        .map(|(_, pin)| pin);
                }
                mem.note_output(matrix.heap_bytes(), matrix.rows() as u64);
                DenseHandle::new(&mem, matrix)
            },
        )?;
        self.pins.extend(pin);
        self.matrix = Some(matrix);
        Ok(())
    }

    fn execute(&mut self, op: LogicalOp, tracer: &mut Tracer) -> Result<()> {
        let data = self.data;
        let params = self.params;
        match op {
            LogicalOp::FilterGenes => {
                let gene_ids = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("genes[function < {}]", params.function_threshold),
                    || {
                        let ids: Vec<i64> = data
                            .genes
                            .iter()
                            .filter(|g| g.function < params.function_threshold)
                            .map(|g| g.id as i64)
                            .collect();
                        if ids.is_empty() {
                            return Err(Error::invalid("gene filter selected nothing"));
                        }
                        Ok(ids)
                    },
                )?;
                self.gene_ids = gene_ids;
            }
            LogicalOp::FilterPatients => {
                let query = self.query;
                let label = match query {
                    Query::Covariance => {
                        format!("patients[disease_id == {}]", params.disease_id)
                    }
                    _ => format!(
                        "patients[gender == {} & age < {}]",
                        params.gender, params.max_age
                    ),
                };
                let ids = tracer.exec(OpKind::Filter, Phase::DataManagement, label, || {
                    Ok(match query {
                        Query::Covariance => data
                            .patients
                            .iter()
                            .filter(|p| p.disease_id == params.disease_id)
                            .map(|p| p.id as i64)
                            .collect::<Vec<i64>>(),
                        _ => data
                            .patients
                            .iter()
                            .filter(|p| p.gender == params.gender && p.age < params.max_age)
                            .map(|p| p.id as i64)
                            .collect::<Vec<i64>>(),
                    })
                })?;
                match self.query {
                    Query::Covariance if ids.len() < 2 => {
                        return Err(Error::invalid("disease filter selected < 2 patients"))
                    }
                    Query::Biclustering if ids.len() < params.bicluster.min_rows => {
                        return Err(Error::invalid(
                            "age/gender filter selected too few patients",
                        ))
                    }
                    _ => {}
                }
                self.rows = ids.iter().map(|&p| p as usize).collect();
                self.patient_ids = ids;
            }
            LogicalOp::SamplePatients => {
                let count = params.sample_count(data.n_patients());
                let sampled = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("sample {count} patients (seeded)"),
                    || {
                        Ok(analytics::sample_patients(
                            data.n_patients(),
                            count,
                            params.seed,
                        ))
                    },
                )?;
                self.patient_ids = sampled.iter().map(|&p| p as i64).collect();
                self.rows = sampled;
            }
            // Query 5 has no restructure op (no pivot in the workflow), so
            // R realizes the sample join as the matrix row subset here.
            LogicalOp::JoinOnPatients if self.query == Query::Statistics => {
                let rows = self.rows.clone();
                let matrix = self.matrix.take().expect("loaded");
                let mem = self.mem.clone();
                let sub = tracer.exec(
                    OpKind::Restructure,
                    Phase::DataManagement,
                    format!("matrix[sampled {} patients, ]", rows.len()),
                    || DenseHandle::new(&mem, storage::select_rows_tracked(&mem, &matrix, &rows)),
                )?;
                self.matrix = Some(matrix);
                self.sub = Some(sub);
            }
            // R already holds the pivoted matrix: the triple joins and the
            // GO join fold away (subsetting happens in Restructure).
            LogicalOp::JoinOnGenes | LogicalOp::JoinOnPatients | LogicalOp::JoinGoTerms => {}
            LogicalOp::Restructure => match self.query {
                Query::Regression | Query::Svd => {
                    let cols: Vec<usize> = self.gene_ids.iter().map(|&g| g as usize).collect();
                    let matrix = self.matrix.take().expect("loaded");
                    let budget = self.budget.clone();
                    let want_y = self.query == Query::Regression;
                    let mem = self.mem.clone();
                    let (sub, guard, y) = tracer.exec(
                        OpKind::Restructure,
                        Phase::DataManagement,
                        format!("matrix[, selected {} genes]", cols.len()),
                        || {
                            let guard = AllocGuard::claim(
                                &budget,
                                (matrix.rows() * cols.len() * 8) as u64,
                                (matrix.rows() * cols.len()) as u64,
                            )?;
                            let sub = DenseHandle::new(
                                &mem,
                                storage::select_cols_tracked(&mem, &matrix, &cols),
                            )?;
                            let y: Vec<f64> = if want_y {
                                data.patients.iter().map(|p| p.drug_response).collect()
                            } else {
                                Vec::new()
                            };
                            Ok((sub, guard, y))
                        },
                    )?;
                    self.matrix = Some(matrix);
                    self.sub = Some(sub);
                    self.sub_guard = Some(guard);
                    self.y = y;
                }
                _ => {
                    let rows = self.rows.clone();
                    let matrix = self.matrix.take().expect("loaded");
                    let mem = self.mem.clone();
                    let sub = tracer.exec(
                        OpKind::Restructure,
                        Phase::DataManagement,
                        format!("matrix[selected {} patients, ]", rows.len()),
                        || {
                            DenseHandle::new(
                                &mem,
                                storage::select_rows_tracked(&mem, &matrix, &rows),
                            )
                        },
                    )?;
                    self.matrix = Some(matrix);
                    self.sub = Some(sub);
                }
            },
            LogicalOp::GroupAgg => {
                // R's Query 5 script computes colMeans inside the analytics
                // block; attribution follows the script (analytics phase).
                let sub = self
                    .sub
                    .take()
                    .ok_or_else(|| Error::invalid("restructure did not run before group-agg"))?;
                let n_genes = data.n_genes();
                let scores = tracer.exec(
                    OpKind::GroupAgg,
                    Phase::Analytics,
                    "colMeans over the sampled rows",
                    || {
                        let mut scores = genbase_linalg::column_means(&sub);
                        if sub.rows() == 0 {
                            scores = vec![0.0; n_genes];
                        }
                        Ok(scores)
                    },
                )?;
                self.sub = Some(sub);
                self.scores = scores;
            }
            LogicalOp::Analytics(kernel) => {
                let opts = self.opts.clone();
                match kernel {
                    Kernel::Regression => {
                        let x = self.sub()?;
                        let out = tracer.exec(
                            OpKind::Analytics,
                            Phase::Analytics,
                            "lm(): QR least squares",
                            || {
                                analytics::fit_regression(
                                    x,
                                    &self.y,
                                    &self.gene_ids,
                                    RegressionMethod::Qr,
                                    &opts,
                                )
                            },
                        )?;
                        self.sub_guard = None;
                        self.output = Some(out);
                    }
                    Kernel::Covariance => {
                        let sub = self.sub()?;
                        let cov = tracer.exec(
                            OpKind::Analytics,
                            Phase::Analytics,
                            "cov() + top-fraction threshold",
                            || analytics::covariance_pairs(sub, params.top_pair_fraction, &opts),
                        )?;
                        self.cov = Some(cov);
                    }
                    Kernel::Biclustering => {
                        let sub = self.sub()?;
                        let gene_ids: Vec<i64> = (0..data.n_genes() as i64).collect();
                        let out = tracer.exec(
                            OpKind::Analytics,
                            Phase::Analytics,
                            "Cheng-Church delta-biclustering",
                            || {
                                analytics::bicluster_output(
                                    sub,
                                    &self.patient_ids,
                                    &gene_ids,
                                    &params.bicluster,
                                    &opts,
                                )
                            },
                        )?;
                        self.output = Some(out);
                    }
                    Kernel::Svd => {
                        let x = self.sub()?;
                        let out = tracer.exec(
                            OpKind::Analytics,
                            Phase::Analytics,
                            "Lanczos top-k eigenpairs",
                            || analytics::svd_output(x, params.svd_k, params.seed, &opts),
                        )?;
                        self.output = Some(out);
                    }
                    Kernel::Enrichment => {
                        let scores = std::mem::take(&mut self.scores);
                        let out = tracer.exec(
                            OpKind::Analytics,
                            Phase::Analytics,
                            "per-GO-term wilcox.test",
                            || analytics::enrichment_output(&scores, &data.ontology.members, &opts),
                        )?;
                        self.output = Some(out);
                    }
                }
            }
            LogicalOp::JoinGeneMetadata => {
                let (threshold, idx_pairs) = self.cov.take().ok_or_else(|| {
                    Error::invalid("covariance kernel did not run before metadata join")
                })?;
                let pairs = tracer.exec(
                    OpKind::Join,
                    Phase::DataManagement,
                    "merge(pairs, genes) for function codes",
                    || {
                        let gene_ids: Vec<i64> = (0..data.n_genes() as i64).collect();
                        let functions = data
                            .genes
                            .iter()
                            .map(|g| (g.id as i64, g.function))
                            .collect();
                        super::sql_common::attach_gene_metadata(&idx_pairs, &gene_ids, &functions)
                    },
                )?;
                self.output = Some(QueryOutput::Covariance { threshold, pairs });
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<QueryOutput> {
        let cells = (self.data.n_patients() * self.data.n_genes()) as u64;
        self.budget.free(cells * 8); // the working matrix
        self.output
            .take()
            .ok_or_else(|| Error::invalid("plan produced no output"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_queries_on_tiny_data() {
        let data = genbase_datagen::generate(&genbase_datagen::GeneratorConfig::new(
            genbase_datagen::SizeSpec::tiny(),
        ))
        .unwrap();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let engine = VanillaR::new();
        for q in Query::ALL {
            let report = engine.run(q, &data, &params, &ctx).unwrap();
            assert_eq!(report.output.query(), q, "query {q:?}");
            assert!(report.phases.total_secs() >= 0.0);
            // The R load is part of the measured query.
            assert!(
                report.trace.ops[0].label.contains("read.csv"),
                "{q:?}: {:?}",
                report.trace.ops[0].label
            );
        }
    }

    #[test]
    fn dies_when_memory_too_small() {
        let data = genbase_datagen::generate(&genbase_datagen::GeneratorConfig::new(
            genbase_datagen::SizeSpec::tiny(),
        ))
        .unwrap();
        let params = QueryParams::for_dataset(&data);
        let mut ctx = ExecContext::single_node();
        // Tiny dataset needs ~56 B/cell * 3000 cells ≈ 168 KB at load peak.
        ctx.r_mem_bytes = Some(100_000);
        let err = VanillaR::new()
            .run(Query::Regression, &data, &params, &ctx)
            .unwrap_err();
        assert!(
            err.is_infinite_result(),
            "memory failure renders as infinite"
        );
    }
}
