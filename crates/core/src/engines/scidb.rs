//! SciDB: the native array DBMS, plus the Xeon Phi offload configuration.
//!
//! Data management is dimension arithmetic — metadata filters yield
//! coordinate lists that subset the chunked expression array directly, and
//! "restructuring" is a cheap chunk-to-row gather. Analytics run
//! multithreaded (SciDB drives ScaLAPACK/custom code across instance
//! processes). This is why the paper finds SciDB "very competitive on this
//! benchmark".

use super::mn::{run_multinode, MnFlavor};
use crate::analytics;
use crate::engine::{Engine, ExecContext, PhaseClock};
use crate::query::{Query, QueryOutput, QueryParams};
use crate::report::{PhaseTimes, QueryReport};
use genbase_accel::{Coprocessor, OpProfile};
use genbase_array::{Array2D, AttrArray1D};
use genbase_datagen::Dataset;
use genbase_linalg::ExecOpts;
use genbase_util::{CostReport, Error, Result};
use std::collections::HashMap;

/// The SciDB configuration (single and multi node).
#[derive(Debug, Default)]
pub struct SciDb;

impl SciDb {
    /// New engine.
    pub fn new() -> SciDb {
        SciDb
    }
}

/// Array-native dataset: chunked 2-D expression + 1-D attribute arrays.
pub(crate) struct ArrayData {
    pub expression: Array2D,
    pub patients: AttrArray1D,
    pub genes: AttrArray1D,
}

pub(crate) fn ingest_arrays(data: &Dataset, budget: &genbase_util::Budget) -> Result<ArrayData> {
    let expression = Array2D::from_matrix(&data.expression, budget)?;
    let patients = AttrArray1D::new(data.n_patients())
        .with_int_attr("age", data.patients.iter().map(|p| p.age).collect())?
        .with_int_attr("gender", data.patients.iter().map(|p| p.gender).collect())?
        .with_int_attr(
            "disease_id",
            data.patients.iter().map(|p| p.disease_id).collect(),
        )?
        .with_float_attr(
            "drug_response",
            data.patients.iter().map(|p| p.drug_response).collect(),
        )?;
    let genes = AttrArray1D::new(data.n_genes())
        .with_int_attr("function", data.genes.iter().map(|g| g.function).collect())?
        .with_int_attr("target", data.genes.iter().map(|g| g.target).collect())?;
    Ok(ArrayData {
        expression,
        patients,
        genes,
    })
}

impl Engine for SciDb {
    fn name(&self) -> &'static str {
        "SciDB"
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        if ctx.nodes > 1 {
            return run_multinode(MnFlavor::SciDb, query, data, params, ctx);
        }
        run_scidb_single(query, data, params, ctx, None)
    }
}

/// Single-node SciDB execution; when `phi` is set, analytics times are
/// replaced by the coprocessor model's estimate derived from the measured
/// host time (see `genbase-accel`).
pub(crate) fn run_scidb_single(
    query: Query,
    data: &Dataset,
    params: &QueryParams,
    ctx: &ExecContext,
    phi: Option<&Coprocessor>,
) -> Result<QueryReport> {
    let budget = ctx.db_budget();
    let opts = ExecOpts::with_threads(ctx.threads).with_budget(budget.clone());
    let arrays = ingest_arrays(data, &budget)?; // untimed ingest
    let mut phases = PhaseTimes::default();

    // Helper translating a measured analytics time through the Phi model.
    // In deterministic-timing mode the measured input is zeroed, so the
    // modeled device time depends only on the workload profile.
    let finish_analytics =
        |phases: &mut PhaseTimes, measured: f64, profile: Option<OpProfile>| match (phi, profile)
        {
            (Some(co), Some(p)) => {
                let measured = if ctx.deterministic { 0.0 } else { measured };
                phases.analytics = CostReport {
                    wall_secs: 0.0,
                    sim_secs: co.scale_measured(measured, &p),
                    sim_bytes: p.transfer_bytes,
                };
            }
            _ => phases.analytics.wall_secs += measured,
        };

    let output = match query {
        Query::Regression => {
            if phi.is_some() {
                // MKL automatic offload of the regression path was not
                // supported in the paper ("a work-in-progress"); same here.
                return Err(Error::unsupported("SciDB + Xeon Phi", "regression offload"));
            }
            let clock = PhaseClock::start();
            let cols = arrays
                .genes
                .filter_coords(|r| r.int("function") < params.function_threshold);
            if cols.is_empty() {
                return Err(Error::invalid("gene filter selected nothing"));
            }
            let rows: Vec<usize> = (0..data.n_patients()).collect();
            let mat = arrays
                .expression
                .select_to_matrix_par(&rows, &cols, ctx.threads, &budget)?;
            let y = arrays.patients.float_attr("drug_response")?.to_vec();
            let gene_ids: Vec<i64> = cols.iter().map(|&c| c as i64).collect();
            phases.data_management.wall_secs += clock.secs();
            let clock = PhaseClock::start();
            let out = analytics::fit_regression(
                &mat,
                &y,
                &gene_ids,
                genbase_linalg::RegressionMethod::Qr,
                &opts,
            )?;
            finish_analytics(&mut phases, clock.secs(), None);
            out
        }
        Query::Covariance => {
            let clock = PhaseClock::start();
            let rows = arrays
                .patients
                .filter_coords(|r| r.int("disease_id") == params.disease_id);
            if rows.len() < 2 {
                return Err(Error::invalid("disease filter selected < 2 patients"));
            }
            let cols: Vec<usize> = (0..data.n_genes()).collect();
            let mat = arrays
                .expression
                .select_to_matrix_par(&rows, &cols, ctx.threads, &budget)?;
            phases.data_management.wall_secs += clock.secs();

            let clock = PhaseClock::start();
            let (threshold, idx_pairs) =
                analytics::covariance_pairs(&mat, params.top_pair_fraction, &opts)?;
            finish_analytics(
                &mut phases,
                clock.secs(),
                Some(OpProfile::covariance(rows.len(), data.n_genes())),
            );

            let clock = PhaseClock::start();
            let gene_ids: Vec<i64> = cols.iter().map(|&c| c as i64).collect();
            let functions: HashMap<i64, i64> = arrays
                .genes
                .int_attr("function")?
                .iter()
                .enumerate()
                .map(|(g, &f)| (g as i64, f))
                .collect();
            let pairs =
                super::sql_common::attach_gene_metadata(&idx_pairs, &gene_ids, &functions)?;
            phases.data_management.wall_secs += clock.secs();
            QueryOutput::Covariance { threshold, pairs }
        }
        Query::Biclustering => {
            let clock = PhaseClock::start();
            let rows = arrays
                .patients
                .filter_coords(|r| r.int("gender") == params.gender && r.int("age") < params.max_age);
            if rows.len() < params.bicluster.min_rows {
                return Err(Error::invalid("age/gender filter selected too few patients"));
            }
            let cols: Vec<usize> = (0..data.n_genes()).collect();
            let mat = arrays
                .expression
                .select_to_matrix_par(&rows, &cols, ctx.threads, &budget)?;
            let patient_ids: Vec<i64> = rows.iter().map(|&r| r as i64).collect();
            let gene_ids: Vec<i64> = cols.iter().map(|&c| c as i64).collect();
            phases.data_management.wall_secs += clock.secs();
            let clock = PhaseClock::start();
            let out = analytics::bicluster_output(
                &mat,
                &patient_ids,
                &gene_ids,
                &params.bicluster,
                &opts,
            )?;
            finish_analytics(
                &mut phases,
                clock.secs(),
                Some(OpProfile::biclustering(rows.len(), data.n_genes(), 40)),
            );
            out
        }
        Query::Svd => {
            let clock = PhaseClock::start();
            let cols = arrays
                .genes
                .filter_coords(|r| r.int("function") < params.function_threshold);
            if cols.is_empty() {
                return Err(Error::invalid("gene filter selected nothing"));
            }
            let rows: Vec<usize> = (0..data.n_patients()).collect();
            let mat = arrays
                .expression
                .select_to_matrix_par(&rows, &cols, ctx.threads, &budget)?;
            phases.data_management.wall_secs += clock.secs();
            let clock = PhaseClock::start();
            let out = analytics::svd_output(&mat, params.svd_k, params.seed, &opts)?;
            finish_analytics(
                &mut phases,
                clock.secs(),
                Some(OpProfile::svd_lanczos(
                    data.n_patients(),
                    cols.len(),
                    params.svd_k.min(cols.len()),
                )),
            );
            out
        }
        Query::Statistics => {
            let clock = PhaseClock::start();
            let count = params.sample_count(data.n_patients());
            let sampled = analytics::sample_patients(data.n_patients(), count, params.seed);
            let sums = arrays
                .expression
                .column_sums_over_rows_par(&sampled, ctx.threads, &budget)?;
            let scores: Vec<f64> = sums
                .iter()
                .map(|s| s / sampled.len().max(1) as f64)
                .collect();
            phases.data_management.wall_secs += clock.secs();
            let clock = PhaseClock::start();
            let out = analytics::enrichment_output(&scores, &data.ontology.members, &opts)?;
            finish_analytics(
                &mut phases,
                clock.secs(),
                Some(OpProfile::statistics(
                    sampled.len(),
                    data.n_genes(),
                    data.ontology.n_terms(),
                )),
            );
            out
        }
    };
    Ok(QueryReport { output, phases })
}

/// SciDB with the analytics offloaded to the modeled Intel Xeon Phi 5110P.
#[derive(Debug)]
pub struct SciDbPhi {
    co: Coprocessor,
}

impl SciDbPhi {
    /// New engine with the paper's Phi-on-E5 configuration.
    pub fn new() -> SciDbPhi {
        SciDbPhi {
            co: Coprocessor::phi_on_e5(),
        }
    }
}

impl Default for SciDbPhi {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine for SciDbPhi {
    fn name(&self) -> &'static str {
        "SciDB + Xeon Phi"
    }

    fn supports(&self, query: Query) -> bool {
        // Regression offload was unsupported in the paper's MKL release.
        query != Query::Regression
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        run_scidb_single(query, data, params, ctx, Some(&self.co))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

    fn tiny() -> Dataset {
        generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap()
    }

    #[test]
    fn scidb_runs_all_queries() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let engine = SciDb::new();
        for q in Query::ALL {
            let report = engine.run(q, &data, &params, &ctx).unwrap();
            assert_eq!(report.output.query(), q);
        }
    }

    #[test]
    fn scidb_matches_vanilla_r_outputs() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let scidb = SciDb::new();
        let r = super::super::vanilla_r::VanillaR::new();
        for q in Query::ALL {
            let a = scidb.run(q, &data, &params, &ctx).unwrap().output;
            let b = r.run(q, &data, &params, &ctx).unwrap().output;
            assert!(
                a.consistency_error(&b, 1e-6).is_none(),
                "{q:?}: {:?}",
                a.consistency_error(&b, 1e-6)
            );
        }
    }

    #[test]
    fn phi_rejects_regression_and_charges_sim_time() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let phi = SciDbPhi::new();
        assert!(!phi.supports(Query::Regression));
        assert!(phi.run(Query::Regression, &data, &params, &ctx).is_err());
        let report = phi.run(Query::Covariance, &data, &params, &ctx).unwrap();
        assert!(report.phases.analytics.sim_secs > 0.0, "modeled device time");
        assert_eq!(report.phases.analytics.wall_secs, 0.0);
        // Output still verified against the plain SciDB run.
        let plain = SciDb::new()
            .run(Query::Covariance, &data, &params, &ctx)
            .unwrap();
        assert!(report
            .output
            .consistency_error(&plain.output, 1e-9)
            .is_none());
    }
}
