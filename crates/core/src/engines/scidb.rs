//! SciDB: the native array DBMS, plus the Xeon Phi offload configuration.
//!
//! Data management is dimension arithmetic — metadata filters yield
//! coordinate lists that subset the chunked expression array directly, and
//! "restructuring" is a cheap chunk-to-row gather. Analytics run
//! multithreaded (SciDB drives ScaLAPACK/custom code across instance
//! processes). This is why the paper finds SciDB "very competitive on this
//! benchmark".
//!
//! Physical lowering: coordinates *are* the join — the triple joins of the
//! logical plan fold away because the filtered dimension lists index the
//! array directly. With a coprocessor attached, the analytics op's measured
//! host time is replaced by the roofline model's device estimate (recorded
//! as a model-cost trace op; see `genbase-accel`).

use super::mn::{run_multinode, MnFlavor};
use crate::analytics;
use crate::engine::{Engine, ExecContext};
use crate::plan::{self, Kernel, LogicalOp, OpCost, OpKind, Phase, PhysicalBackend, Tracer};
use crate::query::{Query, QueryOutput, QueryParams};
use crate::report::QueryReport;
use genbase_accel::{Coprocessor, OpProfile};
use genbase_array::{Array2D, AttrArray1D};
use genbase_datagen::Dataset;
use genbase_linalg::{ExecOpts, Matrix};
use genbase_storage::{self as storage, DenseHandle, MemTracker};
use genbase_util::{Budget, Error, Result};
use std::collections::HashMap;

/// The SciDB configuration (single and multi node).
#[derive(Debug, Default)]
pub struct SciDb;

impl SciDb {
    /// New engine.
    pub fn new() -> SciDb {
        SciDb
    }
}

/// Array-native dataset: chunked 2-D expression + 1-D attribute arrays.
pub(crate) struct ArrayData {
    pub expression: Array2D,
    pub patients: AttrArray1D,
    pub genes: AttrArray1D,
}

/// Array ingest through the artifact cache: a hit clones the chunked
/// expression array out of the cache (replaying the cold ingest's
/// accounting); the attribute arrays are tiny and always rebuilt. Pass
/// `None` for an always-cold ingest.
pub(crate) fn ingest_arrays_cached(
    cache: Option<&storage::CacheScope>,
    data: &Dataset,
    budget: &genbase_util::Budget,
    mem: &MemTracker,
) -> Result<(ArrayData, Option<storage::CachePin>)> {
    let (expression, pin) =
        storage::chunked_from_dense_cached(cache, mem, &data.expression, budget)?;
    let patients = AttrArray1D::new(data.n_patients())
        .with_int_attr("age", data.patients.iter().map(|p| p.age).collect())?
        .with_int_attr("gender", data.patients.iter().map(|p| p.gender).collect())?
        .with_int_attr(
            "disease_id",
            data.patients.iter().map(|p| p.disease_id).collect(),
        )?
        .with_float_attr(
            "drug_response",
            data.patients.iter().map(|p| p.drug_response).collect(),
        )?;
    let genes = AttrArray1D::new(data.n_genes())
        .with_int_attr("function", data.genes.iter().map(|g| g.function).collect())?
        .with_int_attr("target", data.genes.iter().map(|g| g.target).collect())?;
    Ok((
        ArrayData {
            expression,
            patients,
            genes,
        },
        pin,
    ))
}

impl Engine for SciDb {
    fn name(&self) -> &'static str {
        "SciDB"
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        if ctx.nodes > 1 {
            return run_multinode(MnFlavor::SciDb, query, data, params, ctx);
        }
        run_scidb_single(query, data, params, ctx, None)
    }
}

/// Single-node SciDB execution; when `phi` is set, analytics times are
/// replaced by the coprocessor model's estimate derived from the measured
/// host time (see `genbase-accel`).
pub(crate) fn run_scidb_single(
    query: Query,
    data: &Dataset,
    params: &QueryParams,
    ctx: &ExecContext,
    phi: Option<&Coprocessor>,
) -> Result<QueryReport> {
    if phi.is_some() && query == Query::Regression {
        // MKL automatic offload of the regression path was not supported in
        // the paper ("a work-in-progress"); same here.
        return Err(Error::unsupported("SciDB + Xeon Phi", "regression offload"));
    }
    let budget = ctx.db_budget();
    let mem = ctx.mem_tracker();
    // Untimed ingest, memoized: repeat runs clone the chunked expression
    // array out of the artifact cache instead of re-chunking the dense form.
    let (arrays, ingest_pin) = ingest_arrays_cached(ctx.cache.as_ref(), data, &budget, &mem)?;
    let backend = ArrayBackend {
        data,
        params,
        query,
        opts: ExecOpts::with_threads(ctx.threads)
            .with_budget(budget.clone())
            .with_progress(ctx.progress.clone()),
        arrays,
        pins: ingest_pin.into_iter().collect(),
        budget,
        mem: mem.clone(),
        threads: ctx.threads,
        deterministic: ctx.deterministic,
        phi,
        rows: Vec::new(),
        cols: Vec::new(),
        patient_ids: Vec::new(),
        mat: None,
        scores: Vec::new(),
        cov: None,
        output: None,
    };
    plan::run_plan(backend, query, Tracer::new().with_mem(mem))
}

/// Physical state of one SciDB run: the chunked arrays plus whatever the
/// executed prefix of the plan has produced so far.
struct ArrayBackend<'a> {
    data: &'a Dataset,
    params: &'a QueryParams,
    query: Query,
    opts: ExecOpts,
    budget: Budget,
    mem: MemTracker,
    threads: usize,
    deterministic: bool,
    phi: Option<&'a Coprocessor>,
    arrays: ArrayData,
    /// Pins holding cached ingest artifacts resident for the run's duration.
    #[allow(dead_code)]
    pins: Vec<storage::CachePin>,
    rows: Vec<usize>,
    cols: Vec<usize>,
    patient_ids: Vec<i64>,
    mat: Option<DenseHandle>,
    scores: Vec<f64>,
    cov: Option<analytics::CovPairs>,
    output: Option<QueryOutput>,
}

impl ArrayBackend<'_> {
    fn mat(&self) -> Result<&Matrix> {
        self.mat
            .as_ref()
            .map(DenseHandle::matrix)
            .ok_or_else(|| Error::invalid("restructure did not run before analytics"))
    }

    /// Run one analytics kernel, translating its measured time through the
    /// Phi model when a coprocessor is attached. In deterministic-timing
    /// mode the measured input is zeroed, so the modeled device time
    /// depends only on the workload profile.
    fn kernel_op<T>(
        &self,
        tracer: &mut Tracer,
        label: &str,
        profile: Option<OpProfile>,
        f: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        match (self.phi, profile) {
            (Some(co), Some(p)) => {
                let start = std::time::Instant::now();
                let out = f()?;
                let measured = if self.deterministic {
                    0.0
                } else {
                    start.elapsed().as_secs_f64()
                };
                tracer.record(
                    OpKind::Analytics,
                    Phase::Analytics,
                    format!("{label} [Xeon Phi offload model]"),
                    OpCost {
                        wall_secs: 0.0,
                        sim_nanos: 0,
                        model_secs: co.scale_measured(measured, &p),
                        sim_bytes: p.transfer_bytes,
                        // The profile's modeled PCIe round trip is the
                        // op's data movement, charged as bytes read from
                        // host storage; the peak is whatever the gathered
                        // working set holds resident while the kernel runs
                        // (a recorded op bypasses the tracer's scope, so
                        // it reports the tracker's live bytes directly).
                        bytes_in: p.transfer_bytes,
                        peak_alloc_bytes: self.mem.current(),
                        ..OpCost::default()
                    },
                );
                Ok(out)
            }
            _ => tracer.exec(OpKind::Analytics, Phase::Analytics, label, f),
        }
    }
}

impl PhysicalBackend for ArrayBackend<'_> {
    fn execute(&mut self, op: LogicalOp, tracer: &mut Tracer) -> Result<()> {
        let data = self.data;
        let params = self.params;
        match op {
            LogicalOp::FilterGenes => {
                let arrays = &self.arrays;
                let cols = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!(
                        "dimension filter: gene coords with function < {}",
                        params.function_threshold
                    ),
                    || {
                        Ok(arrays
                            .genes
                            .filter_coords(|r| r.int("function") < params.function_threshold))
                    },
                )?;
                if cols.is_empty() {
                    return Err(Error::invalid("gene filter selected nothing"));
                }
                self.cols = cols;
            }
            LogicalOp::FilterPatients => {
                let arrays = &self.arrays;
                let query = self.query;
                let label = match query {
                    Query::Covariance => format!(
                        "dimension filter: patient coords with disease_id = {}",
                        params.disease_id
                    ),
                    _ => format!(
                        "dimension filter: patient coords with gender = {}, age < {}",
                        params.gender, params.max_age
                    ),
                };
                let rows = tracer.exec(OpKind::Filter, Phase::DataManagement, label, || {
                    Ok(match query {
                        Query::Covariance => arrays
                            .patients
                            .filter_coords(|r| r.int("disease_id") == params.disease_id),
                        _ => arrays.patients.filter_coords(|r| {
                            r.int("gender") == params.gender && r.int("age") < params.max_age
                        }),
                    })
                })?;
                match self.query {
                    Query::Covariance if rows.len() < 2 => {
                        return Err(Error::invalid("disease filter selected < 2 patients"))
                    }
                    Query::Biclustering if rows.len() < params.bicluster.min_rows => {
                        return Err(Error::invalid(
                            "age/gender filter selected too few patients",
                        ))
                    }
                    _ => {}
                }
                self.patient_ids = rows.iter().map(|&r| r as i64).collect();
                self.rows = rows;
            }
            LogicalOp::SamplePatients => {
                let count = params.sample_count(data.n_patients());
                let sampled = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("sample {count} patient coords (seeded)"),
                    || {
                        Ok(analytics::sample_patients(
                            data.n_patients(),
                            count,
                            params.seed,
                        ))
                    },
                )?;
                self.rows = sampled;
            }
            // Coordinates are the join: the filtered dimension lists index
            // the chunked array directly, so the triple joins fold away.
            LogicalOp::JoinOnGenes | LogicalOp::JoinOnPatients | LogicalOp::JoinGoTerms => {}
            LogicalOp::Restructure => {
                match self.query {
                    Query::Regression | Query::Svd => {
                        self.rows = (0..data.n_patients()).collect();
                    }
                    _ => {
                        self.cols = (0..data.n_genes()).collect();
                    }
                }
                let arrays = &self.arrays;
                let (rows, cols) = (&self.rows, &self.cols);
                let (threads, budget) = (self.threads, &self.budget);
                let mem = &self.mem;
                let mat = tracer.exec(
                    OpKind::Restructure,
                    Phase::DataManagement,
                    format!("chunk gather: {}x{} submatrix", rows.len(), cols.len()),
                    || {
                        let mat = storage::gather_chunked(
                            &arrays.expression,
                            rows,
                            cols,
                            threads,
                            mem,
                            budget,
                        )?;
                        DenseHandle::new(mem, mat)
                    },
                )?;
                self.mat = Some(mat);
            }
            LogicalOp::GroupAgg => {
                let arrays = &self.arrays;
                let rows = &self.rows;
                let (threads, budget) = (self.threads, &self.budget);
                let mem = &self.mem;
                let n_genes = data.n_genes();
                let scores = tracer.exec(
                    OpKind::GroupAgg,
                    Phase::DataManagement,
                    "per-chunk column sums over the sampled rows",
                    || {
                        mem.note_input((rows.len() * n_genes * 8) as u64);
                        let sums = arrays
                            .expression
                            .column_sums_over_rows_par(rows, threads, budget)?;
                        mem.note_output((sums.len() * 8) as u64, sums.len() as u64);
                        Ok(sums
                            .iter()
                            .map(|s| s / rows.len().max(1) as f64)
                            .collect::<Vec<f64>>())
                    },
                )?;
                self.scores = scores;
            }
            LogicalOp::Analytics(kernel) => {
                let opts = self.opts.clone();
                match kernel {
                    Kernel::Regression => {
                        let y = self.arrays.patients.float_attr("drug_response")?.to_vec();
                        let gene_ids: Vec<i64> = self.cols.iter().map(|&c| c as i64).collect();
                        let mat = self.mat()?;
                        let out =
                            self.kernel_op(tracer, "ScaLAPACK QR least squares", None, || {
                                analytics::fit_regression(
                                    mat,
                                    &y,
                                    &gene_ids,
                                    genbase_linalg::RegressionMethod::Qr,
                                    &opts,
                                )
                            })?;
                        self.output = Some(out);
                    }
                    Kernel::Covariance => {
                        let mat = self.mat()?;
                        let profile = OpProfile::covariance(self.rows.len(), data.n_genes());
                        let cov = self.kernel_op(
                            tracer,
                            "blocked covariance + top-fraction threshold",
                            Some(profile),
                            || analytics::covariance_pairs(mat, params.top_pair_fraction, &opts),
                        )?;
                        self.cov = Some(cov);
                    }
                    Kernel::Biclustering => {
                        let mat = self.mat()?;
                        let gene_ids: Vec<i64> = self.cols.iter().map(|&c| c as i64).collect();
                        let patient_ids = &self.patient_ids;
                        let profile = OpProfile::biclustering(self.rows.len(), data.n_genes(), 40);
                        let out = self.kernel_op(
                            tracer,
                            "Cheng-Church delta-biclustering",
                            Some(profile),
                            || {
                                analytics::bicluster_output(
                                    mat,
                                    patient_ids,
                                    &gene_ids,
                                    &params.bicluster,
                                    &opts,
                                )
                            },
                        )?;
                        self.output = Some(out);
                    }
                    Kernel::Svd => {
                        let mat = self.mat()?;
                        let profile = OpProfile::svd_lanczos(
                            data.n_patients(),
                            self.cols.len(),
                            params.svd_k.min(self.cols.len()),
                        );
                        let out = self.kernel_op(
                            tracer,
                            "Lanczos top-k eigenpairs",
                            Some(profile),
                            || analytics::svd_output(mat, params.svd_k, params.seed, &opts),
                        )?;
                        self.output = Some(out);
                    }
                    Kernel::Enrichment => {
                        let scores = std::mem::take(&mut self.scores);
                        let profile = OpProfile::statistics(
                            self.rows.len(),
                            data.n_genes(),
                            data.ontology.n_terms(),
                        );
                        let out = self.kernel_op(
                            tracer,
                            "per-GO-term Wilcoxon rank-sum",
                            Some(profile),
                            || analytics::enrichment_output(&scores, &data.ontology.members, &opts),
                        )?;
                        self.output = Some(out);
                    }
                }
            }
            LogicalOp::JoinGeneMetadata => {
                let (threshold, idx_pairs) = self.cov.take().ok_or_else(|| {
                    Error::invalid("covariance kernel did not run before metadata join")
                })?;
                let arrays = &self.arrays;
                let cols = &self.cols;
                let pairs = tracer.exec(
                    OpKind::Join,
                    Phase::DataManagement,
                    "attribute lookup: function codes for top pairs",
                    || {
                        let gene_ids: Vec<i64> = cols.iter().map(|&c| c as i64).collect();
                        let functions: HashMap<i64, i64> = arrays
                            .genes
                            .int_attr("function")?
                            .iter()
                            .enumerate()
                            .map(|(g, &f)| (g as i64, f))
                            .collect();
                        super::sql_common::attach_gene_metadata(&idx_pairs, &gene_ids, &functions)
                    },
                )?;
                self.output = Some(QueryOutput::Covariance { threshold, pairs });
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<QueryOutput> {
        self.output
            .take()
            .ok_or_else(|| Error::invalid("plan produced no output"))
    }
}

/// SciDB with the analytics offloaded to the modeled Intel Xeon Phi 5110P.
#[derive(Debug)]
pub struct SciDbPhi {
    co: Coprocessor,
}

impl SciDbPhi {
    /// New engine with the paper's Phi-on-E5 configuration.
    pub fn new() -> SciDbPhi {
        SciDbPhi {
            co: Coprocessor::phi_on_e5(),
        }
    }
}

impl Default for SciDbPhi {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine for SciDbPhi {
    fn name(&self) -> &'static str {
        "SciDB + Xeon Phi"
    }

    fn supports(&self, query: Query) -> bool {
        // Regression offload was unsupported in the paper's MKL release.
        query != Query::Regression
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        run_scidb_single(query, data, params, ctx, Some(&self.co))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

    fn tiny() -> Dataset {
        generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap()
    }

    #[test]
    fn scidb_runs_all_queries() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let engine = SciDb::new();
        for q in Query::ALL {
            let report = engine.run(q, &data, &params, &ctx).unwrap();
            assert_eq!(report.output.query(), q);
        }
    }

    #[test]
    fn scidb_matches_vanilla_r_outputs() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let scidb = SciDb::new();
        let r = super::super::vanilla_r::VanillaR::new();
        for q in Query::ALL {
            let a = scidb.run(q, &data, &params, &ctx).unwrap().output;
            let b = r.run(q, &data, &params, &ctx).unwrap().output;
            assert!(
                a.consistency_error(&b, 1e-6).is_none(),
                "{q:?}: {:?}",
                a.consistency_error(&b, 1e-6)
            );
        }
    }

    #[test]
    fn phi_rejects_regression_and_charges_sim_time() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let phi = SciDbPhi::new();
        assert!(!phi.supports(Query::Regression));
        assert!(phi.run(Query::Regression, &data, &params, &ctx).is_err());
        let report = phi.run(Query::Covariance, &data, &params, &ctx).unwrap();
        assert!(
            report.phases.analytics.sim_secs > 0.0,
            "modeled device time"
        );
        assert_eq!(report.phases.analytics.wall_secs, 0.0);
        // The offload shows up as a model-cost analytics op in the trace.
        let offload = report
            .trace
            .ops
            .iter()
            .find(|op| op.label.contains("offload model"))
            .expect("offload op traced");
        assert!(offload.cost.model_secs > 0.0);
        assert!(offload.cost.sim_bytes > 0);
        // Output still verified against the plain SciDB run.
        let plain = SciDb::new()
            .run(Query::Covariance, &data, &params, &ctx)
            .unwrap();
        assert!(report
            .output
            .consistency_error(&plain.output, 1e-9)
            .is_none());
    }
}
