//! Hadoop: Hive-style data management + Mahout-style analytics, all as
//! MapReduce jobs over the `genbase-mapreduce` runtime.
//!
//! The paper: "Hadoop is good at neither data management nor analytics.
//! Data management is slow because Hive has only rudimentary query
//! optimization and analytics are slow because matrix operations are not
//! done through a high performance linear algebra package." Both properties
//! hold here by construction. Hadoop runs only the queries Mahout-era
//! tooling could express: regression, covariance and statistics (no
//! biclustering, no SVD).
//!
//! Physical lowering: every logical op becomes one or more MapReduce jobs
//! (each paying the simulated launch latency), except the tiny driver-side
//! steps (metadata filters, the sample draw). The tracer is attached to the
//! job runtime's [`genbase_util::SimClock`], so each traced op carries the
//! exact simulated nanoseconds its jobs charged.

use crate::analytics;
use crate::engine::{Engine, ExecContext};
use crate::plan::{self, Kernel, LogicalOp, OpKind, Phase, PhysicalBackend, Tracer};
use crate::query::{Query, QueryOutput, QueryParams};
use crate::report::QueryReport;
use genbase_datagen::Dataset;
use genbase_linalg::{cholesky::Cholesky, Matrix};
use genbase_mapreduce::hive::{Cell, HiveTable};
use genbase_mapreduce::job::JobConfig;
use genbase_mapreduce::mahout;
use genbase_storage::MemTracker;
use genbase_util::{Error, Result};
use std::collections::HashSet;

/// Simulated per-job launch latency (JVM spin-up + scheduling), charged to
/// the sim clock. The paper-era figure was 10–30 s; scaled by the same
/// ~1/100 factor as the default dataset scale-down.
pub const JOB_LAUNCH_SECS: f64 = 0.2;

/// The Hadoop configuration.
#[derive(Debug, Default)]
pub struct Hadoop;

impl Hadoop {
    /// New engine.
    pub fn new() -> Hadoop {
        Hadoop
    }

    fn job_config(&self, ctx: &ExecContext) -> JobConfig {
        // Task slots model the simulated machine (sim_threads), not the
        // scheduler's per-cell execution budget: slot count feeds the
        // shuffle cost model, so sizing it from `ctx.threads` would make
        // simulated costs depend on how many sweep cells run concurrently.
        let mut cfg = JobConfig::local(ctx.sim_threads.max(1));
        cfg.job_launch_secs = JOB_LAUNCH_SECS;
        cfg.budget = ctx.db_budget();
        if ctx.nodes > 1 {
            // A (nodes-1)/nodes fraction of every shuffled partition crosses
            // the network; model it by scaling the link bandwidth.
            let frac = (ctx.nodes - 1) as f64 / ctx.nodes as f64;
            cfg.shuffle_net = Some((ctx.net.latency_s, ctx.net.bandwidth_bps / frac.max(1e-9)));
        }
        cfg
    }
}

/// Modeled bytes of a Hive split: every field is a boxed 16-byte [`Cell`]
/// record (tag + payload), which is exactly the storage profile the
/// tracker accounts MapReduce working sets at.
fn hive_bytes(t: &HiveTable) -> u64 {
    t.rows.iter().map(|r| (r.len() * 16) as u64).sum()
}

fn triples_table(data: &Dataset) -> HiveTable {
    let mut rows = Vec::with_capacity(data.n_patients() * data.n_genes());
    for p in 0..data.n_patients() {
        let row = data.expression.row(p);
        for (g, &v) in row.iter().enumerate() {
            rows.push(vec![Cell::I(g as i64), Cell::I(p as i64), Cell::F(v)]);
        }
    }
    HiveTable::new(rows)
}

fn genes_table(data: &Dataset) -> HiveTable {
    HiveTable::new(
        data.genes
            .iter()
            .map(|g| vec![Cell::I(g.id as i64), Cell::I(g.function)])
            .collect(),
    )
}

/// Group joined `(gene, patient, value, ...)` rows into per-patient dense
/// vectors in `gene_ids` order — the Hive idiom feeding Mahout's
/// `(row, vector)` records.
fn rows_by_patient(
    joined: &HiveTable,
    gene_ids: &[i64],
    cfg: &JobConfig,
) -> Result<mahout::RowMatrix> {
    let gene_index: std::collections::HashMap<i64, usize> =
        gene_ids.iter().enumerate().map(|(i, &g)| (g, i)).collect();
    let n = gene_ids.len();
    let input: Vec<(i64, Vec<Cell>)> = joined
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| (i as i64, r.clone()))
        .collect();
    let gene_index_ref = &gene_index;
    let mut out = genbase_mapreduce::job::run_job::<i64, Vec<Cell>, i64, (i64, f64), i64, Vec<f64>>(
        &input,
        &|_, row, e| {
            if let (Cell::I(g), Cell::I(p), Cell::F(v)) = (row[0], row[1], row[2]) {
                if gene_index_ref.contains_key(&g) {
                    e.emit(&p, &(g, v));
                }
            }
        },
        None,
        &|&p, gene_vals, emit| {
            let mut vec = vec![0.0; n];
            for (g, v) in gene_vals.iter() {
                if let Some(&gi) = gene_index_ref.get(g) {
                    vec[gi] = *v;
                }
            }
            emit(p, vec)
        },
        cfg,
    )?;
    out.sort_by_key(|&(p, _)| p);
    Ok(out)
}

impl Engine for Hadoop {
    fn name(&self) -> &'static str {
        "Hadoop"
    }

    fn supports(&self, query: Query) -> bool {
        matches!(
            query,
            Query::Regression | Query::Covariance | Query::Statistics
        )
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        if !self.supports(query) {
            return Err(Error::unsupported(self.name(), query.name()));
        }
        let cfg = self.job_config(ctx);
        let sim = cfg.sim.clone();
        let mem = ctx.mem_tracker();
        let triples = triples_table(data); // untimed HDFS residency
        mem.charge(hive_bytes(&triples))?; // split residency under the tracker
        let backend = MrBackend {
            data,
            params,
            query,
            db_budget: ctx.db_budget(),
            mem: mem.clone(),
            triples,
            cfg,
            gene_ids: Vec::new(),
            filtered_genes: None,
            joined: None,
            rows: Vec::new(),
            scores: Vec::new(),
            cov: None,
            output: None,
        };
        plan::run_plan(backend, query, Tracer::with_sim(sim).with_mem(mem))
    }
}

/// Physical state of one Hadoop run: the HDFS-resident triple table plus
/// whatever the executed prefix of the plan has produced so far.
struct MrBackend<'a> {
    data: &'a Dataset,
    params: &'a QueryParams,
    query: Query,
    cfg: JobConfig,
    db_budget: genbase_util::Budget,
    mem: MemTracker,
    triples: HiveTable,
    gene_ids: Vec<i64>,
    filtered_genes: Option<HiveTable>,
    joined: Option<HiveTable>,
    rows: mahout::RowMatrix,
    scores: Vec<f64>,
    cov: Option<analytics::CovPairs>,
    output: Option<QueryOutput>,
}

impl MrBackend<'_> {
    fn joined(&self) -> Result<&HiveTable> {
        self.joined
            .as_ref()
            .ok_or_else(|| Error::invalid("triple join did not run before this op"))
    }
}

impl PhysicalBackend for MrBackend<'_> {
    fn execute(&mut self, op: LogicalOp, tracer: &mut Tracer) -> Result<()> {
        let data = self.data;
        let params = self.params;
        match op {
            LogicalOp::FilterGenes => {
                let cfg = &self.cfg;
                let mem = &self.mem;
                let thr = params.function_threshold;
                let (filtered, gene_ids) = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("MR job: filter genes table on function < {thr}"),
                    || {
                        let genes = genes_table(data);
                        mem.note_input(hive_bytes(&genes));
                        let filtered =
                            genes.filter(move |r| matches!(r[1], Cell::I(f) if f < thr), cfg)?;
                        // Intermediate splits stay resident for the run:
                        // charge them like any other working set (released
                        // with the run's tracker).
                        mem.charge(hive_bytes(&filtered))?;
                        mem.note_output(hive_bytes(&filtered), filtered.rows.len() as u64);
                        let mut gene_ids: Vec<i64> = filtered
                            .rows
                            .iter()
                            .filter_map(|r| r[0].as_int().ok())
                            .collect();
                        gene_ids.sort_unstable();
                        Ok((filtered, gene_ids))
                    },
                )?;
                if gene_ids.is_empty() {
                    return Err(Error::invalid("gene filter selected nothing"));
                }
                self.filtered_genes = Some(filtered);
                self.gene_ids = gene_ids;
            }
            LogicalOp::FilterPatients => {
                // Patient metadata is driver-resident (tiny); the filter is
                // a driver-side scan feeding the semijoin below.
                let sel = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("driver-side filter: disease_id = {}", params.disease_id),
                    || {
                        Ok(data
                            .patients
                            .iter()
                            .filter(|p| p.disease_id == params.disease_id)
                            .map(|p| p.id as i64)
                            .collect::<Vec<i64>>())
                    },
                )?;
                if sel.len() < 2 {
                    return Err(Error::invalid("disease filter selected < 2 patients"));
                }
                self.rows = sel.into_iter().map(|p| (p, Vec::new())).collect();
            }
            LogicalOp::SamplePatients => {
                let count = params.sample_count(data.n_patients());
                let sampled = tracer.exec(
                    OpKind::Filter,
                    Phase::DataManagement,
                    format!("driver-side sample: {count} seeded patient ids"),
                    || {
                        Ok(
                            analytics::sample_patients(data.n_patients(), count, params.seed)
                                .into_iter()
                                .map(|p| (p as i64, Vec::new()))
                                .collect::<mahout::RowMatrix>(),
                        )
                    },
                )?;
                self.rows = sampled;
            }
            LogicalOp::JoinOnGenes => {
                let cfg = &self.cfg;
                let mem = &self.mem;
                let triples = &self.triples;
                let filtered = self
                    .filtered_genes
                    .as_ref()
                    .ok_or_else(|| Error::invalid("gene filter did not run before join"))?;
                let joined = tracer.exec(
                    OpKind::Join,
                    Phase::DataManagement,
                    "MR job: repartition join triples x filtered genes",
                    || {
                        mem.note_input(hive_bytes(triples) + hive_bytes(filtered));
                        let joined = triples.join(0, filtered, 0, cfg)?;
                        mem.charge(hive_bytes(&joined))?;
                        mem.note_output(hive_bytes(&joined), joined.rows.len() as u64);
                        Ok(joined)
                    },
                )?;
                self.joined = Some(joined);
            }
            LogicalOp::JoinOnPatients => {
                let cfg = &self.cfg;
                let mem = &self.mem;
                let triples = &self.triples;
                let sel_set: HashSet<i64> = self.rows.iter().map(|&(p, _)| p).collect();
                let joined = tracer.exec(
                    OpKind::Join,
                    Phase::DataManagement,
                    format!(
                        "MR job: semijoin triples x {} selected patients",
                        sel_set.len()
                    ),
                    || {
                        mem.note_input(hive_bytes(triples));
                        let joined = triples.filter(
                            move |r| matches!(r[1], Cell::I(p) if sel_set.contains(&p)),
                            cfg,
                        )?;
                        mem.charge(hive_bytes(&joined))?;
                        mem.note_output(hive_bytes(&joined), joined.rows.len() as u64);
                        Ok(joined)
                    },
                )?;
                self.joined = Some(joined);
            }
            // GO memberships live on the driver (distributed cache idiom).
            LogicalOp::JoinGoTerms => {}
            LogicalOp::Restructure => {
                let cfg = &self.cfg;
                let mem = &self.mem;
                let joined = self.joined()?;
                let gene_ids: Vec<i64> = if self.gene_ids.is_empty() {
                    (0..data.n_genes() as i64).collect()
                } else {
                    self.gene_ids.clone()
                };
                let attach_y = self.query == Query::Regression;
                let mut rows = tracer.exec(
                    OpKind::Restructure,
                    Phase::DataManagement,
                    "MR job: group triples into per-patient dense vectors",
                    || {
                        mem.note_input(hive_bytes(joined));
                        let mut rows = rows_by_patient(joined, &gene_ids, cfg)?;
                        if attach_y {
                            // Attach the target (driver-side small join with
                            // patients).
                            for (p, vec) in rows.iter_mut() {
                                vec.push(data.patients[*p as usize].drug_response);
                            }
                        }
                        let out_bytes: u64 =
                            rows.iter().map(|(_, v)| (v.len() * 8 + 8) as u64).sum();
                        mem.charge(out_bytes)?;
                        mem.note_output(out_bytes, rows.len() as u64);
                        Ok(rows)
                    },
                )?;
                std::mem::swap(&mut self.rows, &mut rows);
                self.gene_ids = gene_ids;
            }
            LogicalOp::GroupAgg => {
                let cfg = &self.cfg;
                let mem = &self.mem;
                let joined = self.joined()?;
                let n_genes = data.n_genes();
                let scores = tracer.exec(
                    OpKind::GroupAgg,
                    Phase::DataManagement,
                    "MR job: group-sum by gene over the sample",
                    || {
                        mem.note_input(hive_bytes(joined));
                        mem.note_output((n_genes * 8) as u64, n_genes as u64);
                        let groups = joined.group_sum(0, 2, cfg)?;
                        let mut scores = vec![0.0; n_genes];
                        for (g, s, c) in groups {
                            if (g as usize) < scores.len() && c > 0 {
                                scores[g as usize] = s / c as f64;
                            }
                        }
                        Ok(scores)
                    },
                )?;
                self.scores = scores;
            }
            LogicalOp::Analytics(kernel) => match kernel {
                Kernel::Regression => {
                    let cfg = &self.cfg;
                    let rows = &self.rows;
                    let gene_ids = &self.gene_ids;
                    let out = tracer.exec(
                        OpKind::Analytics,
                        Phase::Analytics,
                        "Mahout X'X/X'y jobs + driver Cholesky solve",
                        || {
                            let (xtx, xty) = mahout::xtx_xty(rows, cfg)?;
                            // The driver solves the small normal-equation
                            // system.
                            let d = xty.len();
                            let xtx_mat = Matrix::from_fn(d, d, |i, j| xtx[i][j]);
                            let beta = Cholesky::factor(&xtx_mat)?.solve(&xty)?;
                            // Driver-side R².
                            let m = rows.len() as f64;
                            let (mut ss_res, mut sum_y, mut sum_y2) = (0.0, 0.0, 0.0);
                            for (_, vec) in rows {
                                let (features, target) = vec.split_at(vec.len() - 1);
                                let y = target[0];
                                let pred =
                                    beta[0] + genbase_linalg::matrix::dot(features, &beta[1..]);
                                ss_res += (y - pred) * (y - pred);
                                sum_y += y;
                                sum_y2 += y * y;
                            }
                            let ss_tot = sum_y2 - sum_y * sum_y / m;
                            let r_squared = if ss_tot <= 0.0 {
                                1.0
                            } else {
                                1.0 - ss_res / ss_tot
                            };
                            Ok(QueryOutput::Regression {
                                intercept: beta[0],
                                coefficients: gene_ids
                                    .iter()
                                    .copied()
                                    .zip(beta[1..].iter().copied())
                                    .collect(),
                                r_squared,
                            })
                        },
                    )?;
                    self.output = Some(out);
                }
                Kernel::Covariance => {
                    let cfg = &self.cfg;
                    let rows = &self.rows;
                    let n = self.gene_ids.len();
                    let cov = tracer.exec(
                        OpKind::Analytics,
                        Phase::Analytics,
                        "Mahout covariance jobs + top-fraction threshold",
                        || {
                            let cov_rows = mahout::covariance_rows(rows, cfg)?;
                            let mut cov = Matrix::zeros(n, n);
                            for (j, row) in &cov_rows {
                                cov.row_mut(*j as usize).copy_from_slice(row);
                            }
                            Ok(analytics::pairs_from_cov(&cov, params.top_pair_fraction))
                        },
                    )?;
                    self.cov = Some(cov);
                }
                Kernel::Enrichment => {
                    let scores = std::mem::take(&mut self.scores);
                    let budget = self.db_budget.clone();
                    let out = tracer.exec(
                        OpKind::Analytics,
                        Phase::Analytics,
                        "driver-side per-GO-term Wilcoxon rank-sum",
                        || {
                            let opts =
                                genbase_linalg::ExecOpts::with_threads(1).with_budget(budget);
                            analytics::enrichment_output(&scores, &data.ontology.members, &opts)
                        },
                    )?;
                    self.output = Some(out);
                }
                Kernel::Biclustering | Kernel::Svd => {
                    unreachable!("filtered by supports()")
                }
            },
            LogicalOp::JoinGeneMetadata => {
                let (threshold, idx_pairs) = self.cov.take().ok_or_else(|| {
                    Error::invalid("covariance kernel did not run before metadata join")
                })?;
                let gene_ids = &self.gene_ids;
                let pairs = tracer.exec(
                    OpKind::Join,
                    Phase::DataManagement,
                    "driver-side join: top pairs x gene function codes",
                    || {
                        let functions = data
                            .genes
                            .iter()
                            .map(|g| (g.id as i64, g.function))
                            .collect();
                        super::sql_common::attach_gene_metadata(&idx_pairs, gene_ids, &functions)
                    },
                )?;
                self.output = Some(QueryOutput::Covariance { threshold, pairs });
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<QueryOutput> {
        self.output
            .take()
            .ok_or_else(|| Error::invalid("plan produced no output"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

    fn tiny() -> Dataset {
        generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap()
    }

    #[test]
    fn unsupported_queries_rejected() {
        let h = Hadoop::new();
        assert!(!h.supports(Query::Biclustering));
        assert!(!h.supports(Query::Svd));
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        assert!(h.run(Query::Svd, &data, &params, &ctx).is_err());
    }

    #[test]
    fn hadoop_matches_scidb_on_supported_queries() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let hadoop = Hadoop::new();
        let scidb = super::super::scidb::SciDb::new();
        for q in [Query::Regression, Query::Covariance, Query::Statistics] {
            let a = hadoop.run(q, &data, &params, &ctx).unwrap().output;
            let b = scidb.run(q, &data, &params, &ctx).unwrap().output;
            assert!(
                a.consistency_error(&b, 1e-5).is_none(),
                "{q:?}: {:?}",
                a.consistency_error(&b, 1e-5)
            );
        }
    }

    #[test]
    fn job_launch_latency_lands_in_sim_time() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let report = Hadoop::new()
            .run(Query::Statistics, &data, &params, &ctx)
            .unwrap();
        let sim_total = report.phases.data_management.sim_secs + report.phases.analytics.sim_secs;
        assert!(
            sim_total >= JOB_LAUNCH_SECS,
            "at least one job launch charged: {sim_total}"
        );
        // Per-op accounting: the MR join op carries its own simulated cost.
        let join = report
            .trace
            .ops
            .iter()
            .find(|op| op.label.contains("semijoin"))
            .expect("join op traced");
        assert!(join.cost.sim_nanos > 0, "join charges launch latency");
    }

    #[test]
    fn multi_node_charges_shuffle_network() {
        let data = tiny();
        let params = QueryParams::for_dataset(&data);
        let single = ExecContext::single_node();
        let multi = ExecContext::multi_node(4);
        let h = Hadoop::new();
        let a = h.run(Query::Covariance, &data, &params, &single).unwrap();
        let b = h.run(Query::Covariance, &data, &params, &multi).unwrap();
        let sim_a = a.phases.data_management.sim_secs + a.phases.analytics.sim_secs;
        let sim_b = b.phases.data_management.sim_secs + b.phases.analytics.sim_secs;
        assert!(sim_b > sim_a, "shuffle traffic must cost more on 4 nodes");
        // Same answer regardless of node count.
        assert!(a.output.consistency_error(&b.output, 1e-9).is_none());
    }
}
