//! The SQL-store engine configurations, thin wrappers over
//! [`super::sql_common`] plus the pbdR multi-node variants from
//! [`super::mn`].

use super::mn::{run_multinode, MnFlavor};
use super::sql_common::{Bridge, SqlEngineSpec, StoreKind};
use crate::engine::{Engine, ExecContext};
use crate::query::{Query, QueryParams};
use crate::report::QueryReport;
use genbase_datagen::Dataset;
use genbase_util::Result;

/// Postgres + Madlib: row store with in-database analytics. Regression runs
/// as a fast streaming aggregate; covariance and SVD are simulated in
/// SQL/plpython (slow); biclustering is missing (paper: Madlib "executes
/// four of the five tasks").
#[derive(Debug, Default)]
pub struct PostgresMadlib;

impl PostgresMadlib {
    /// New engine.
    pub fn new() -> Self {
        PostgresMadlib
    }
}

impl Engine for PostgresMadlib {
    fn name(&self) -> &'static str {
        "Postgres + Madlib"
    }

    fn supports(&self, query: Query) -> bool {
        query != Query::Biclustering
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        if !self.supports(query) {
            return Err(genbase_util::Error::unsupported(self.name(), query.name()));
        }
        SqlEngineSpec {
            name: self.name(),
            kind: StoreKind::Row,
            bridge: Bridge::InDatabase,
            udf_q3_penalty: false,
        }
        .run(query, data, params, ctx)
    }
}

/// Postgres + R: row store for data management, CSV export into a
/// single-threaded R runtime for analytics.
#[derive(Debug, Default)]
pub struct PostgresR;

impl PostgresR {
    /// New engine.
    pub fn new() -> Self {
        PostgresR
    }
}

impl Engine for PostgresR {
    fn name(&self) -> &'static str {
        "Postgres + R"
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        SqlEngineSpec {
            name: self.name(),
            kind: StoreKind::Row,
            bridge: Bridge::ExportToR,
            udf_q3_penalty: false,
        }
        .run(query, data, params, ctx)
    }
}

/// Column store + R: vectorized data management, CSV export to R.
#[derive(Debug, Default)]
pub struct ColumnR;

impl ColumnR {
    /// New engine.
    pub fn new() -> Self {
        ColumnR
    }
}

impl Engine for ColumnR {
    fn name(&self) -> &'static str {
        "Column store + R"
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        SqlEngineSpec {
            name: self.name(),
            kind: StoreKind::Column,
            bridge: Bridge::ExportToR,
            udf_q3_penalty: false,
        }
        .run(query, data, params, ctx)
    }
}

/// Column store + UDFs: in-process handoff to R UDFs (no export), with the
/// row-marshalling penalty the paper observes on the biclustering query.
/// Runs multi-node (hash-partitioned) when `ctx.nodes > 1`.
#[derive(Debug, Default)]
pub struct ColumnUdf;

impl ColumnUdf {
    /// New engine.
    pub fn new() -> Self {
        ColumnUdf
    }
}

impl Engine for ColumnUdf {
    fn name(&self) -> &'static str {
        "Column store + UDFs"
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        if ctx.nodes > 1 {
            return run_multinode(MnFlavor::ColumnUdf, query, data, params, ctx);
        }
        SqlEngineSpec {
            name: self.name(),
            kind: StoreKind::Column,
            bridge: Bridge::InProcess,
            udf_q3_penalty: true,
        }
        .run(query, data, params, ctx)
    }
}

/// pbdR: data evenly pre-partitioned across nodes, local filters/joins in
/// R, ScaLAPACK-style distributed analytics. Single-node it degenerates to
/// an R runtime without the DBMS (but also without vanilla R's full-table
/// load, since data arrives pre-partitioned in native form).
#[derive(Debug, Default)]
pub struct Pbdr;

impl Pbdr {
    /// New engine.
    pub fn new() -> Self {
        Pbdr
    }
}

impl Engine for Pbdr {
    fn name(&self) -> &'static str {
        "pbdR"
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        run_multinode(MnFlavor::Pbdr, query, data, params, ctx)
    }
}

/// Column store + pbdR: per-node column-store data management, CSV export
/// into the distributed pbdR/ScaLAPACK analytics.
#[derive(Debug, Default)]
pub struct ColumnPbdr;

impl ColumnPbdr {
    /// New engine.
    pub fn new() -> Self {
        ColumnPbdr
    }
}

impl Engine for ColumnPbdr {
    fn name(&self) -> &'static str {
        "Column store + pbdR"
    }

    fn max_nodes(&self) -> usize {
        64
    }

    fn run(
        &self,
        query: Query,
        data: &Dataset,
        params: &QueryParams,
        ctx: &ExecContext,
    ) -> Result<QueryReport> {
        run_multinode(MnFlavor::ColumnPbdr, query, data, params, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

    #[test]
    fn madlib_rejects_biclustering() {
        let data = generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let err = PostgresMadlib::new()
            .run(Query::Biclustering, &data, &params, &ctx)
            .unwrap_err();
        assert!(matches!(err, genbase_util::Error::Unsupported { .. }));
        assert!(!PostgresMadlib::new().supports(Query::Biclustering));
    }

    #[test]
    fn single_node_sql_engines_complete_regression() {
        let data = generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::single_node();
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(PostgresMadlib::new()),
            Box::new(PostgresR::new()),
            Box::new(ColumnR::new()),
            Box::new(ColumnUdf::new()),
        ];
        let mut outputs = Vec::new();
        for e in &engines {
            let r = e.run(Query::Regression, &data, &params, &ctx).unwrap();
            outputs.push(r.output);
        }
        // All four agree (QR vs normal equations within tolerance).
        for o in &outputs[1..] {
            assert!(
                outputs[0].consistency_error(o, 1e-6).is_none(),
                "{:?}",
                outputs[0].consistency_error(o, 1e-6)
            );
        }
    }
}
