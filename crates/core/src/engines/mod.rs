//! The benchmark system configurations.
//!
//! Single-node (paper §4.1): [`VanillaR`], [`PostgresMadlib`], [`PostgresR`],
//! [`ColumnR`], [`ColumnUdf`], [`SciDb`], [`Hadoop`].
//! Multi-node (paper §4.2): [`SciDb`], [`ColumnUdf`], [`Hadoop`] (same
//! engines at `ctx.nodes > 1`), plus [`Pbdr`] and [`ColumnPbdr`].
//! Hardware acceleration (paper §5): [`SciDbPhi`].

pub mod hadoop;
pub mod mn;
pub mod scidb;
pub mod sql_common;
pub mod sql_engines;
pub mod vanilla_r;

pub use hadoop::Hadoop;
pub use scidb::{SciDb, SciDbPhi};
pub use sql_engines::{ColumnPbdr, ColumnR, ColumnUdf, Pbdr, PostgresMadlib, PostgresR};
pub use vanilla_r::VanillaR;

use crate::engine::Engine;

/// The seven single-node configurations of Figure 1, in legend order.
pub fn single_node_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ColumnR::new()),
        Box::new(ColumnUdf::new()),
        Box::new(Hadoop::new()),
        Box::new(PostgresMadlib::new()),
        Box::new(PostgresR::new()),
        Box::new(SciDb::new()),
        Box::new(VanillaR::new()),
    ]
}

/// The five multi-node configurations of Figure 3, in legend order.
pub fn multi_node_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(ColumnPbdr::new()),
        Box::new(ColumnUdf::new()),
        Box::new(Hadoop::new()),
        Box::new(Pbdr::new()),
        Box::new(SciDb::new()),
    ]
}

/// Every distinct engine configuration in the suite, one instance each
/// (the scheduler's registry: cells reference engines by display name).
pub fn all_engines() -> Vec<Box<dyn Engine>> {
    let mut engines = single_node_engines();
    for e in multi_node_engines() {
        if !engines.iter().any(|have| have.name() == e.name()) {
            engines.push(e);
        }
    }
    engines.push(Box::new(SciDbPhi::new()));
    engines
}
