//! Generic multi-node query execution.
//!
//! The paper's multi-node configurations all follow the same macro-plan —
//! partition the microarray by patient rows, run data management locally on
//! each node, then run distributed analytics with rooted collectives — and
//! differ in the *local* mechanics: pbdR works on raw R matrices, SciDB on
//! chunked arrays, the column-store variants on columnar tables (with
//! Column store + pbdR additionally paying a per-node CSV export into the
//! analytics runtime).
//!
//! Every kernel is numerically identical to its single-node counterpart, so
//! integration tests can assert multi-node == single-node outputs while the
//! costs diverge.
//!
//! Trace granularity: a multi-node run reports the *critical path* — the
//! per-phase maximum across nodes — so its plan trace is two synthesized
//! ops (the per-node data-management pipeline and the distributed kernel)
//! whose model costs are exactly those maxima. Finer per-op tracing across
//! nodes would change the critical-path combination (a sum of per-op maxima
//! is not the maximum of per-node sums), so the coarse trace is the one
//! that keeps phase totals faithful.

use crate::analytics;
use crate::engine::{ExecContext, PhaseClock};
use crate::plan::{OpCost, OpKind, Phase, PlanTrace, Tracer};
use crate::query::{Query, QueryOutput, QueryParams};
use crate::report::QueryReport;
use genbase_array::Array2D;
use genbase_cluster::{
    dist::{dist_column_sums_selected, row_bands},
    dist_covariance, dist_least_squares, gather_matrix, Cluster, DistGramOp, NodeCtx,
};
use genbase_datagen::Dataset;
use genbase_linalg::{lanczos_topk, ExecOpts, Matrix};
use genbase_relational::{DataType, Schema};
use genbase_storage::{self as storage, Column, ColumnarTable, MemDelta, MemTracker};
use genbase_util::{csv, Budget, Error, Result};

/// Which multi-node configuration is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnFlavor {
    /// SciDB: chunk-partitioned array engine.
    SciDb,
    /// Column store + UDFs: columnar DM, in-process distributed analytics.
    ColumnUdf,
    /// Column store + pbdR: columnar DM + CSV export into pbdR.
    ColumnPbdr,
    /// pbdR alone: pre-partitioned R matrices.
    Pbdr,
}

/// Per-node storage, held in the unified storage layer: a dense band
/// (pbdR), a chunked band (SciDB), or a columnar triple band (the column
/// stores). Every representation registers with the node's [`MemTracker`],
/// and the selects below go through the shared conversion kernels.
enum LocalStore {
    Pbdr { mat: Matrix },
    SciDb { arr: Array2D },
    Column { triples: ColumnarTable },
}

impl LocalStore {
    fn build(
        flavor: MnFlavor,
        data: &Dataset,
        band: std::ops::Range<usize>,
        budget: &Budget,
        mem: &MemTracker,
    ) -> Result<LocalStore> {
        let rows: Vec<usize> = band.clone().collect();
        match flavor {
            MnFlavor::Pbdr => {
                let mat = data.expression.select_rows(&rows);
                mem.charge(mat.heap_bytes())?;
                Ok(LocalStore::Pbdr { mat })
            }
            MnFlavor::SciDb => {
                let band_mat = data.expression.select_rows(&rows);
                Ok(LocalStore::SciDb {
                    arr: storage::chunked_from_dense(mem, &band_mat, budget)?,
                })
            }
            MnFlavor::ColumnUdf | MnFlavor::ColumnPbdr => {
                let n_genes = data.n_genes();
                let mut gene_col = Vec::with_capacity(rows.len() * n_genes);
                let mut patient_col = Vec::with_capacity(rows.len() * n_genes);
                let mut value_col = Vec::with_capacity(rows.len() * n_genes);
                for &p in &rows {
                    let row = data.expression.row(p);
                    for (g, &v) in row.iter().enumerate() {
                        gene_col.push(g as i64);
                        patient_col.push(p as i64);
                        value_col.push(v);
                    }
                }
                let schema = Schema::new(&[
                    ("gene_id", DataType::Int),
                    ("patient_id", DataType::Int),
                    ("value", DataType::Float),
                ])?;
                Ok(LocalStore::Column {
                    triples: ColumnarTable::from_columns(
                        mem,
                        schema,
                        vec![
                            Column::Ints(gene_col),
                            Column::Ints(patient_col),
                            Column::Floats(value_col),
                        ],
                    )?,
                })
            }
        }
    }

    /// Local band restricted to the given gene columns (Query 1/4 DM).
    /// The columnar flavor pivots its triple band straight through the
    /// storage layer's dense kernel: the id maps *are* the semijoin.
    fn select_cols(
        &self,
        cols: &[usize],
        band: &std::ops::Range<usize>,
        threads: usize,
        budget: &Budget,
        mem: &MemTracker,
    ) -> Result<Matrix> {
        let local = match self {
            LocalStore::Pbdr { mat } => storage::select_cols_tracked(mem, mat, cols),
            LocalStore::SciDb { arr } => {
                let rows: Vec<usize> = (0..arr.rows()).collect();
                storage::gather_chunked(arr, &rows, cols, threads, mem, budget)?
            }
            LocalStore::Column { triples } => {
                let gene_ids: Vec<i64> = cols.iter().map(|&c| c as i64).collect();
                let patient_ids: Vec<i64> = band.clone().map(|p| p as i64).collect();
                storage::pivot_dense(
                    &triples.view(),
                    (1, 0, 2),
                    &patient_ids,
                    &gene_ids,
                    threads,
                    mem,
                    budget,
                )?
            }
        };
        // The local working set stays resident through the distributed
        // kernel: charge it like the single-node engines' DenseHandles
        // (released with the node's tracker).
        mem.charge(local.heap_bytes())?;
        Ok(local)
    }

    /// Local band restricted to the given *local* row positions over all
    /// genes (Query 2/3/5 DM).
    fn select_rows(
        &self,
        local_rows: &[usize],
        band: &std::ops::Range<usize>,
        n_genes: usize,
        threads: usize,
        budget: &Budget,
        mem: &MemTracker,
    ) -> Result<Matrix> {
        let local = match self {
            LocalStore::Pbdr { mat } => storage::select_rows_tracked(mem, mat, local_rows),
            LocalStore::SciDb { arr } => {
                let cols: Vec<usize> = (0..n_genes).collect();
                storage::gather_chunked(arr, local_rows, &cols, threads, mem, budget)?
            }
            LocalStore::Column { triples } => {
                let patient_ids: Vec<i64> = local_rows
                    .iter()
                    .map(|&r| (band.start + r) as i64)
                    .collect();
                let gene_ids: Vec<i64> = (0..n_genes as i64).collect();
                storage::pivot_dense(
                    &triples.view(),
                    (1, 0, 2),
                    &patient_ids,
                    &gene_ids,
                    threads,
                    mem,
                    budget,
                )?
            }
        };
        // See select_cols: the local band selection is kernel-resident.
        mem.charge(local.heap_bytes())?;
        Ok(local)
    }
}

/// Column store + pbdR exports each node's filtered matrix as CSV text into
/// the R runtime; this is that round trip (bit-exact, but not free).
fn maybe_export_to_r(
    flavor: MnFlavor,
    mat: Matrix,
    budget: &Budget,
    mem: &MemTracker,
) -> Result<Matrix> {
    if flavor != MnFlavor::ColumnPbdr || mat.rows() == 0 {
        // Nothing to export on an empty local selection (and CSV text
        // cannot carry the column count of a zero-row matrix).
        return Ok(mat);
    }
    budget.check("pbdR export")?;
    mem.note_input(mat.heap_bytes());
    let text = csv::write_matrix(mat.data(), mat.rows(), mat.cols());
    mem.note_output(text.len() as u64, mat.rows() as u64);
    let (data, rows, cols) = csv::parse_matrix(&text)?;
    mem.note_input(text.len() as u64);
    let out = Matrix::from_vec(rows, cols, data)?;
    // The parsed copy replaces the exported matrix (same shape): swap the
    // residency charge rather than double-counting.
    mem.release(mat.heap_bytes());
    mem.charge(out.heap_bytes())?;
    mem.note_output(out.heap_bytes(), out.rows() as u64);
    Ok(out)
}

struct NodeOut {
    dm_wall: f64,
    dm_sim: f64,
    an_wall: f64,
    an_sim: f64,
    dm_mem: MemDelta,
    output: Option<QueryOutput>,
}

/// Run one query on a simulated cluster of `ctx.nodes` nodes.
pub fn run_multinode(
    flavor: MnFlavor,
    query: Query,
    data: &Dataset,
    params: &QueryParams,
    ctx: &ExecContext,
) -> Result<QueryReport> {
    let cluster = Cluster::new(ctx.nodes, ctx.net);
    let bands = row_bands(data.n_patients(), ctx.nodes);
    let threads = ctx.threads_per_node();
    let bands_ref = &bands;

    let (results, _) = cluster.run(|nctx: &mut NodeCtx| -> Result<NodeOut> {
        let band = bands_ref[nctx.rank()].clone();
        let budget = ctx.db_budget();
        // Each simulated node holds its working sets under its own
        // storage-layer tracker (per-node `--mem-budget`); the critical-path
        // trace reports the per-node maximum, matching the time combination.
        let mem = MemTracker::new(ctx.mem_budget);
        let opts = ExecOpts::with_threads(threads).with_budget(budget.clone());
        let store = LocalStore::build(flavor, data, band.clone(), &budget, &mem)?; // untimed
        let dm_scope = mem.op_begin();
        let root = nctx.rank() == 0;
        let mut out = NodeOut {
            dm_wall: 0.0,
            dm_sim: 0.0,
            an_wall: 0.0,
            an_sim: 0.0,
            dm_mem: MemDelta::default(),
            output: None,
        };
        let sim = nctx.sim.clone();
        match query {
            Query::Regression => {
                let clock = PhaseClock::start();
                let cols: Vec<usize> = data
                    .genes
                    .iter()
                    .filter(|g| g.function < params.function_threshold)
                    .map(|g| g.id as usize)
                    .collect();
                if cols.is_empty() {
                    return Err(Error::invalid("gene filter selected nothing"));
                }
                let local_x = store.select_cols(&cols, &band, threads, &budget, &mem)?;
                let local_x = maybe_export_to_r(flavor, local_x, &budget, &mem)?;
                let local_y: Vec<f64> = band
                    .clone()
                    .map(|p| data.patients[p].drug_response)
                    .collect();
                out.dm_wall = clock.secs();
                out.dm_sim = sim.total_secs();

                let clock = PhaseClock::start();
                // Intercept column + TSQR least squares.
                let aug = Matrix::from_fn(local_x.rows(), local_x.cols() + 1, |r, c| {
                    if c == 0 {
                        1.0
                    } else {
                        local_x.get(r, c - 1)
                    }
                });
                let beta = dist_least_squares(nctx, &aug, &local_y, &opts)?;
                // Distributed R²: allreduce [ss_res, Σy, Σy², m].
                let mut acc = [0.0f64; 4];
                for (r, &y) in local_y.iter().enumerate() {
                    let pred = beta[0] + genbase_linalg::matrix::dot(local_x.row(r), &beta[1..]);
                    acc[0] += (y - pred) * (y - pred);
                    acc[1] += y;
                    acc[2] += y * y;
                    acc[3] += 1.0;
                }
                nctx.allreduce_sum(&mut acc)?;
                out.an_wall = clock.secs();
                out.an_sim = sim.total_secs() - out.dm_sim;
                if root {
                    let ss_tot = acc[2] - acc[1] * acc[1] / acc[3];
                    let r_squared = if ss_tot <= 0.0 {
                        1.0
                    } else {
                        1.0 - acc[0] / ss_tot
                    };
                    out.output = Some(QueryOutput::Regression {
                        intercept: beta[0],
                        coefficients: cols
                            .iter()
                            .map(|&c| c as i64)
                            .zip(beta[1..].iter().copied())
                            .collect(),
                        r_squared,
                    });
                }
            }
            Query::Covariance => {
                let clock = PhaseClock::start();
                let local_rows: Vec<usize> = band
                    .clone()
                    .filter(|&p| data.patients[p].disease_id == params.disease_id)
                    .map(|p| p - band.start)
                    .collect();
                let local_sel = store.select_rows(
                    &local_rows,
                    &band,
                    data.n_genes(),
                    threads,
                    &budget,
                    &mem,
                )?;
                let local_sel = maybe_export_to_r(flavor, local_sel, &budget, &mem)?;
                out.dm_wall = clock.secs();
                out.dm_sim = sim.total_secs();

                let clock = PhaseClock::start();
                let mut count = [local_rows.len() as f64];
                nctx.allreduce_sum(&mut count)?;
                let total = count[0] as usize;
                if total < 2 {
                    return Err(Error::invalid("disease filter selected < 2 patients"));
                }
                let cov = dist_covariance(nctx, &local_sel, total, &opts)?;
                out.an_wall = clock.secs();
                out.an_sim = sim.total_secs() - out.dm_sim;

                if root {
                    let clock = PhaseClock::start();
                    let (threshold, idx_pairs) =
                        analytics::pairs_from_cov(&cov, params.top_pair_fraction);
                    let gene_ids: Vec<i64> = (0..data.n_genes() as i64).collect();
                    let functions = data
                        .genes
                        .iter()
                        .map(|g| (g.id as i64, g.function))
                        .collect();
                    let pairs =
                        super::sql_common::attach_gene_metadata(&idx_pairs, &gene_ids, &functions)?;
                    out.dm_wall += clock.secs();
                    out.output = Some(QueryOutput::Covariance { threshold, pairs });
                }
            }
            Query::Biclustering => {
                let clock = PhaseClock::start();
                let local_rows: Vec<usize> = band
                    .clone()
                    .filter(|&p| {
                        let rec = &data.patients[p];
                        rec.gender == params.gender && rec.age < params.max_age
                    })
                    .map(|p| p - band.start)
                    .collect();
                let local_sel = store.select_rows(
                    &local_rows,
                    &band,
                    data.n_genes(),
                    threads,
                    &budget,
                    &mem,
                )?;
                let local_sel = maybe_export_to_r(flavor, local_sel, &budget, &mem)?;
                // Gather the filtered submatrix to the root (with the ids).
                let ids_f64: Vec<f64> = local_rows
                    .iter()
                    .map(|&r| (band.start + r) as f64)
                    .collect();
                let gathered_ids = nctx.gather_f64s(0, &ids_f64)?;
                let gathered = gather_matrix(nctx, 0, &local_sel)?;
                out.dm_wall = clock.secs();
                out.dm_sim = sim.total_secs();

                if root {
                    let clock = PhaseClock::start();
                    let mat = gathered.expect("root gathers");
                    let patient_ids: Vec<i64> = gathered_ids
                        .expect("root gathers")
                        .into_iter()
                        .flatten()
                        .map(|f| f as i64)
                        .collect();
                    if patient_ids.len() < params.bicluster.min_rows {
                        return Err(Error::invalid(
                            "age/gender filter selected too few patients",
                        ));
                    }
                    let gene_ids: Vec<i64> = (0..data.n_genes() as i64).collect();
                    out.output = Some(analytics::bicluster_output(
                        &mat,
                        &patient_ids,
                        &gene_ids,
                        &params.bicluster,
                        &opts,
                    )?);
                    out.an_wall = clock.secs();
                    out.an_sim = sim.total_secs() - out.dm_sim;
                }
            }
            Query::Svd => {
                let clock = PhaseClock::start();
                let cols: Vec<usize> = data
                    .genes
                    .iter()
                    .filter(|g| g.function < params.function_threshold)
                    .map(|g| g.id as usize)
                    .collect();
                if cols.is_empty() {
                    return Err(Error::invalid("gene filter selected nothing"));
                }
                let local_x = store.select_cols(&cols, &band, threads, &budget, &mem)?;
                let local_x = maybe_export_to_r(flavor, local_x, &budget, &mem)?;
                out.dm_wall = clock.secs();
                out.dm_sim = sim.total_secs();

                let clock = PhaseClock::start();
                let op = DistGramOp::new(nctx, &local_x);
                let k = params.svd_k.min(cols.len()).max(1);
                let res = lanczos_topk(&op, k, 0, params.seed, &opts)?;
                out.an_wall = clock.secs();
                out.an_sim = sim.total_secs() - out.dm_sim;
                if root {
                    out.output = Some(QueryOutput::Svd {
                        eigenvalues: res.eigenvalues,
                    });
                }
            }
            Query::Statistics => {
                let clock = PhaseClock::start();
                let count = params.sample_count(data.n_patients());
                let sampled = analytics::sample_patients(data.n_patients(), count, params.seed);
                let local_rows: Vec<usize> = sampled
                    .iter()
                    .filter(|&&p| band.contains(&p))
                    .map(|&p| p - band.start)
                    .collect();
                let local_sel = store.select_rows(
                    &local_rows,
                    &band,
                    data.n_genes(),
                    threads,
                    &budget,
                    &mem,
                )?;
                let local_sel = maybe_export_to_r(flavor, local_sel, &budget, &mem)?;
                out.dm_wall = clock.secs();
                out.dm_sim = sim.total_secs();

                let clock = PhaseClock::start();
                let all_local: Vec<usize> = (0..local_sel.rows()).collect();
                let sums = dist_column_sums_selected(nctx, &local_sel, &all_local)?;
                if root {
                    let scores: Vec<f64> = sums
                        .iter()
                        .map(|s| s / sampled.len().max(1) as f64)
                        .collect();
                    out.output = Some(analytics::enrichment_output(
                        &scores,
                        &data.ontology.members,
                        &opts,
                    )?);
                }
                out.an_wall = clock.secs();
                out.an_sim = sim.total_secs() - out.dm_sim;
            }
        }
        out.dm_mem = mem.op_delta(dm_scope);
        Ok(out)
    })?;

    // Critical-path combination: max across nodes per phase; output from
    // the root.
    let (mut dm_wall, mut dm_sim, mut an_wall, mut an_sim) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut dm_mem = MemDelta::default();
    let mut output = None;
    for node in results {
        dm_wall = dm_wall.max(node.dm_wall);
        dm_sim = dm_sim.max(node.dm_sim);
        an_wall = an_wall.max(node.an_wall);
        an_sim = an_sim.max(node.an_sim);
        dm_mem.bytes_in = dm_mem.bytes_in.max(node.dm_mem.bytes_in);
        dm_mem.bytes_out = dm_mem.bytes_out.max(node.dm_mem.bytes_out);
        dm_mem.peak_alloc_bytes = dm_mem.peak_alloc_bytes.max(node.dm_mem.peak_alloc_bytes);
        dm_mem.rows_materialized = dm_mem.rows_materialized.max(node.dm_mem.rows_materialized);
        dm_mem.batches = dm_mem.batches.max(node.dm_mem.batches);
        dm_mem.spill_bytes = dm_mem.spill_bytes.max(node.dm_mem.spill_bytes);
        if node.output.is_some() {
            output = node.output;
        }
    }
    let output = output.ok_or_else(|| Error::invalid("no node produced output"))?;
    Ok(QueryReport::from_trace(
        output,
        critical_path_trace(flavor, ctx.nodes, dm_wall, dm_sim, an_wall, an_sim, dm_mem),
    ))
}

/// The two-op critical-path trace of a multi-node run (see module docs).
/// The memory dimension follows the same combination: the data-management
/// op carries the per-node *maximum* of each storage-layer counter.
fn critical_path_trace(
    flavor: MnFlavor,
    nodes: usize,
    dm_wall: f64,
    dm_sim: f64,
    an_wall: f64,
    an_sim: f64,
    dm_mem: MemDelta,
) -> PlanTrace {
    let mut tracer = Tracer::new();
    tracer.record(
        OpKind::Restructure,
        Phase::DataManagement,
        format!("per-node filter/join/restructure ({flavor:?}, critical path over {nodes} nodes)"),
        OpCost {
            wall_secs: dm_wall,
            sim_nanos: 0,
            model_secs: dm_sim,
            sim_bytes: 0,
            ..OpCost::default()
        }
        .with_mem(dm_mem),
    );
    tracer.record(
        OpKind::Analytics,
        Phase::Analytics,
        format!("distributed kernel + collectives (critical path over {nodes} nodes)"),
        OpCost {
            wall_secs: an_wall,
            sim_nanos: 0,
            model_secs: an_sim,
            sim_bytes: 0,
            ..OpCost::default()
        },
    );
    tracer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};

    #[test]
    fn all_flavors_run_all_queries_on_two_nodes() {
        let data = generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap();
        let params = QueryParams::for_dataset(&data);
        let ctx = ExecContext::multi_node(2);
        for flavor in [
            MnFlavor::Pbdr,
            MnFlavor::SciDb,
            MnFlavor::ColumnUdf,
            MnFlavor::ColumnPbdr,
        ] {
            for q in Query::ALL {
                let report = run_multinode(flavor, q, &data, &params, &ctx)
                    .unwrap_or_else(|e| panic!("{flavor:?}/{q:?}: {e}"));
                assert_eq!(report.output.query(), q);
            }
        }
    }

    #[test]
    fn multinode_matches_single_node_scidb() {
        let data = generate(&GeneratorConfig::new(SizeSpec::tiny())).unwrap();
        let params = QueryParams::for_dataset(&data);
        let single = ExecContext::single_node();
        let scidb = super::super::scidb::SciDb::new();
        for q in Query::ALL {
            let reference = scidb.run(q, &data, &params, &single).unwrap().output;
            for nodes in [2usize, 4] {
                let ctx = ExecContext::multi_node(nodes);
                let got = run_multinode(MnFlavor::Pbdr, q, &data, &params, &ctx)
                    .unwrap()
                    .output;
                assert!(
                    got.consistency_error(&reference, 1e-5).is_none(),
                    "{q:?} nodes={nodes}: {:?}",
                    got.consistency_error(&reference, 1e-5)
                );
            }
        }
    }
}
