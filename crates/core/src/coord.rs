//! Distributed sweep coordinator: lease cells to workers over TCP.
//!
//! The sharded scheduler in [`crate::sched`] splits a sweep into static
//! shards that merge by grid *files* — which requires a shared filesystem
//! (or artifact copying) and fixes the partition up front. This module
//! removes both constraints: a **coordinator** process listens on a TCP
//! socket, hands out [`CellKey`] work **leases** to connecting **workers**,
//! and streams each completed cell's outcome back as a length-prefixed
//! `genbase_util::json` message ([`genbase_util::frame`]), folding it into
//! one authoritative [`ReportGrid`]. Workers can live on other machines, or
//! be N local processes; the file-based shard merge remains as the fallback
//! path for batch clusters without connectivity.
//!
//! ## Wire protocol (`genbase-coord-v1`)
//!
//! Every message is one frame: a 4-byte big-endian length prefix followed
//! by compact JSON (see `ARCHITECTURE.md` for the full schema). After a
//! `hello`/`welcome` handshake, the worker strictly alternates: it sends
//! `request`, `result`, or `failed`, and reads exactly one reply (`lease`,
//! `idle`, or `done`).
//!
//! - The handshake carries the worker's **config fingerprint**
//!   ([`config_fingerprint`]); a worker built from mismatched flags is
//!   rejected at connect, the same guard the file-merge path applies to
//!   grid files.
//! - **Worker death is a first-class event:** each connection is served by
//!   a dedicated blocking thread, so a dying worker — process kill, crash,
//!   connection reset — surfaces as an I/O error/EOF, and its outstanding
//!   lease is returned to the front of the pending queue for the next
//!   requester. Completed cells are already in the grid (and in the
//!   checkpoint file, when configured), so no work is lost and none
//!   repeats. (A machine that vanishes *without* a TCP reset — power
//!   loss, hard partition — is not detected until its connection errors
//!   unless a `--lease-timeout` deadline is configured.)
//! - **Checkpoint reuse:** the coordinator persists the grid through the
//!   same `--checkpoint` JSON file as a local sweep, after every streamed
//!   result. A killed coordinator restarts with only the missing cells
//!   pending, exactly like a killed local sweep.
//!
//! Determinism: the grid is keyed and ordered by cell id, so the rendered
//! figures are independent of which worker ran which cell and of arrival
//! order. Under [`TimingMode::SimOnly`](crate::harness::TimingMode) a
//! coordinated sweep renders **byte-identical** output to the serial
//! single-process run (`tests/coord_distributed.rs` pins this).
//!
//! Connection handlers use dedicated OS threads, not the shared runtime
//! pool: they block on socket reads for the lifetime of a worker, and a
//! capped task pool must never have its slots parked on I/O (the same
//! reasoning as `genbase_cluster::Cluster::run`). Cell *compute* on the
//! worker side still goes through the pool via `ExecOpts.threads`.

use crate::figures;
use crate::harness::HarnessConfig;
use crate::sched::{
    config_fingerprint, save_text, CellKey, CellOutcome, FigureId, ReportGrid, Scheduler,
};
use genbase_datagen::SizeClass;
use genbase_util::frame::{read_frame_opt, write_frame};
use genbase_util::{Error, Json, Result};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Protocol identifier sent in every handshake; bump on wire changes.
pub const PROTOCOL: &str = "genbase-coord-v1";

/// Milliseconds a worker waits before re-requesting when the coordinator
/// has no pending cells but other workers still hold leases.
const IDLE_BACKOFF_MS: u64 = 50;

/// How many times one cell may be re-issued after worker deaths before it
/// is abandoned as a hard failure. Bounds the livelock where a cell
/// reliably kills (OOMs, segfaults) every worker that leases it: after
/// this many dead workers the cell is written off through `first_error`
/// and the rest of the sweep completes, mirroring how the local scheduler
/// surfaces an in-process crash instead of retrying forever.
const MAX_REISSUES_PER_CELL: usize = 3;

fn msg(kind: &str) -> Json {
    let mut m = Json::obj();
    m.set("type", Json::from(kind));
    m
}

fn msg_type(m: &Json) -> Result<&str> {
    m.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| Error::invalid("frame missing type"))
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct CoordOptions {
    /// Checkpoint file: loaded (if present) to skip completed cells,
    /// rewritten after every streamed result — the same file format and
    /// fingerprint guard as a local `--checkpoint` sweep.
    pub checkpoint: Option<PathBuf>,
    /// Per-lease deadline. A cell held longer than this is revoked: the
    /// holder's connection is shut down (unblocking a handler wedged on a
    /// half-open link) and the cell re-queued under the usual
    /// `MAX_REISSUES_PER_CELL` cap. `None` (default) keeps the EOF-only
    /// behavior: a wedged-but-open connection holds its lease until TCP
    /// gives up. Size it well above the slowest expected cell — a slow but
    /// healthy worker past the deadline loses its lease and its connection,
    /// and the cell runs again elsewhere.
    pub lease_timeout: Option<Duration>,
    /// Shared auth token (`--auth-token` / `GENBASE_COORD_TOKEN`). When
    /// set, every worker must present the same token in its `hello`;
    /// a missing or different token is a clean protocol reject during the
    /// config-fingerprint handshake. `None` disables the check (workers
    /// presenting a token are then rejected too, so a mismatch is always
    /// loud rather than silently ignored).
    pub auth_token: Option<String>,
}

impl CoordOptions {
    /// Checkpoint to (and resume from) `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> CoordOptions {
        self.checkpoint = Some(path.into());
        self
    }

    /// Revoke and re-issue leases held longer than `timeout`.
    pub fn with_lease_timeout(mut self, timeout: Duration) -> CoordOptions {
        self.lease_timeout = Some(timeout);
        self
    }

    /// Require workers to present `token` at the handshake.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> CoordOptions {
        self.auth_token = Some(token.into());
        self
    }
}

/// What a coordinated sweep did, plus the grid to render from.
#[derive(Debug)]
pub struct CoordOutcome {
    /// All outcomes (including checkpoint-restored cells).
    pub grid: ReportGrid,
    /// Cells in the plan.
    pub planned: usize,
    /// Cells executed by workers this run.
    pub executed: usize,
    /// Cells restored from the checkpoint.
    pub restored: usize,
    /// Leases re-issued after a worker died mid-cell.
    pub reissued: usize,
    /// Distinct worker connections that completed the handshake.
    pub workers: usize,
}

/// One outstanding lease: the cell and when it was handed out.
struct Lease {
    cell: CellKey,
    since: Instant,
}

/// Shared lease-scheduler state behind the connection handlers.
struct State {
    pending: VecDeque<CellKey>,
    /// Outstanding lease per live worker connection.
    leased: HashMap<u64, Lease>,
    grid: ReportGrid,
    executed: usize,
    reissued: usize,
    workers: usize,
    /// First hard (non-outcome) cell failure, reported after drain.
    first_error: Option<Error>,
    /// Cells abandoned because a worker reported a hard error.
    failed: usize,
    /// Coordinator-side failure (e.g. an unwritable checkpoint): the
    /// sweep cannot meaningfully continue, so workers are drained with
    /// `done` and this error is returned from `serve`.
    fatal: Option<Error>,
    /// Per-cell re-issue counts (worker deaths while holding the lease),
    /// for the [`MAX_REISSUES_PER_CELL`] cap.
    reissue_counts: HashMap<String, usize>,
}

impl State {
    /// No work left and none in flight (hard-failed cells count as
    /// drained — they are reported through `first_error`, not retried
    /// forever), or the coordinator itself failed.
    fn complete(&self) -> bool {
        self.fatal.is_some() || (self.pending.is_empty() && self.leased.is_empty())
    }
}

/// Everything a connection handler needs, one `Arc` hop away.
struct Shared {
    state: Mutex<State>,
    fingerprint: String,
    /// Required worker auth token, when configured.
    auth_token: Option<String>,
    checkpoint: Option<PathBuf>,
    /// Serializes checkpoint render+write+rename: a writer renders the
    /// grid *inside* this lock, so renames land in render order and a
    /// newer on-disk grid is never replaced by an older snapshot (the
    /// hazard the local sweep's authoritative rewrite also guards).
    checkpoint_io: Mutex<()>,
    /// Per-lease deadline, if configured.
    lease_timeout: Option<Duration>,
    /// Live connections by worker id (`try_clone` handles), so the deadline
    /// reaper can shut down the holder of an expired lease — unblocking its
    /// handler thread even on a half-open link.
    streams: Mutex<HashMap<u64, TcpStream>>,
}

/// The coordinator half: plans the sweep, listens, leases, collects.
pub struct Coordinator {
    listener: TcpListener,
    config: HarnessConfig,
    fingerprint: String,
    plan: Vec<CellKey>,
    options: CoordOptions,
}

impl Coordinator {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and plan
    /// the sweep for `figs`. Nothing is leased until [`Coordinator::serve`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: HarnessConfig,
        figs: &[FigureId],
        mn_size: SizeClass,
        options: CoordOptions,
    ) -> Result<Coordinator> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| Error::invalid(format!("coordinator bind: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::invalid(format!("coordinator listener: {e}")))?;
        let plan: Vec<CellKey> = figs
            .iter()
            .flat_map(|&f| figures::plan(f, &config, mn_size))
            .collect();
        let fingerprint = config_fingerprint(&config);
        Ok(Coordinator {
            listener,
            config,
            fingerprint,
            plan,
            options,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| Error::invalid(format!("coordinator addr: {e}")))
    }

    /// The planning configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// Serve until every planned cell has an outcome (or was abandoned by
    /// a hard failure): accept workers, lease cells, stream results into
    /// the grid, re-lease on worker death, checkpoint after every result.
    ///
    /// Like [`Scheduler::run_sweep`](crate::sched::Scheduler::run_sweep),
    /// a hard cell failure does not stop other cells; the first failure is
    /// returned once no work remains, and the checkpoint keeps everything
    /// that did complete.
    pub fn serve(&self) -> Result<CoordOutcome> {
        let mut base = match &self.options.checkpoint {
            Some(path) if path.exists() => {
                let grid = ReportGrid::load(path)?;
                if let Some(have) = grid.fingerprint() {
                    if have != self.fingerprint {
                        return Err(Error::invalid(format!(
                            "checkpoint {} is from a different configuration \
                             ({have} vs {}); delete it or match the flags",
                            path.display(),
                            self.fingerprint
                        )));
                    }
                }
                grid
            }
            _ => ReportGrid::default(),
        };
        base.set_fingerprint(self.fingerprint.clone());
        let pending: VecDeque<CellKey> = self
            .plan
            .iter()
            .filter(|c| !base.contains(c))
            .cloned()
            .collect();
        let restored = self.plan.len() - pending.len();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending,
                leased: HashMap::new(),
                grid: base,
                executed: 0,
                reissued: 0,
                workers: 0,
                first_error: None,
                failed: 0,
                fatal: None,
                reissue_counts: HashMap::new(),
            }),
            fingerprint: self.fingerprint.clone(),
            auth_token: self.options.auth_token.clone(),
            checkpoint: self.options.checkpoint.clone(),
            checkpoint_io: Mutex::new(()),
            lease_timeout: self.options.lease_timeout,
            streams: Mutex::new(HashMap::new()),
        });

        let mut next_worker: u64 = 0;
        let mut handlers = Vec::new();
        while !shared.state.lock().expect("coord state").complete() {
            reap_expired_leases(&shared);
            match self.listener.accept() {
                Ok((stream, _)) => {
                    next_worker += 1;
                    let worker = next_worker;
                    match stream.try_clone() {
                        Ok(clone) => {
                            shared
                                .streams
                                .lock()
                                .expect("streams")
                                .insert(worker, clone);
                        }
                        // Without a clone handle the deadline reaper could
                        // revoke this worker's lease but never unblock its
                        // handler thread — the unkillable-handler hang the
                        // timeout exists to prevent. Refuse the connection
                        // instead (the worker sees EOF and can be
                        // restarted); without a deadline configured the
                        // handle is unused, so the connection is fine.
                        Err(_) if shared.lease_timeout.is_some() => continue,
                        Err(_) => {}
                    }
                    let shared = Arc::clone(&shared);
                    // Dedicated blocking thread per connection (see module
                    // docs). The handle is kept: serve() must not return
                    // until every connected worker has been answered, or a
                    // worker idling between polls would see a reset socket
                    // instead of `done` when the last result lands.
                    handlers.push(std::thread::spawn(move || {
                        let _ = stream.set_nodelay(true);
                        handle_worker(stream, worker, &shared);
                        shared.streams.lock().expect("streams").remove(&worker);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(Error::invalid(format!("coordinator accept: {e}"))),
            }
        }
        // Backlog drain: a worker that connected while the last result was
        // landing may still sit unaccepted in the listen queue. Accept
        // everything queued so those workers get a handshake and a `done`
        // instead of watching the socket die when this process exits.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    next_worker += 1;
                    let worker = next_worker;
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || {
                        let _ = stream.set_nodelay(true);
                        handle_worker(stream, worker, &shared);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // Drain: workers get `done` on their next poll, close, and their
        // handlers exit on the EOF.
        for handle in handlers {
            let _ = handle.join();
        }

        let mut state = shared.state.lock().expect("coord state");
        if let Some(e) = state.fatal.take() {
            return Err(e);
        }
        if let Some(path) = &self.options.checkpoint {
            state.grid.save(path)?;
        }
        if let Some(e) = state.first_error.take() {
            return Err(e);
        }
        Ok(CoordOutcome {
            grid: std::mem::take(&mut state.grid),
            planned: self.plan.len(),
            executed: state.executed,
            restored,
            reissued: state.reissued,
            workers: state.workers,
        })
    }
}

/// Return a revoked/dead worker's cell to the head of the queue — or, past
/// [`MAX_REISSUES_PER_CELL`] losses, abandon it as a hard failure so a
/// worker-killing cell cannot livelock the sweep.
fn requeue_or_abandon(s: &mut State, cell: CellKey, why: &str) {
    let id = cell.id();
    let losses = {
        let count = s.reissue_counts.entry(id.clone()).or_insert(0);
        *count += 1;
        *count
    };
    if losses > MAX_REISSUES_PER_CELL {
        s.failed += 1;
        let err = Error::invalid(format!(
            "cell {id}: abandoned after {losses} lost leases (last: {why})"
        ));
        s.first_error.get_or_insert(err);
    } else {
        // Only an actual re-queue counts as a re-issue.
        s.reissued += 1;
        s.pending.push_front(cell);
    }
}

/// Return a dead worker's outstanding lease to the head of the queue.
fn release_lease(worker: u64, shared: &Shared) {
    let mut s = shared.state.lock().expect("coord state");
    if let Some(lease) = s.leased.remove(&worker) {
        requeue_or_abandon(&mut s, lease.cell, "worker connection ended");
    }
}

/// Deadline sweep: revoke leases held past `lease_timeout`, re-queue their
/// cells, and shut down the holders' connections. Shutdown unblocks a
/// handler thread parked in a read on a half-open link — the gap the
/// EOF-only recovery path cannot close — so `serve()`'s final join stays
/// bounded. The handler then exits through the normal error path and finds
/// no lease left to release.
fn reap_expired_leases(shared: &Shared) {
    let Some(timeout) = shared.lease_timeout else {
        return;
    };
    let now = Instant::now();
    let expired: Vec<u64> = {
        let s = shared.state.lock().expect("coord state");
        s.leased
            .iter()
            .filter(|(_, lease)| now.duration_since(lease.since) > timeout)
            .map(|(&worker, _)| worker)
            .collect()
    };
    for worker in expired {
        let revoked = {
            let mut s = shared.state.lock().expect("coord state");
            // Re-check under the lock: between the snapshot above and now
            // the worker may have returned its result and taken a *fresh*
            // lease — revoking that one would cut a healthy worker and run
            // its cell twice.
            match s.leased.get(&worker) {
                Some(lease) if now.duration_since(lease.since) > timeout => {
                    let lease = s.leased.remove(&worker).expect("present under lock");
                    requeue_or_abandon(&mut s, lease.cell, "lease deadline exceeded");
                    true
                }
                _ => false,
            }
        };
        if revoked {
            if let Some(stream) = shared.streams.lock().expect("streams").remove(&worker) {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// How long a fresh connection gets to complete the `hello` handshake.
/// Bounded so a port-scanner (or a client that connects and goes silent)
/// cannot pin a handler thread forever.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// Read timeout while a worker holds *no* lease. An idle worker polls
/// every [`IDLE_BACKOFF_MS`], so silence this long means the connection
/// is wedged (half-open link, stopped process); closing it keeps the
/// post-completion handler join — and with it `serve()` — bounded. A
/// worker that *does* hold a lease is legitimately silent for the whole
/// cell, so its reads stay unbounded (its death still surfaces as
/// EOF/reset, and re-leasing is the recovery path).
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// One worker connection: handshake, then the lease/result loop. Any I/O
/// or protocol error ends the connection and re-queues the lease.
fn handle_worker(mut stream: TcpStream, worker: u64, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    if let Err(_e) = handshake(&mut stream, worker, shared) {
        return; // reject already sent where possible; nothing leased yet
    }
    loop {
        let leased = shared
            .state
            .lock()
            .expect("coord state")
            .leased
            .contains_key(&worker);
        let _ = stream.set_read_timeout(if leased {
            None
        } else {
            Some(IDLE_READ_TIMEOUT)
        });
        let frame = match read_frame_opt(&mut stream) {
            Ok(Some(frame)) => frame,
            // EOF (worker finished or died), I/O error, or idle timeout:
            // re-queue whatever it held (nothing, for idle timeouts).
            Ok(None) | Err(_) => return release_lease(worker, shared),
        };
        let reply = match apply_frame(&frame, worker, shared) {
            Ok(reply) => reply,
            Err(e) => {
                let mut reject = msg("reject");
                reject.set("reason", Json::from(e.to_string().as_str()));
                let _ = write_frame(&mut stream, &reject);
                return release_lease(worker, shared);
            }
        };
        if write_frame(&mut stream, &reply).is_err() {
            return release_lease(worker, shared);
        }
    }
}

/// Validate `hello` and send `welcome`/`reject`.
fn handshake(stream: &mut TcpStream, worker: u64, shared: &Shared) -> Result<()> {
    let hello = read_frame_opt(stream)?.ok_or_else(|| Error::invalid("closed before hello"))?;
    let reject = |stream: &mut TcpStream, reason: String| -> Result<()> {
        let mut m = msg("reject");
        m.set("reason", Json::from(reason.as_str()));
        let _ = write_frame(stream, &m);
        Err(Error::invalid(reason))
    };
    if msg_type(&hello)? != "hello" {
        return reject(stream, "expected hello".to_string());
    }
    match hello.get("protocol").and_then(Json::as_str) {
        Some(PROTOCOL) => {}
        other => {
            return reject(
                stream,
                format!("protocol mismatch: worker speaks {other:?}, want {PROTOCOL:?}"),
            )
        }
    }
    // Auth runs *before* the fingerprint comparison: an unauthenticated
    // peer must learn nothing about the sweep configuration (the
    // fingerprint reject below echoes scale/seed/budget details). Both
    // sides must agree on the token, including on its absence — a worker
    // waving a token at an auth-less coordinator is as misconfigured as
    // the reverse. The token itself never echoes back in the reason.
    let presented = hello.get("token").and_then(Json::as_str);
    if presented != shared.auth_token.as_deref() {
        let reason = if shared.auth_token.is_some() {
            "auth token mismatch; start the worker with the coordinator's \
             --auth-token (or GENBASE_COORD_TOKEN)"
        } else {
            "auth token mismatch: this coordinator has no --auth-token \
             configured; unset the worker's --auth-token / \
             GENBASE_COORD_TOKEN (or start the coordinator with one)"
        };
        return reject(stream, reason.to_string());
    }
    match hello.get("config").and_then(Json::as_str) {
        Some(have) if have == shared.fingerprint => {}
        have => {
            return reject(
                stream,
                format!(
                    "config fingerprint mismatch ({} vs {}); \
                     start the worker with the coordinator's flags",
                    have.unwrap_or("<missing>"),
                    shared.fingerprint
                ),
            )
        }
    }
    let remaining = {
        let mut s = shared.state.lock().expect("coord state");
        s.workers += 1;
        s.pending.len() + s.leased.len()
    };
    let mut welcome = msg("welcome");
    welcome.set("worker", Json::from(worker));
    welcome.set("remaining", Json::from(remaining));
    write_frame(stream, &welcome)
}

/// Process one post-handshake worker frame and produce the single reply.
fn apply_frame(frame: &Json, worker: u64, shared: &Shared) -> Result<Json> {
    let kind = msg_type(frame)?;
    // Results and failures settle the worker's outstanding lease first.
    if kind == "result" || kind == "failed" {
        let cell = CellKey::from_json(
            frame
                .get("cell")
                .ok_or_else(|| Error::invalid("result missing cell"))?,
        )?;
        let mut s = shared.state.lock().expect("coord state");
        match s.leased.get(&worker) {
            Some(have) if have.cell.id() == cell.id() => {
                s.leased.remove(&worker);
            }
            _ => {
                return Err(Error::invalid(format!(
                    "worker {worker} reported cell {} it does not hold",
                    cell.id()
                )))
            }
        }
        if kind == "failed" {
            let reason = frame
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unknown worker error");
            s.failed += 1;
            let err = Error::invalid(format!("cell {}: {reason}", cell.id()));
            s.first_error.get_or_insert(err);
            drop(s);
        } else {
            let outcome = CellOutcome::from_json(
                frame
                    .get("outcome")
                    .ok_or_else(|| Error::invalid("result missing outcome"))?,
            )?;
            s.grid.insert(&cell, outcome);
            s.executed += 1;
            let skip_checkpoint = s.fatal.is_some();
            drop(s);
            if let (Some(path), false) = (&shared.checkpoint, skip_checkpoint) {
                // The result is accepted either way — the worker did the
                // work and the grid has it. A checkpoint write failure is
                // a *coordinator* failure: record it as fatal (the sweep
                // drains and reports it) instead of blaming the worker.
                if let Err(e) = write_checkpoint(path, worker, shared) {
                    let mut s = shared.state.lock().expect("coord state");
                    s.fatal.get_or_insert(e);
                }
            }
        }
        return next_assignment(worker, shared);
    }
    if kind != "request" {
        return Err(Error::invalid(format!("unexpected frame type {kind:?}")));
    }
    next_assignment(worker, shared)
}

/// Persist the grid. Render-and-rename runs under `checkpoint_io`, so
/// concurrent completions serialize and the on-disk file monotonically
/// gains cells: a snapshot rendered earlier can never rename over one
/// rendered later.
fn write_checkpoint(path: &std::path::Path, worker: u64, shared: &Shared) -> Result<()> {
    let _io = shared.checkpoint_io.lock().expect("checkpoint io");
    let json = shared.state.lock().expect("coord state").grid.to_json();
    save_text(path, &json, worker as usize)
}

/// Lease the next pending cell, or tell the worker to wait / stop.
fn next_assignment(worker: u64, shared: &Shared) -> Result<Json> {
    let mut s = shared.state.lock().expect("coord state");
    if s.fatal.is_some() {
        // The coordinator is going down; drain workers cleanly.
        return Ok(msg("done"));
    }
    if let Some(held) = s.leased.get(&worker) {
        // A `request` while already holding a lease would silently orphan
        // the held cell if we just overwrote it. Protocol error: the
        // handler rejects the connection and release_lease re-queues.
        return Err(Error::invalid(format!(
            "worker {worker} requested work while still holding cell {}",
            held.cell.id()
        )));
    }
    if let Some(cell) = s.pending.pop_front() {
        let mut lease = msg("lease");
        lease.set("cell", cell.to_json());
        s.leased.insert(
            worker,
            Lease {
                cell,
                since: Instant::now(),
            },
        );
        Ok(lease)
    } else if s.leased.is_empty() {
        Ok(msg("done"))
    } else {
        // Another worker's lease may yet fail and re-queue; poll back.
        let mut idle = msg("idle");
        idle.set("backoff_ms", Json::from(IDLE_BACKOFF_MS));
        Ok(idle)
    }
}

/// What one worker process contributed.
#[derive(Debug)]
pub struct WorkerReport {
    /// Cells this worker completed (including `Infinite`/`Unsupported`
    /// outcomes, which are results, not failures).
    pub completed: usize,
    /// Cells whose hard errors were reported to the coordinator.
    pub failed: usize,
}

/// Connect to `addr` (retrying `ConnectionRefused` until `connect_window`
/// elapses, so workers may start before the coordinator) and execute
/// leases until the coordinator says `done`.
///
/// The worker runs one cell at a time under the full `config.threads`
/// kernel budget. `config` must match the coordinator's flags: the
/// handshake enforces the [`config_fingerprint`] and rejects mismatches at
/// connect. To multiplex several cells inside one process, see
/// [`run_worker_jobs`].
pub fn run_worker(
    addr: impl ToSocketAddrs + Clone + Send,
    config: HarnessConfig,
    connect_window: Duration,
) -> Result<WorkerReport> {
    run_worker_jobs(addr, config, connect_window, 1, None)
}

/// [`run_worker`] with `jobs` cells in flight: one worker process opens
/// `jobs` coordinator connections, each leasing and executing cells
/// concurrently under a `config.threads / jobs` kernel budget (the same
/// split the local scheduler's `--jobs` applies), all sharing one dataset
/// pool. The coordinator sees `jobs` logical workers; per-connection
/// leases, deadlines, and death recovery apply unchanged.
///
/// Kernel results are bit-identical across thread budgets, so `jobs` never
/// changes sweep output — only how a many-core worker host is filled.
pub fn run_worker_jobs(
    addr: impl ToSocketAddrs + Clone + Send,
    config: HarnessConfig,
    connect_window: Duration,
    jobs: usize,
    auth_token: Option<String>,
) -> Result<WorkerReport> {
    let jobs = jobs.max(1);
    let threads = (config.threads / jobs).max(1);
    let scheduler = Scheduler::new(config)?;
    let auth = auth_token.as_deref();
    if jobs == 1 {
        return worker_connection(addr, &scheduler, threads, connect_window, auth);
    }
    let scheduler = &scheduler;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    worker_connection(addr, scheduler, threads, connect_window, auth)
                })
            })
            .collect();
        let mut report = WorkerReport {
            completed: 0,
            failed: 0,
        };
        let mut first_err = None;
        for handle in handles {
            match handle.join().expect("worker job thread") {
                Ok(part) => {
                    report.completed += part.completed;
                    report.failed += part.failed;
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    })
}

/// One coordinator connection: handshake, then lease/execute/report until
/// `done`. Cells run through the shared scheduler under `threads` kernels.
fn worker_connection(
    addr: impl ToSocketAddrs + Clone,
    scheduler: &Scheduler,
    threads: usize,
    connect_window: Duration,
    auth_token: Option<&str>,
) -> Result<WorkerReport> {
    let deadline = Instant::now() + connect_window;
    let mut stream = loop {
        match TcpStream::connect(addr.clone()) {
            Ok(stream) => break stream,
            // Refused means the coordinator has not bound yet — the one
            // transient error worth waiting out. Anything else (DNS
            // failure, unroutable address) is permanent: fail fast.
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionRefused
                    && Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(Error::invalid(format!("worker connect: {e}"))),
        }
    };
    let _ = stream.set_nodelay(true);

    let mut hello = msg("hello");
    hello.set("protocol", Json::from(PROTOCOL));
    hello.set(
        "config",
        Json::from(config_fingerprint(scheduler.harness().config()).as_str()),
    );
    if let Some(token) = auth_token {
        hello.set("token", Json::from(token));
    }
    write_frame(&mut stream, &hello)?;
    let welcome = read_frame_opt(&mut stream)?
        .ok_or_else(|| Error::invalid("coordinator closed during handshake"))?;
    match msg_type(&welcome)? {
        "welcome" => {}
        "reject" => {
            let reason = welcome
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified");
            return Err(Error::invalid(format!(
                "coordinator rejected worker: {reason}"
            )));
        }
        other => {
            return Err(Error::invalid(format!(
                "unexpected handshake reply {other:?}"
            )))
        }
    }

    let mut report = WorkerReport {
        completed: 0,
        failed: 0,
    };
    let mut outbound = msg("request");
    loop {
        write_frame(&mut stream, &outbound)?;
        let reply = read_frame_opt(&mut stream)?
            .ok_or_else(|| Error::invalid("coordinator hung up mid-sweep"))?;
        match msg_type(&reply)? {
            "done" => return Ok(report),
            "idle" => {
                let ms = reply
                    .get("backoff_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(IDLE_BACKOFF_MS);
                std::thread::sleep(Duration::from_millis(ms));
                outbound = msg("request");
            }
            "lease" => {
                let cell = CellKey::from_json(
                    reply
                        .get("cell")
                        .ok_or_else(|| Error::invalid("lease missing cell"))?,
                )?;
                match scheduler.run_cell(&cell, threads) {
                    Ok(outcome) => {
                        report.completed += 1;
                        outbound = msg("result");
                        outbound.set("cell", cell.to_json());
                        outbound.set("outcome", outcome.to_json());
                    }
                    Err(e) => {
                        report.failed += 1;
                        outbound = msg("failed");
                        outbound.set("cell", cell.to_json());
                        outbound.set("reason", Json::from(e.to_string().as_str()));
                    }
                }
            }
            "reject" => {
                let reason = reply
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified");
                return Err(Error::invalid(format!(
                    "coordinator rejected worker: {reason}"
                )));
            }
            other => return Err(Error::invalid(format!("unexpected reply {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> HarnessConfig {
        HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            r_mem_bytes: u64::MAX,
            ..HarnessConfig::quick()
        }
        .sim_only()
    }

    fn connect_handshake(addr: SocketAddr, fingerprint: &str) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut hello = msg("hello");
        hello.set("protocol", Json::from(PROTOCOL));
        hello.set("config", Json::from(fingerprint));
        write_frame(&mut stream, &hello).unwrap();
        let welcome = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&welcome).unwrap(), "welcome");
        stream
    }

    #[test]
    fn cell_keys_round_trip_through_json() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        assert!(!coord.plan.is_empty());
        for cell in &coord.plan {
            let back = CellKey::from_json(&cell.to_json()).unwrap();
            assert_eq!(&back, cell);
        }
    }

    #[test]
    fn mismatched_fingerprint_is_rejected_at_connect() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());

        let mut bad_config = quick_config();
        bad_config.scale = 0.024;
        let err = run_worker(addr, bad_config, Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

        // A matching worker still drains the sweep.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
        assert_eq!(outcome.executed, outcome.planned);
    }

    #[test]
    fn stale_protocol_is_rejected_at_connect() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let serve = std::thread::spawn(move || coord.serve());

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut hello = msg("hello");
        hello.set("protocol", Json::from("genbase-coord-v0"));
        hello.set("config", Json::from(fingerprint.as_str()));
        write_frame(&mut stream, &hello).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&reply).unwrap(), "reject");
        drop(stream);

        run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        serve.join().unwrap().unwrap();
    }

    #[test]
    fn unwritable_checkpoint_fails_the_sweep_not_the_worker() {
        let bogus = std::env::temp_dir()
            .join(format!("genbase-coord-noexist-{}", std::process::id()))
            .join("deep")
            .join("ckpt.json"); // parent directories never created
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_checkpoint(&bogus),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());
        // The worker must terminate cleanly (drained with `done`), not be
        // blamed with a protocol reject; the coordinator reports the
        // checkpoint I/O error.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        assert!(report.completed >= 1, "first result triggers the failure");
        let err = serve.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("write"), "{err}");
    }

    #[test]
    fn worker_jobs_multiplexes_leases_in_one_process() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());
        // One process, two connections, split thread budgets.
        let report =
            run_worker_jobs(addr, quick_config(), Duration::from_secs(5), 2, None).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
        assert_eq!(report.failed, 0);
        assert_eq!(outcome.executed, outcome.planned);
        // The coordinator sees each connection as a logical worker.
        assert_eq!(outcome.workers, 2);
    }

    #[test]
    fn expired_lease_is_reissued_and_the_holder_disconnected() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_lease_timeout(Duration::from_millis(300)),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let serve = std::thread::spawn(move || coord.serve());

        // A "wedged" worker: takes a lease, then goes silent while keeping
        // the connection open — the half-open-link shape EOF detection
        // cannot see. The deadline reaper must revoke its lease and shut
        // its socket down.
        let wedged = std::thread::spawn(move || {
            let mut stream = connect_handshake(addr, &fingerprint);
            write_frame(&mut stream, &msg("request")).unwrap();
            let reply = read_frame_opt(&mut stream).unwrap().unwrap();
            assert_eq!(msg_type(&reply).unwrap(), "lease");
            // Never report the result; block until the coordinator cuts us
            // off (shutdown surfaces as EOF or an I/O error).
            assert!(matches!(read_frame_opt(&mut stream), Ok(None) | Err(_)));
        });

        // A healthy worker drains the sweep, including the revoked cell.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        wedged.join().unwrap();
        assert_eq!(outcome.executed, outcome.planned, "every cell ran");
        assert_eq!(report.completed, outcome.planned);
        assert!(outcome.reissued >= 1, "the wedged lease was re-issued");
    }

    #[test]
    fn auth_token_checked_at_handshake() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_auth_token("sweep-secret"),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());

        // No token: clean protocol reject, not a hang or a socket error.
        let err = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("auth token mismatch"), "{err}");

        // Wrong token: same clean reject.
        let err = run_worker_jobs(
            addr,
            quick_config(),
            Duration::from_secs(5),
            1,
            Some("wrong".into()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("auth token mismatch"), "{err}");

        // Matching token drains the sweep.
        let report = run_worker_jobs(
            addr,
            quick_config(),
            Duration::from_secs(5),
            1,
            Some("sweep-secret".into()),
        )
        .unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
    }

    #[test]
    fn tokenless_coordinator_rejects_token_waving_worker() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());
        let err = run_worker_jobs(
            addr,
            quick_config(),
            Duration::from_secs(5),
            1,
            Some("unexpected".into()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("auth token mismatch"), "{err}");
        run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        serve.join().unwrap().unwrap();
    }

    #[test]
    fn result_for_unleased_cell_is_a_protocol_error() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let forged = coord.plan[0].clone();
        let serve = std::thread::spawn(move || coord.serve());

        let mut stream = connect_handshake(addr, &fingerprint);
        let mut result = msg("result");
        result.set("cell", forged.to_json());
        result.set("outcome", CellOutcome::Unsupported.to_json());
        write_frame(&mut stream, &result).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&reply).unwrap(), "reject");
        drop(stream);

        // The forged outcome must not have entered the grid: a real worker
        // still executes every cell.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
    }
}
