//! Distributed sweep coordinator: lease cells to workers over TCP.
//!
//! The sharded scheduler in [`crate::sched`] splits a sweep into static
//! shards that merge by grid *files* — which requires a shared filesystem
//! (or artifact copying) and fixes the partition up front. This module
//! removes both constraints: a **coordinator** process listens on a TCP
//! socket, hands out [`CellKey`] work **leases** to connecting **workers**,
//! and streams each completed cell's outcome back as a length-prefixed
//! `genbase_util::json` message ([`genbase_util::frame`]), folding it into
//! one authoritative [`ReportGrid`]. Workers can live on other machines, or
//! be N local processes; the file-based shard merge remains as the fallback
//! path for batch clusters without connectivity.
//!
//! ## Wire protocol (`genbase-coord-v1`)
//!
//! Every message is one frame: a 4-byte big-endian length prefix followed
//! by compact JSON (see `ARCHITECTURE.md` for the full schema). After a
//! `hello`/`welcome` handshake, the worker strictly alternates: it sends
//! `request`, `result`, `failed`, `progress`, or `leave`, and reads exactly
//! one reply (`lease`, `idle`, `done`, `ack`, or `bye`). A `hello` carrying
//! `role: "status"` opens a read-only monitoring connection instead, which
//! exchanges `status` snapshots (see [`fetch_status`]).
//!
//! - The handshake carries the worker's **config fingerprint**
//!   ([`config_fingerprint`]); a worker built from mismatched flags is
//!   rejected at connect, the same guard the file-merge path applies to
//!   grid files.
//! - **Worker death is a first-class event:** each connection is served by
//!   a dedicated blocking thread, so a dying worker — process kill, crash,
//!   connection reset — surfaces as an I/O error/EOF, and its outstanding
//!   lease is returned to the front of the pending queue for the next
//!   requester. Completed cells are already in the grid (and in the
//!   checkpoint file, when configured), so no work is lost and none
//!   repeats. (A machine that vanishes *without* a TCP reset — power
//!   loss, hard partition — is not detected until its connection errors
//!   unless a `--lease-timeout` deadline is configured.)
//! - **Workers are elastic.** A worker told to stop (SIGTERM, or a
//!   [`WorkerOptions::stop`] flag) departs cleanly: it sends `leave`, the
//!   coordinator re-queues any held cell *without* charging the re-issue
//!   cap, and replies `bye`. A worker that loses its connection mid-cell
//!   (link flap, coordinator restart) reconnects with capped exponential
//!   backoff and re-submits its finished result flagged `resume: true`
//!   rather than recomputing it. When idle workers outnumber pending cells
//!   the coordinator may *rebalance*: the longest-held lease past
//!   [`CoordOptions::rebalance_after`] is revoked and handed to an idle
//!   worker; the original holder's eventual result still lands through the
//!   resume path, and whichever copy arrives first wins (they are
//!   identical under `SimOnly`).
//! - **Intra-cell checkpoints:** long iterative kernels (Lanczos SVD,
//!   Cheng–Church) periodically stream a `progress` snapshot through the
//!   worker's connection; the coordinator stores it in the grid's progress
//!   map (riding the checkpoint file) and delivers it with the next lease
//!   of the same cell, so a re-issued cell resumes mid-iteration
//!   bit-identically instead of starting over.
//! - **Checkpoint reuse:** the coordinator persists the grid through the
//!   same `--checkpoint` JSON file as a local sweep, after every streamed
//!   result. A killed coordinator restarts with only the missing cells
//!   pending, exactly like a killed local sweep.
//!
//! Determinism: the grid is keyed and ordered by cell id, so the rendered
//! figures are independent of which worker ran which cell and of arrival
//! order. Under [`TimingMode::SimOnly`](crate::harness::TimingMode) a
//! coordinated sweep renders **byte-identical** output to the serial
//! single-process run (`tests/coord_distributed.rs` pins this).
//!
//! Connection handlers use dedicated OS threads, not the shared runtime
//! pool: they block on socket reads for the lifetime of a worker, and a
//! capped task pool must never have its slots parked on I/O (the same
//! reasoning as `genbase_cluster::Cluster::run`). Cell *compute* on the
//! worker side still goes through the pool via `ExecOpts.threads`.

use crate::figures;
use crate::harness::HarnessConfig;
use crate::sched::{
    config_fingerprint, save_text, CellKey, CellOutcome, FigureId, ReportGrid, Scheduler,
};
use genbase_datagen::SizeClass;
use genbase_util::frame::{read_frame_opt, write_frame};
use genbase_util::retry::{transient_connect_error, Backoff};
use genbase_util::{faults, shutdown, CellProgress, Error, Json, ProgressHandle, Result};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Protocol identifier sent in every handshake; bump on wire changes.
pub const PROTOCOL: &str = "genbase-coord-v1";

/// Milliseconds a worker waits before re-requesting when the coordinator
/// has no pending cells but other workers still hold leases.
const IDLE_BACKOFF_MS: u64 = 50;

/// How many times one cell may be re-issued after worker deaths before it
/// is abandoned as a hard failure. Bounds the livelock where a cell
/// reliably kills (OOMs, segfaults) every worker that leases it: after
/// this many dead workers the cell is written off through `first_error`
/// and the rest of the sweep completes, mirroring how the local scheduler
/// surfaces an in-process crash instead of retrying forever.
const MAX_REISSUES_PER_CELL: usize = 3;

fn msg(kind: &str) -> Json {
    let mut m = Json::obj();
    m.set("type", Json::from(kind));
    m
}

fn msg_type(m: &Json) -> Result<&str> {
    m.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| Error::invalid("frame missing type"))
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct CoordOptions {
    /// Checkpoint file: loaded (if present) to skip completed cells,
    /// rewritten after every streamed result — the same file format and
    /// fingerprint guard as a local `--checkpoint` sweep.
    pub checkpoint: Option<PathBuf>,
    /// Per-lease deadline. A cell held longer than this is revoked: the
    /// holder's connection is shut down (unblocking a handler wedged on a
    /// half-open link) and the cell re-queued under the usual
    /// `MAX_REISSUES_PER_CELL` cap. `None` (default) keeps the EOF-only
    /// behavior: a wedged-but-open connection holds its lease until TCP
    /// gives up. Size it well above the slowest expected cell — a slow but
    /// healthy worker past the deadline loses its lease and its connection,
    /// and the cell runs again elsewhere.
    pub lease_timeout: Option<Duration>,
    /// Shared auth token (`--auth-token` / `GENBASE_COORD_TOKEN`). When
    /// set, every worker must present the same token in its `hello`;
    /// a missing or different token is a clean protocol reject during the
    /// config-fingerprint handshake. `None` disables the check (workers
    /// presenting a token are then rejected too, so a mismatch is always
    /// loud rather than silently ignored).
    pub auth_token: Option<String>,
    /// Work-stealing deadline. When idle workers outnumber pending cells
    /// and the longest-held lease is older than this, that lease is
    /// revoked (without charging the re-issue cap — the holder did nothing
    /// wrong) and handed to an idle worker; the original holder's
    /// connection is cut, and its eventual result arrives through the
    /// reconnect/resume path. `None` (default) disables rebalancing.
    pub rebalance_after: Option<Duration>,
}

impl CoordOptions {
    /// Checkpoint to (and resume from) `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> CoordOptions {
        self.checkpoint = Some(path.into());
        self
    }

    /// Revoke and re-issue leases held longer than `timeout`.
    pub fn with_lease_timeout(mut self, timeout: Duration) -> CoordOptions {
        self.lease_timeout = Some(timeout);
        self
    }

    /// Require workers to present `token` at the handshake.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> CoordOptions {
        self.auth_token = Some(token.into());
        self
    }

    /// Steal the longest-held lease once idle workers outnumber pending
    /// cells and the lease is older than `after`.
    pub fn with_rebalance_after(mut self, after: Duration) -> CoordOptions {
        self.rebalance_after = Some(after);
        self
    }
}

/// What a coordinated sweep did, plus the grid to render from.
#[derive(Debug)]
pub struct CoordOutcome {
    /// All outcomes (including checkpoint-restored cells).
    pub grid: ReportGrid,
    /// Cells in the plan.
    pub planned: usize,
    /// Cells executed by workers this run.
    pub executed: usize,
    /// Cells restored from the checkpoint.
    pub restored: usize,
    /// Leases re-issued after a worker died mid-cell.
    pub reissued: usize,
    /// Distinct worker connections that completed the handshake.
    pub workers: usize,
    /// Workers that departed cleanly via `leave` (their handed-back cells
    /// are not charged against the re-issue cap).
    pub departed: usize,
    /// Leases revoked by work-stealing rebalance.
    pub rebalanced: usize,
    /// Results accepted through the reconnect/resume path.
    pub resumed: usize,
    /// Human-readable note when the checkpoint was recovered from its
    /// `.bak` after a torn primary, `None` for a clean load.
    pub recovered: Option<String>,
}

/// One outstanding lease: the cell and when it was handed out.
struct Lease {
    cell: CellKey,
    since: Instant,
}

/// Per-worker throughput counters for the `status` snapshot.
struct WorkerStats {
    completed: usize,
    failed: usize,
    connected: Instant,
}

/// Shared lease-scheduler state behind the connection handlers.
struct State {
    pending: VecDeque<CellKey>,
    /// Outstanding lease per live worker connection.
    leased: HashMap<u64, Lease>,
    grid: ReportGrid,
    executed: usize,
    reissued: usize,
    workers: usize,
    /// First hard (non-outcome) cell failure, reported after drain.
    first_error: Option<Error>,
    /// Cells abandoned because a worker reported a hard error.
    failed: usize,
    /// Coordinator-side failure (e.g. an unwritable checkpoint): the
    /// sweep cannot meaningfully continue, so workers are drained with
    /// `done` and this error is returned from `serve`.
    fatal: Option<Error>,
    /// Per-cell re-issue counts (worker deaths while holding the lease),
    /// for the [`MAX_REISSUES_PER_CELL`] cap.
    reissue_counts: HashMap<String, usize>,
    /// Workers currently parked on an `idle` reply — the population the
    /// rebalancer weighs against the pending queue.
    idle: HashSet<u64>,
    /// Clean `leave` departures.
    departed: usize,
    /// Leases revoked by the rebalancer.
    rebalanced: usize,
    /// Results accepted through the resume path.
    resumed: usize,
    /// Per-worker completion counters for the status snapshot.
    worker_stats: HashMap<u64, WorkerStats>,
}

impl State {
    /// No work left and none in flight (hard-failed cells count as
    /// drained — they are reported through `first_error`, not retried
    /// forever), or the coordinator itself failed.
    fn complete(&self) -> bool {
        self.fatal.is_some() || (self.pending.is_empty() && self.leased.is_empty())
    }
}

/// Everything a connection handler needs, one `Arc` hop away.
struct Shared {
    state: Mutex<State>,
    fingerprint: String,
    /// Required worker auth token, when configured.
    auth_token: Option<String>,
    checkpoint: Option<PathBuf>,
    /// Serializes checkpoint render+write+rename: a writer renders the
    /// grid *inside* this lock, so renames land in render order and a
    /// newer on-disk grid is never replaced by an older snapshot (the
    /// hazard the local sweep's authoritative rewrite also guards).
    checkpoint_io: Mutex<()>,
    /// Per-lease deadline, if configured.
    lease_timeout: Option<Duration>,
    /// Work-stealing deadline, if configured.
    rebalance_after: Option<Duration>,
    /// Cells in the full plan (for status snapshots).
    planned: usize,
    /// Cells restored from the checkpoint at startup.
    restored: usize,
    /// Live connections by worker id (`try_clone` handles), so the deadline
    /// reaper can shut down the holder of an expired lease — unblocking its
    /// handler thread even on a half-open link.
    streams: Mutex<HashMap<u64, TcpStream>>,
}

/// The coordinator half: plans the sweep, listens, leases, collects.
pub struct Coordinator {
    listener: TcpListener,
    config: HarnessConfig,
    fingerprint: String,
    plan: Vec<CellKey>,
    options: CoordOptions,
}

impl Coordinator {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and plan
    /// the sweep for `figs`. Nothing is leased until [`Coordinator::serve`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: HarnessConfig,
        figs: &[FigureId],
        mn_size: SizeClass,
        options: CoordOptions,
    ) -> Result<Coordinator> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| Error::invalid(format!("coordinator bind: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::invalid(format!("coordinator listener: {e}")))?;
        let plan: Vec<CellKey> = figs
            .iter()
            .flat_map(|&f| figures::plan(f, &config, mn_size))
            .collect();
        let fingerprint = config_fingerprint(&config);
        Ok(Coordinator {
            listener,
            config,
            fingerprint,
            plan,
            options,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| Error::invalid(format!("coordinator addr: {e}")))
    }

    /// The planning configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// Serve until every planned cell has an outcome (or was abandoned by
    /// a hard failure): accept workers, lease cells, stream results into
    /// the grid, re-lease on worker death, checkpoint after every result.
    ///
    /// Like [`Scheduler::run_sweep`](crate::sched::Scheduler::run_sweep),
    /// a hard cell failure does not stop other cells; the first failure is
    /// returned once no work remains, and the checkpoint keeps everything
    /// that did complete.
    pub fn serve(&self) -> Result<CoordOutcome> {
        let mut recovered = None;
        let mut base = match &self.options.checkpoint {
            Some(path) if path.exists() => {
                let (grid, note) = ReportGrid::load_with_recovery(path)?;
                recovered = note;
                if let Some(have) = grid.fingerprint() {
                    if have != self.fingerprint {
                        return Err(Error::invalid(format!(
                            "checkpoint {} is from a different configuration \
                             ({have} vs {}); delete it or match the flags",
                            path.display(),
                            self.fingerprint
                        )));
                    }
                }
                grid
            }
            _ => ReportGrid::default(),
        };
        base.set_fingerprint(self.fingerprint.clone());
        let pending: VecDeque<CellKey> = self
            .plan
            .iter()
            .filter(|c| !base.contains(c))
            .cloned()
            .collect();
        let restored = self.plan.len() - pending.len();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending,
                leased: HashMap::new(),
                grid: base,
                executed: 0,
                reissued: 0,
                workers: 0,
                first_error: None,
                failed: 0,
                fatal: None,
                reissue_counts: HashMap::new(),
                idle: HashSet::new(),
                departed: 0,
                rebalanced: 0,
                resumed: 0,
                worker_stats: HashMap::new(),
            }),
            fingerprint: self.fingerprint.clone(),
            auth_token: self.options.auth_token.clone(),
            checkpoint: self.options.checkpoint.clone(),
            checkpoint_io: Mutex::new(()),
            lease_timeout: self.options.lease_timeout,
            rebalance_after: self.options.rebalance_after,
            planned: self.plan.len(),
            restored,
            streams: Mutex::new(HashMap::new()),
        });

        let mut next_worker: u64 = 0;
        let mut handlers = Vec::new();
        while !shared.state.lock().expect("coord state").complete() {
            reap_expired_leases(&shared);
            rebalance_leases(&shared);
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if faults::hit("coord.accept").is_err() {
                        // Injected accept failure: the connection is
                        // dropped before a handler exists; the worker
                        // sees EOF and reconnects.
                        continue;
                    }
                    next_worker += 1;
                    let worker = next_worker;
                    match stream.try_clone() {
                        Ok(clone) => {
                            shared
                                .streams
                                .lock()
                                .expect("streams")
                                .insert(worker, clone);
                        }
                        // Without a clone handle the deadline reaper could
                        // revoke this worker's lease but never unblock its
                        // handler thread — the unkillable-handler hang the
                        // timeout exists to prevent. Refuse the connection
                        // instead (the worker sees EOF and can be
                        // restarted); without a deadline configured the
                        // handle is unused, so the connection is fine.
                        Err(_) if shared.lease_timeout.is_some() => continue,
                        Err(_) => {}
                    }
                    let shared = Arc::clone(&shared);
                    // Dedicated blocking thread per connection (see module
                    // docs). The handle is kept: serve() must not return
                    // until every connected worker has been answered, or a
                    // worker idling between polls would see a reset socket
                    // instead of `done` when the last result lands.
                    handlers.push(std::thread::spawn(move || {
                        let _ = stream.set_nodelay(true);
                        handle_worker(stream, worker, &shared);
                        shared.streams.lock().expect("streams").remove(&worker);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(Error::invalid(format!("coordinator accept: {e}"))),
            }
        }
        // Backlog drain: a worker that connected while the last result was
        // landing may still sit unaccepted in the listen queue. Accept
        // everything queued so those workers get a handshake and a `done`
        // instead of watching the socket die when this process exits.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    next_worker += 1;
                    let worker = next_worker;
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || {
                        let _ = stream.set_nodelay(true);
                        handle_worker(stream, worker, &shared);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // Drain: workers get `done` on their next poll, close, and their
        // handlers exit on the EOF.
        for handle in handlers {
            let _ = handle.join();
        }

        let mut state = shared.state.lock().expect("coord state");
        if let Some(e) = state.fatal.take() {
            return Err(e);
        }
        if let Some(path) = &self.options.checkpoint {
            state.grid.save(path)?;
        }
        if let Some(e) = state.first_error.take() {
            return Err(e);
        }
        Ok(CoordOutcome {
            grid: std::mem::take(&mut state.grid),
            planned: self.plan.len(),
            executed: state.executed,
            restored,
            reissued: state.reissued,
            workers: state.workers,
            departed: state.departed,
            rebalanced: state.rebalanced,
            resumed: state.resumed,
            recovered,
        })
    }
}

/// Return a revoked/dead worker's cell to the head of the queue — or, past
/// [`MAX_REISSUES_PER_CELL`] losses, abandon it as a hard failure so a
/// worker-killing cell cannot livelock the sweep.
fn requeue_or_abandon(s: &mut State, cell: CellKey, why: &str) {
    let id = cell.id();
    let losses = {
        let count = s.reissue_counts.entry(id.clone()).or_insert(0);
        *count += 1;
        *count
    };
    if losses > MAX_REISSUES_PER_CELL {
        s.failed += 1;
        let err = Error::invalid(format!(
            "cell {id}: abandoned after {losses} lost leases (last: {why})"
        ));
        s.first_error.get_or_insert(err);
    } else {
        // Only an actual re-queue counts as a re-issue.
        s.reissued += 1;
        s.pending.push_front(cell);
    }
}

/// Return a dead worker's outstanding lease to the head of the queue.
fn release_lease(worker: u64, shared: &Shared) {
    let mut s = shared.state.lock().expect("coord state");
    s.idle.remove(&worker);
    if let Some(lease) = s.leased.remove(&worker) {
        requeue_or_abandon(&mut s, lease.cell, "worker connection ended");
    }
}

/// Work-stealing sweep: when idle workers outnumber pending cells, revoke
/// the longest-held lease past [`CoordOptions::rebalance_after`], re-queue
/// its cell for an idle worker, and cut the holder's connection. The cell
/// is *not* charged against the re-issue cap — its holder is healthy, just
/// slow or over-committed — and the holder's finished result can still
/// land later through the reconnect/resume path (first copy wins).
fn rebalance_leases(shared: &Shared) {
    let Some(after) = shared.rebalance_after else {
        return;
    };
    let now = Instant::now();
    let victim = {
        let mut s = shared.state.lock().expect("coord state");
        if s.fatal.is_some() || s.idle.len() <= s.pending.len() {
            return;
        }
        let longest = s
            .leased
            .iter()
            .max_by_key(|(_, lease)| now.duration_since(lease.since))
            .filter(|(_, lease)| now.duration_since(lease.since) > after)
            .map(|(&worker, _)| worker);
        match longest {
            Some(worker) => {
                let lease = s.leased.remove(&worker).expect("present under lock");
                s.pending.push_front(lease.cell);
                s.rebalanced += 1;
                worker
            }
            None => return,
        }
    };
    if let Some(stream) = shared.streams.lock().expect("streams").remove(&victim) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Deadline sweep: revoke leases held past `lease_timeout`, re-queue their
/// cells, and shut down the holders' connections. Shutdown unblocks a
/// handler thread parked in a read on a half-open link — the gap the
/// EOF-only recovery path cannot close — so `serve()`'s final join stays
/// bounded. The handler then exits through the normal error path and finds
/// no lease left to release.
fn reap_expired_leases(shared: &Shared) {
    let Some(timeout) = shared.lease_timeout else {
        return;
    };
    let now = Instant::now();
    let expired: Vec<u64> = {
        let s = shared.state.lock().expect("coord state");
        s.leased
            .iter()
            .filter(|(_, lease)| now.duration_since(lease.since) > timeout)
            .map(|(&worker, _)| worker)
            .collect()
    };
    for worker in expired {
        let revoked = {
            let mut s = shared.state.lock().expect("coord state");
            // Re-check under the lock: between the snapshot above and now
            // the worker may have returned its result and taken a *fresh*
            // lease — revoking that one would cut a healthy worker and run
            // its cell twice.
            match s.leased.get(&worker) {
                Some(lease) if now.duration_since(lease.since) > timeout => {
                    let lease = s.leased.remove(&worker).expect("present under lock");
                    requeue_or_abandon(&mut s, lease.cell, "lease deadline exceeded");
                    true
                }
                _ => false,
            }
        };
        if revoked {
            if let Some(stream) = shared.streams.lock().expect("streams").remove(&worker) {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// How long a fresh connection gets to complete the `hello` handshake.
/// Bounded so a port-scanner (or a client that connects and goes silent)
/// cannot pin a handler thread forever.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// Read timeout while a worker holds *no* lease. An idle worker polls
/// every [`IDLE_BACKOFF_MS`], so silence this long means the connection
/// is wedged (half-open link, stopped process); closing it keeps the
/// post-completion handler join — and with it `serve()` — bounded. A
/// worker that *does* hold a lease is legitimately silent for the whole
/// cell, so its reads stay unbounded (its death still surfaces as
/// EOF/reset, and re-leasing is the recovery path).
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// What a connection authenticated as.
#[derive(PartialEq, Eq)]
enum Role {
    /// A cell-executing worker (the default).
    Worker,
    /// A read-only monitor: may only exchange `status` frames.
    Status,
}

/// One worker connection: handshake, then the lease/result loop. Any I/O
/// or protocol error ends the connection and re-queues the lease.
fn handle_worker(mut stream: TcpStream, worker: u64, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
    let role = match handshake(&mut stream, worker, shared) {
        Ok(role) => role,
        Err(_e) => return, // reject already sent where possible; nothing leased yet
    };
    loop {
        let leased = shared
            .state
            .lock()
            .expect("coord state")
            .leased
            .contains_key(&worker);
        let _ = stream.set_read_timeout(if leased {
            None
        } else {
            Some(IDLE_READ_TIMEOUT)
        });
        let frame = match faults::hit("coord.read")
            .map_err(|e| Error::invalid(format!("read frame: {e}")))
            .and_then(|_| read_frame_opt(&mut stream))
        {
            Ok(Some(frame)) => frame,
            // EOF (worker finished or died), I/O error, or idle timeout:
            // re-queue whatever it held (nothing, for idle timeouts).
            Ok(None) | Err(_) => return release_lease(worker, shared),
        };
        let applied = match role {
            Role::Worker => apply_frame(&frame, worker, shared),
            // Monitors never touch lease state; anything but a status
            // poll is a protocol error.
            Role::Status => match msg_type(&frame) {
                Ok("status") => Ok(status_snapshot(shared)),
                _ => Err(Error::invalid("status connections may only poll status")),
            },
        };
        let reply = match applied {
            Ok(reply) => reply,
            Err(e) => {
                let mut reject = msg("reject");
                reject.set("reason", Json::from(e.to_string().as_str()));
                let _ = write_frame(&mut stream, &reject);
                return release_lease(worker, shared);
            }
        };
        let closing = matches!(msg_type(&reply), Ok("bye"));
        if faults::hit("coord.write").is_err() || write_frame(&mut stream, &reply).is_err() {
            return release_lease(worker, shared);
        }
        if closing {
            // `leave` already re-queued (or never charged) the lease;
            // nothing left to release.
            return;
        }
    }
}

/// Validate `hello` and send `welcome`/`reject`.
fn handshake(stream: &mut TcpStream, worker: u64, shared: &Shared) -> Result<Role> {
    let hello = read_frame_opt(stream)?.ok_or_else(|| Error::invalid("closed before hello"))?;
    let reject = |stream: &mut TcpStream, reason: String| -> Result<Role> {
        let mut m = msg("reject");
        m.set("reason", Json::from(reason.as_str()));
        let _ = write_frame(stream, &m);
        Err(Error::invalid(reason))
    };
    if msg_type(&hello)? != "hello" {
        return reject(stream, "expected hello".to_string());
    }
    match hello.get("protocol").and_then(Json::as_str) {
        Some(PROTOCOL) => {}
        other => {
            return reject(
                stream,
                format!("protocol mismatch: worker speaks {other:?}, want {PROTOCOL:?}"),
            )
        }
    }
    // Auth runs *before* the fingerprint comparison: an unauthenticated
    // peer must learn nothing about the sweep configuration (the
    // fingerprint reject below echoes scale/seed/budget details). Both
    // sides must agree on the token, including on its absence — a worker
    // waving a token at an auth-less coordinator is as misconfigured as
    // the reverse. The token itself never echoes back in the reason.
    let presented = hello.get("token").and_then(Json::as_str);
    if presented != shared.auth_token.as_deref() {
        let reason = if shared.auth_token.is_some() {
            "auth token mismatch; start the worker with the coordinator's \
             --auth-token (or GENBASE_COORD_TOKEN)"
        } else {
            "auth token mismatch: this coordinator has no --auth-token \
             configured; unset the worker's --auth-token / \
             GENBASE_COORD_TOKEN (or start the coordinator with one)"
        };
        return reject(stream, reason.to_string());
    }
    // Monitors authenticate but skip the fingerprint: a status poll needs
    // no planning flags and must work from hosts that never built a
    // matching config. They are not counted as workers either.
    let role = match hello.get("role").and_then(Json::as_str) {
        None | Some("worker") => Role::Worker,
        Some("status") => Role::Status,
        Some(other) => return reject(stream, format!("unknown hello role {other:?}")),
    };
    if role == Role::Worker {
        match hello.get("config").and_then(Json::as_str) {
            Some(have) if have == shared.fingerprint => {}
            have => {
                return reject(
                    stream,
                    format!(
                        "config fingerprint mismatch ({} vs {}); \
                         start the worker with the coordinator's flags",
                        have.unwrap_or("<missing>"),
                        shared.fingerprint
                    ),
                )
            }
        }
    }
    let remaining = {
        let mut s = shared.state.lock().expect("coord state");
        if role == Role::Worker {
            s.workers += 1;
            s.worker_stats.insert(
                worker,
                WorkerStats {
                    completed: 0,
                    failed: 0,
                    connected: Instant::now(),
                },
            );
        }
        s.pending.len() + s.leased.len()
    };
    let mut welcome = msg("welcome");
    welcome.set("worker", Json::from(worker));
    welcome.set("remaining", Json::from(remaining));
    write_frame(stream, &welcome)?;
    Ok(role)
}

/// Process one post-handshake worker frame and produce the single reply.
fn apply_frame(frame: &Json, worker: u64, shared: &Shared) -> Result<Json> {
    let kind = msg_type(frame)?;
    // Results and failures settle the worker's outstanding lease first.
    if kind == "result" || kind == "failed" {
        let cell = CellKey::from_json(
            frame
                .get("cell")
                .ok_or_else(|| Error::invalid("result missing cell"))?,
        )?;
        let resume = matches!(frame.get("resume"), Some(&Json::Bool(true)));
        let mut s = shared.state.lock().expect("coord state");
        let held = match s.leased.get(&worker) {
            Some(have) if have.cell.id() == cell.id() => {
                s.leased.remove(&worker);
                true
            }
            _ => false,
        };
        if !held {
            // Without a `resume` flag, an unleased report is a forged (or
            // hopelessly confused) message and stays a protocol error.
            if !resume {
                return Err(Error::invalid(format!(
                    "worker {worker} reported cell {} it does not hold",
                    cell.id()
                )));
            }
            // A resumed report: the worker finished a cell whose lease it
            // lost to a reconnect, rebalance, or deadline. Reconcile
            // against where the cell is now.
            if s.grid.contains(&cell) {
                // Someone already settled it (identical under SimOnly);
                // drop the duplicate and move on.
                drop(s);
                return next_assignment(worker, shared);
            }
            if let Some(i) = s.pending.iter().position(|c| c.id() == cell.id()) {
                s.pending.remove(i);
            } else if s.leased.values().any(|l| l.cell.id() == cell.id()) {
                // Leased to another worker. A finished result beats an
                // in-flight recompute, so accept it (the other copy
                // dedups when it lands); a resumed *failure* must not
                // pre-empt a run that may yet succeed, so drop it.
                if kind == "failed" {
                    drop(s);
                    return next_assignment(worker, shared);
                }
            } else {
                return Err(Error::invalid(format!(
                    "worker {worker} resumed cell {} unknown to this sweep",
                    cell.id()
                )));
            }
            s.resumed += 1;
        }
        if kind == "failed" {
            let reason = frame
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unknown worker error");
            s.failed += 1;
            if let Some(stats) = s.worker_stats.get_mut(&worker) {
                stats.failed += 1;
            }
            let err = Error::invalid(format!("cell {}: {reason}", cell.id()));
            s.first_error.get_or_insert(err);
            drop(s);
        } else {
            let outcome = CellOutcome::from_json(
                frame
                    .get("outcome")
                    .ok_or_else(|| Error::invalid("result missing outcome"))?,
            )?;
            // A rebalanced cell can land twice; only the first (distinct)
            // copy counts as executed.
            if !s.grid.contains(&cell) {
                s.executed += 1;
            }
            s.grid.insert(&cell, outcome);
            if let Some(stats) = s.worker_stats.get_mut(&worker) {
                stats.completed += 1;
            }
            let skip_checkpoint = s.fatal.is_some();
            drop(s);
            if let (Some(path), false) = (&shared.checkpoint, skip_checkpoint) {
                // The result is accepted either way — the worker did the
                // work and the grid has it. A checkpoint write failure is
                // a *coordinator* failure: record it as fatal (the sweep
                // drains and reports it) instead of blaming the worker.
                if let Err(e) = write_checkpoint(path, worker, shared) {
                    let mut s = shared.state.lock().expect("coord state");
                    s.fatal.get_or_insert(e);
                }
            }
        }
        return next_assignment(worker, shared);
    }
    if kind == "progress" {
        // An intra-cell snapshot from the lease holder: store it in the
        // grid's progress map (riding the checkpoint), so a re-issue of
        // this cell resumes mid-iteration.
        let cell = CellKey::from_json(
            frame
                .get("cell")
                .ok_or_else(|| Error::invalid("progress missing cell"))?,
        )?;
        let kernel = frame
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::invalid("progress missing kernel"))?
            .to_string();
        let state = frame
            .get("state")
            .ok_or_else(|| Error::invalid("progress missing state"))?
            .clone();
        let mut s = shared.state.lock().expect("coord state");
        match s.leased.get(&worker) {
            Some(have) if have.cell.id() == cell.id() => {}
            _ => {
                return Err(Error::invalid(format!(
                    "worker {worker} sent progress for cell {} it does not hold",
                    cell.id()
                )))
            }
        }
        s.grid.set_progress(&cell.id(), &kernel, state);
        let skip_checkpoint = s.fatal.is_some();
        drop(s);
        if let (Some(path), false) = (&shared.checkpoint, skip_checkpoint) {
            if let Err(e) = write_checkpoint(path, worker, shared) {
                let mut s = shared.state.lock().expect("coord state");
                s.fatal.get_or_insert(e);
            }
        }
        return Ok(msg("ack"));
    }
    if kind == "leave" {
        // Clean departure: hand back any held cell at the front of the
        // queue without charging the re-issue cap — the worker is healthy,
        // it was *asked* to stop.
        let mut s = shared.state.lock().expect("coord state");
        s.idle.remove(&worker);
        s.departed += 1;
        if let Some(lease) = s.leased.remove(&worker) {
            s.pending.push_front(lease.cell);
        }
        return Ok(msg("bye"));
    }
    if kind == "status" {
        return Ok(status_snapshot(shared));
    }
    if kind != "request" {
        return Err(Error::invalid(format!("unexpected frame type {kind:?}")));
    }
    next_assignment(worker, shared)
}

/// Render the live sweep state as a `status` frame.
fn status_snapshot(shared: &Shared) -> Json {
    let s = shared.state.lock().expect("coord state");
    let mut m = msg("status");
    m.set("planned", Json::from(shared.planned));
    m.set("restored", Json::from(shared.restored));
    m.set("pending", Json::from(s.pending.len()));
    m.set("leased", Json::from(s.leased.len()));
    m.set("done", Json::from(s.grid.len()));
    m.set("failed", Json::from(s.failed));
    m.set("executed", Json::from(s.executed));
    m.set("reissued", Json::from(s.reissued));
    m.set("departed", Json::from(s.departed));
    m.set("rebalanced", Json::from(s.rebalanced));
    m.set("resumed", Json::from(s.resumed));
    m.set("workers", Json::from(s.workers));
    let now = Instant::now();
    let mut by_worker: Vec<(&u64, &Lease)> = s.leased.iter().collect();
    by_worker.sort_by_key(|(&worker, _)| worker);
    let leases: Vec<Json> = by_worker
        .into_iter()
        .map(|(&worker, lease)| {
            let mut l = Json::obj();
            l.set("worker", Json::from(worker));
            l.set("cell", Json::from(lease.cell.id().as_str()));
            l.set(
                "held_secs",
                Json::from(now.duration_since(lease.since).as_secs_f64()),
            );
            l
        })
        .collect();
    m.set("leases", Json::Arr(leases));
    let mut by_worker: Vec<(&u64, &WorkerStats)> = s.worker_stats.iter().collect();
    by_worker.sort_by_key(|(&worker, _)| worker);
    let throughput: Vec<Json> = by_worker
        .into_iter()
        .map(|(&worker, stats)| {
            let mut t = Json::obj();
            t.set("worker", Json::from(worker));
            t.set("completed", Json::from(stats.completed));
            t.set("failed", Json::from(stats.failed));
            let secs = now.duration_since(stats.connected).as_secs_f64();
            t.set(
                "cells_per_sec",
                Json::from(if secs > 0.0 {
                    stats.completed as f64 / secs
                } else {
                    0.0
                }),
            );
            t
        })
        .collect();
    m.set("throughput", Json::Arr(throughput));
    m
}

/// Persist the grid. Render-and-rename runs under `checkpoint_io`, so
/// concurrent completions serialize and the on-disk file monotonically
/// gains cells: a snapshot rendered earlier can never rename over one
/// rendered later.
fn write_checkpoint(path: &std::path::Path, worker: u64, shared: &Shared) -> Result<()> {
    let _io = shared.checkpoint_io.lock().expect("checkpoint io");
    let json = shared.state.lock().expect("coord state").grid.to_json();
    save_text(path, &json, worker as usize)
}

/// Lease the next pending cell, or tell the worker to wait / stop.
fn next_assignment(worker: u64, shared: &Shared) -> Result<Json> {
    let mut s = shared.state.lock().expect("coord state");
    if s.fatal.is_some() {
        // The coordinator is going down; drain workers cleanly.
        return Ok(msg("done"));
    }
    if let Some(held) = s.leased.get(&worker) {
        // A `request` while already holding a lease would silently orphan
        // the held cell if we just overwrote it. Protocol error: the
        // handler rejects the connection and release_lease re-queues.
        return Err(Error::invalid(format!(
            "worker {worker} requested work while still holding cell {}",
            held.cell.id()
        )));
    }
    if let Some(cell) = s.pending.pop_front() {
        s.idle.remove(&worker);
        let mut lease = msg("lease");
        lease.set("cell", cell.to_json());
        // Ship any intra-cell snapshot a previous holder streamed, so the
        // new holder resumes mid-iteration instead of starting over.
        if let Some(progress) = s.grid.progress_for(&cell.id()) {
            lease.set("progress", progress.clone());
        }
        s.leased.insert(
            worker,
            Lease {
                cell,
                since: Instant::now(),
            },
        );
        Ok(lease)
    } else if s.leased.is_empty() {
        s.idle.remove(&worker);
        Ok(msg("done"))
    } else {
        // Another worker's lease may yet fail and re-queue; poll back.
        // Parking in the idle set makes this worker visible to the
        // rebalancer as spare capacity.
        s.idle.insert(worker);
        let mut idle = msg("idle");
        idle.set("backoff_ms", Json::from(IDLE_BACKOFF_MS));
        Ok(idle)
    }
}

/// What one worker process contributed.
#[derive(Debug)]
pub struct WorkerReport {
    /// Cells this worker completed (including `Infinite`/`Unsupported`
    /// outcomes, which are results, not failures).
    pub completed: usize,
    /// Cells whose hard errors were reported to the coordinator.
    pub failed: usize,
}

/// How a worker behaves beyond the config it computes under.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Cells in flight (coordinator connections) within this process;
    /// `0` is treated as `1`.
    pub jobs: usize,
    /// Auth token presented in the handshake.
    pub auth_token: Option<String>,
    /// Cooperative stop flag. When it (or the process-wide SIGTERM flag,
    /// [`genbase_util::shutdown::requested`]) turns true, the worker leases
    /// nothing new: it hands back any fresh lease with `leave` — which the
    /// coordinator re-queues without charging the re-issue cap — and
    /// returns cleanly after `bye`.
    pub stop: Option<Arc<AtomicBool>>,
}

/// How many times one connection may be rebuilt after a mid-session I/O
/// failure before the worker gives up. Each reconnect re-presents the
/// handshake and re-submits any computed-but-unacknowledged result with
/// `resume: true`, so no compute is wasted on a link flap or coordinator
/// restart.
const RECONNECT_ATTEMPTS: u32 = 5;

/// Connect to `addr` (retrying transient connect errors — refused, reset,
/// timed out, interrupted — until `connect_window` elapses, so workers may
/// start before the coordinator) and execute leases until the coordinator
/// says `done`.
///
/// The worker runs one cell at a time under the full `config.threads`
/// kernel budget. `config` must match the coordinator's flags: the
/// handshake enforces the [`config_fingerprint`] and rejects mismatches at
/// connect. To multiplex several cells inside one process, see
/// [`run_worker_jobs`].
pub fn run_worker(
    addr: impl ToSocketAddrs + Clone + Send,
    config: HarnessConfig,
    connect_window: Duration,
) -> Result<WorkerReport> {
    run_worker_jobs(addr, config, connect_window, 1, None)
}

/// [`run_worker`] with `jobs` cells in flight: one worker process opens
/// `jobs` coordinator connections, each leasing and executing cells
/// concurrently under a `config.threads / jobs` kernel budget (the same
/// split the local scheduler's `--jobs` applies), all sharing one dataset
/// pool. The coordinator sees `jobs` logical workers; per-connection
/// leases, deadlines, and death recovery apply unchanged.
///
/// Kernel results are bit-identical across thread budgets, so `jobs` never
/// changes sweep output — only how a many-core worker host is filled.
pub fn run_worker_jobs(
    addr: impl ToSocketAddrs + Clone + Send,
    config: HarnessConfig,
    connect_window: Duration,
    jobs: usize,
    auth_token: Option<String>,
) -> Result<WorkerReport> {
    run_worker_with(
        addr,
        config,
        connect_window,
        WorkerOptions {
            jobs,
            auth_token,
            stop: None,
        },
    )
}

/// [`run_worker`] with full [`WorkerOptions`] (job multiplexing, auth,
/// cooperative stop).
pub fn run_worker_with(
    addr: impl ToSocketAddrs + Clone + Send,
    config: HarnessConfig,
    connect_window: Duration,
    options: WorkerOptions,
) -> Result<WorkerReport> {
    let jobs = options.jobs.max(1);
    let threads = (config.threads / jobs).max(1);
    let scheduler = Scheduler::new(config)?;
    let auth = options.auth_token.as_deref();
    let stop = options.stop.as_ref();
    if jobs == 1 {
        return worker_connection(addr, &scheduler, threads, connect_window, auth, stop);
    }
    let scheduler = &scheduler;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    worker_connection(addr, scheduler, threads, connect_window, auth, stop)
                })
            })
            .collect();
        let mut report = WorkerReport {
            completed: 0,
            failed: 0,
        };
        let mut first_err = None;
        for handle in handles {
            match handle.join().expect("worker job thread") {
                Ok(part) => {
                    report.completed += part.completed;
                    report.failed += part.failed;
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    })
}

/// Whether the worker was asked to wind down (explicit flag or SIGTERM).
fn stop_requested(stop: Option<&Arc<AtomicBool>>) -> bool {
    shutdown::requested() || stop.is_some_and(|flag| flag.load(Ordering::Relaxed))
}

/// How one session (connection lifetime) ended, when not cleanly.
enum SessionEnd {
    /// Protocol-level failure (reject, malformed reply) or simulated
    /// worker death: give up, do not reconnect.
    Fatal(Error),
    /// Transport failure: reconnect and resume.
    Io(Error),
}

/// One logical worker: a reconnecting session loop around
/// [`worker_session`]. A session that dies on transport I/O is rebuilt
/// (capped attempts, exponential backoff with jitter) and the in-flight
/// result — compute already paid for — is re-submitted with
/// `resume: true` instead of recomputed.
fn worker_connection(
    addr: impl ToSocketAddrs + Clone,
    scheduler: &Scheduler,
    threads: usize,
    connect_window: Duration,
    auth_token: Option<&str>,
    stop: Option<&Arc<AtomicBool>>,
) -> Result<WorkerReport> {
    let mut report = WorkerReport {
        completed: 0,
        failed: 0,
    };
    let mut backoff = Backoff::new(100, 5_000, faults::plan_seed().unwrap_or(0x57ee1));
    let mut reconnects: u32 = 0;
    // A computed `result`/`failed` whose acknowledgement never arrived.
    let mut pending_send: Option<Json> = None;
    loop {
        let mut stream = connect_once(addr.clone(), connect_window, &mut backoff)?;
        match worker_session(
            &mut stream,
            scheduler,
            threads,
            auth_token,
            stop,
            &mut report,
            &mut pending_send,
        ) {
            Ok(()) => return Ok(report),
            Err(SessionEnd::Fatal(e)) => return Err(e),
            Err(SessionEnd::Io(_)) if reconnects < RECONNECT_ATTEMPTS => {
                reconnects += 1;
                std::thread::sleep(backoff.delay(reconnects - 1));
            }
            Err(SessionEnd::Io(e)) => return Err(e),
        }
    }
}

/// Dial the coordinator, retrying transient connect errors (refused —
/// the coordinator has not bound yet — reset, timed out, interrupted)
/// until `connect_window` elapses. Anything else (DNS failure, unroutable
/// address) is permanent: fail fast.
fn connect_once(
    addr: impl ToSocketAddrs + Clone,
    connect_window: Duration,
    backoff: &mut Backoff,
) -> Result<TcpStream> {
    let deadline = Instant::now() + connect_window;
    let mut attempt: u32 = 0;
    loop {
        let dialed = match faults::hit("worker.connect") {
            Ok(()) => TcpStream::connect(addr.clone()),
            Err(e) => Err(e),
        };
        match dialed {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) if transient_connect_error(&e) && Instant::now() < deadline => {
                std::thread::sleep(backoff.delay(attempt));
                attempt += 1;
            }
            Err(e) => return Err(Error::invalid(format!("worker connect: {e}"))),
        }
    }
}

/// Handshake on a fresh connection, then the strict request/reply
/// alternation until `done` (Ok), a clean `bye`, or a session-ending
/// error. `pending_send` carries an unacknowledged report across
/// reconnects.
fn worker_session(
    stream: &mut TcpStream,
    scheduler: &Scheduler,
    threads: usize,
    auth_token: Option<&str>,
    stop: Option<&Arc<AtomicBool>>,
    report: &mut WorkerReport,
    pending_send: &mut Option<Json>,
) -> std::result::Result<(), SessionEnd> {
    let mut hello = msg("hello");
    hello.set("protocol", Json::from(PROTOCOL));
    hello.set(
        "config",
        Json::from(config_fingerprint(scheduler.harness().config()).as_str()),
    );
    if let Some(token) = auth_token {
        hello.set("token", Json::from(token));
    }
    // Handshake failures are fatal: a rejecting coordinator will reject
    // the retry too, and a coordinator that dies this early has nothing
    // of ours worth resuming.
    write_frame(stream, &hello).map_err(SessionEnd::Fatal)?;
    let welcome = read_frame_opt(stream)
        .map_err(SessionEnd::Fatal)?
        .ok_or_else(|| SessionEnd::Fatal(Error::invalid("coordinator closed during handshake")))?;
    match msg_type(&welcome).map_err(SessionEnd::Fatal)? {
        "welcome" => {}
        "reject" => {
            let reason = welcome
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified");
            return Err(SessionEnd::Fatal(Error::invalid(format!(
                "coordinator rejected worker: {reason}"
            ))));
        }
        other => {
            return Err(SessionEnd::Fatal(Error::invalid(format!(
                "unexpected handshake reply {other:?}"
            ))))
        }
    }

    let mut outbound = match pending_send.take() {
        // Re-submit the report that was in flight when the last session
        // died. The flag tells the coordinator this settles compute from
        // a lease the reconnect invalidated.
        Some(mut report) => {
            report.set("resume", Json::Bool(true));
            report
        }
        None => msg("request"),
    };
    loop {
        let is_report = matches!(msg_type(&outbound), Ok("result") | Ok("failed"));
        if stop_requested(stop) && !is_report {
            outbound = msg("leave");
        }
        let wrote = match faults::hit("worker.write") {
            Ok(()) if is_report => match faults::hit("worker.result") {
                Ok(()) => write_frame(stream, &outbound),
                Err(e) => Err(Error::invalid(format!("write frame: {e}"))),
            },
            Ok(()) => write_frame(stream, &outbound),
            Err(e) => Err(Error::invalid(format!("write frame: {e}"))),
        };
        if let Err(e) = wrote {
            if is_report {
                *pending_send = Some(outbound);
            }
            return Err(SessionEnd::Io(e));
        }
        let reply = match faults::hit("worker.read")
            .map_err(|e| Error::invalid(format!("read frame: {e}")))
            .and_then(|_| read_frame_opt(stream))
        {
            Ok(Some(reply)) => reply,
            Ok(None) => {
                if is_report {
                    *pending_send = Some(outbound);
                }
                return Err(SessionEnd::Io(Error::invalid(
                    "coordinator hung up mid-sweep",
                )));
            }
            Err(e) => {
                if is_report {
                    *pending_send = Some(outbound);
                }
                return Err(SessionEnd::Io(e));
            }
        };
        match msg_type(&reply).map_err(SessionEnd::Fatal)? {
            "done" => return Ok(()),
            "bye" => return Ok(()),
            "idle" => {
                let ms = reply
                    .get("backoff_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(IDLE_BACKOFF_MS);
                std::thread::sleep(Duration::from_millis(ms));
                outbound = msg("request");
            }
            "lease" => {
                let cell = CellKey::from_json(
                    reply
                        .get("cell")
                        .ok_or_else(|| Error::invalid("lease missing cell"))
                        .map_err(SessionEnd::Fatal)?,
                )
                .map_err(SessionEnd::Fatal)?;
                if stop_requested(stop) {
                    // Wind down: hand the fresh lease straight back.
                    outbound = msg("leave");
                    continue;
                }
                if let Err(e) = faults::hit("worker.cell") {
                    // Simulated crash between lease and compute; the
                    // coordinator re-issues through the EOF path.
                    return Err(SessionEnd::Fatal(Error::invalid(format!(
                        "worker crash: {e}"
                    ))));
                }
                let progress = Arc::new(CoordProgress::new(
                    stream
                        .try_clone()
                        .map_err(|e| SessionEnd::Fatal(Error::invalid(format!("clone: {e}"))))?,
                    cell.to_json(),
                    reply.get("progress").cloned(),
                ));
                let handle = ProgressHandle::new(progress.clone());
                match scheduler.run_cell_with_progress(&cell, threads, Some(handle)) {
                    Ok(outcome) => {
                        report.completed += 1;
                        outbound = msg("result");
                        outbound.set("cell", cell.to_json());
                        outbound.set("outcome", outcome.to_json());
                    }
                    Err(_) if progress.killed() => {
                        // An injected `worker.progress` fault killed this
                        // logical worker mid-cell: die like one — no
                        // failure report, no reconnect. The coordinator
                        // sees EOF and re-issues the cell.
                        return Err(SessionEnd::Fatal(Error::invalid(
                            "worker killed by injected fault mid-cell",
                        )));
                    }
                    Err(e) => {
                        report.failed += 1;
                        outbound = msg("failed");
                        outbound.set("cell", cell.to_json());
                        outbound.set("reason", Json::from(e.to_string().as_str()));
                    }
                }
            }
            "reject" => {
                let reason = reply
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified");
                return Err(SessionEnd::Fatal(Error::invalid(format!(
                    "coordinator rejected worker: {reason}"
                ))));
            }
            other => {
                return Err(SessionEnd::Fatal(Error::invalid(format!(
                    "unexpected reply {other:?}"
                ))))
            }
        }
    }
}

/// Worker-side [`CellProgress`] sink: streams kernel snapshots to the
/// coordinator as `progress` frames over the session's socket (safe
/// because the kernel runs on the session thread — saves happen strictly
/// between the lease reply and the result send). Serving `restore` replays
/// the snapshot the coordinator shipped with the lease.
struct CoordProgress {
    stream: Mutex<TcpStream>,
    cell: Json,
    /// The `{kernel → state}` object delivered with the lease, if any.
    restored: Option<Json>,
    /// The link died mid-save; further saves are skipped (best-effort) and
    /// the result send will trigger the reconnect/resume path.
    dead: AtomicBool,
    /// An injected `worker.progress` fault fired: this logical worker is
    /// simulating death, and the session must not report or reconnect.
    killed: AtomicBool,
}

impl CoordProgress {
    fn new(stream: TcpStream, cell: Json, restored: Option<Json>) -> CoordProgress {
        CoordProgress {
            stream: Mutex::new(stream),
            cell,
            restored,
            dead: AtomicBool::new(false),
            killed: AtomicBool::new(false),
        }
    }

    fn killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }
}

impl CellProgress for CoordProgress {
    fn restore(&self, kernel: &str) -> Option<Json> {
        self.restored.as_ref().and_then(|r| r.get(kernel)).cloned()
    }

    fn save(&self, kernel: &str, state: &Json) -> Result<()> {
        if self.dead.load(Ordering::Relaxed) {
            return Ok(());
        }
        if let Err(e) = faults::hit("worker.progress") {
            // Simulated worker death mid-cell: abort the kernel (the save
            // error propagates) and cut the socket so the coordinator
            // sees EOF and re-issues the cell with this very snapshot.
            self.killed.store(true, Ordering::Relaxed);
            let _ = self
                .stream
                .lock()
                .expect("progress stream")
                .shutdown(std::net::Shutdown::Both);
            return Err(Error::invalid(format!("progress: {e}")));
        }
        let mut frame = msg("progress");
        frame.set("cell", self.cell.clone());
        frame.set("kernel", Json::from(kernel));
        frame.set("state", state.clone());
        let mut stream = self.stream.lock().expect("progress stream");
        let acked = write_frame(&mut *stream, &frame)
            .and_then(|_| read_frame_opt(&mut *stream))
            .map(|reply| matches!(reply.as_ref().map(msg_type), Some(Ok("ack"))));
        if !matches!(acked, Ok(true)) {
            // Best-effort: checkpointing must never fail a healthy cell.
            // Remember the link is gone so later saves stop trying.
            self.dead.store(true, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Fetch a live status snapshot from a serving coordinator: connect
/// (retrying transient errors until `connect_window` elapses), handshake
/// with `role: "status"`, poll once, and return the snapshot object.
pub fn fetch_status(
    addr: impl ToSocketAddrs + Clone,
    auth_token: Option<&str>,
    connect_window: Duration,
) -> Result<Json> {
    let mut backoff = Backoff::new(100, 5_000, faults::plan_seed().unwrap_or(0x57a7));
    let mut stream = connect_once(addr, connect_window, &mut backoff)?;
    let mut hello = msg("hello");
    hello.set("protocol", Json::from(PROTOCOL));
    hello.set("role", Json::from("status"));
    if let Some(token) = auth_token {
        hello.set("token", Json::from(token));
    }
    write_frame(&mut stream, &hello)?;
    let welcome = read_frame_opt(&mut stream)?
        .ok_or_else(|| Error::invalid("coordinator closed during handshake"))?;
    match msg_type(&welcome)? {
        "welcome" => {}
        "reject" => {
            let reason = welcome
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified");
            return Err(Error::invalid(format!(
                "coordinator rejected status poll: {reason}"
            )));
        }
        other => {
            return Err(Error::invalid(format!(
                "unexpected handshake reply {other:?}"
            )))
        }
    }
    write_frame(&mut stream, &msg("status"))?;
    let reply = read_frame_opt(&mut stream)?
        .ok_or_else(|| Error::invalid("coordinator closed before status reply"))?;
    match msg_type(&reply)? {
        "status" => Ok(reply),
        other => Err(Error::invalid(format!("unexpected status reply {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> HarnessConfig {
        HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            r_mem_bytes: u64::MAX,
            ..HarnessConfig::quick()
        }
        .sim_only()
    }

    fn connect_handshake(addr: SocketAddr, fingerprint: &str) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut hello = msg("hello");
        hello.set("protocol", Json::from(PROTOCOL));
        hello.set("config", Json::from(fingerprint));
        write_frame(&mut stream, &hello).unwrap();
        let welcome = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&welcome).unwrap(), "welcome");
        stream
    }

    #[test]
    fn cell_keys_round_trip_through_json() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        assert!(!coord.plan.is_empty());
        for cell in &coord.plan {
            let back = CellKey::from_json(&cell.to_json()).unwrap();
            assert_eq!(&back, cell);
        }
    }

    #[test]
    fn mismatched_fingerprint_is_rejected_at_connect() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());

        let mut bad_config = quick_config();
        bad_config.scale = 0.024;
        let err = run_worker(addr, bad_config, Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

        // A matching worker still drains the sweep.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
        assert_eq!(outcome.executed, outcome.planned);
    }

    #[test]
    fn stale_protocol_is_rejected_at_connect() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let serve = std::thread::spawn(move || coord.serve());

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut hello = msg("hello");
        hello.set("protocol", Json::from("genbase-coord-v0"));
        hello.set("config", Json::from(fingerprint.as_str()));
        write_frame(&mut stream, &hello).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&reply).unwrap(), "reject");
        drop(stream);

        run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        serve.join().unwrap().unwrap();
    }

    #[test]
    fn unwritable_checkpoint_fails_the_sweep_not_the_worker() {
        let bogus = std::env::temp_dir()
            .join(format!("genbase-coord-noexist-{}", std::process::id()))
            .join("deep")
            .join("ckpt.json"); // parent directories never created
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_checkpoint(&bogus),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());
        // The worker must terminate cleanly (drained with `done`), not be
        // blamed with a protocol reject; the coordinator reports the
        // checkpoint I/O error.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        assert!(report.completed >= 1, "first result triggers the failure");
        let err = serve.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("write"), "{err}");
    }

    #[test]
    fn worker_jobs_multiplexes_leases_in_one_process() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());
        // One process, two connections, split thread budgets.
        let report =
            run_worker_jobs(addr, quick_config(), Duration::from_secs(5), 2, None).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
        assert_eq!(report.failed, 0);
        assert_eq!(outcome.executed, outcome.planned);
        // The coordinator sees each connection as a logical worker.
        assert_eq!(outcome.workers, 2);
    }

    #[test]
    fn expired_lease_is_reissued_and_the_holder_disconnected() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_lease_timeout(Duration::from_millis(300)),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let serve = std::thread::spawn(move || coord.serve());

        // A "wedged" worker: takes a lease, then goes silent while keeping
        // the connection open — the half-open-link shape EOF detection
        // cannot see. The deadline reaper must revoke its lease and shut
        // its socket down.
        let wedged = std::thread::spawn(move || {
            let mut stream = connect_handshake(addr, &fingerprint);
            write_frame(&mut stream, &msg("request")).unwrap();
            let reply = read_frame_opt(&mut stream).unwrap().unwrap();
            assert_eq!(msg_type(&reply).unwrap(), "lease");
            // Never report the result; block until the coordinator cuts us
            // off (shutdown surfaces as EOF or an I/O error).
            assert!(matches!(read_frame_opt(&mut stream), Ok(None) | Err(_)));
        });

        // A healthy worker drains the sweep, including the revoked cell.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        wedged.join().unwrap();
        assert_eq!(outcome.executed, outcome.planned, "every cell ran");
        assert_eq!(report.completed, outcome.planned);
        assert!(outcome.reissued >= 1, "the wedged lease was re-issued");
    }

    #[test]
    fn auth_token_checked_at_handshake() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_auth_token("sweep-secret"),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());

        // No token: clean protocol reject, not a hang or a socket error.
        let err = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("auth token mismatch"), "{err}");

        // Wrong token: same clean reject.
        let err = run_worker_jobs(
            addr,
            quick_config(),
            Duration::from_secs(5),
            1,
            Some("wrong".into()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("auth token mismatch"), "{err}");

        // Matching token drains the sweep.
        let report = run_worker_jobs(
            addr,
            quick_config(),
            Duration::from_secs(5),
            1,
            Some("sweep-secret".into()),
        )
        .unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
    }

    #[test]
    fn tokenless_coordinator_rejects_token_waving_worker() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let serve = std::thread::spawn(move || coord.serve());
        let err = run_worker_jobs(
            addr,
            quick_config(),
            Duration::from_secs(5),
            1,
            Some("unexpected".into()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("auth token mismatch"), "{err}");
        run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        serve.join().unwrap().unwrap();
    }

    #[test]
    fn clean_leave_hands_back_lease_without_charging_the_cap() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let serve = std::thread::spawn(move || coord.serve());

        // A worker that takes a lease, is asked to stop, and departs via
        // `leave`: the cell goes back to the queue uncharged.
        let mut stream = connect_handshake(addr, &fingerprint);
        write_frame(&mut stream, &msg("request")).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&reply).unwrap(), "lease");
        write_frame(&mut stream, &msg("leave")).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&reply).unwrap(), "bye");
        drop(stream);

        // A worker whose stop flag is already set departs before leasing.
        let stopped = Arc::new(AtomicBool::new(true));
        let report = run_worker_with(
            addr,
            quick_config(),
            Duration::from_secs(5),
            WorkerOptions {
                jobs: 1,
                auth_token: None,
                stop: Some(Arc::clone(&stopped)),
            },
        )
        .unwrap();
        assert_eq!(report.completed, 0);

        let healthy = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(outcome.departed, 2, "both wind-downs were clean");
        assert_eq!(outcome.reissued, 0, "leave never charges the cap");
        assert_eq!(outcome.executed, outcome.planned);
        assert_eq!(healthy.completed, outcome.planned);
    }

    #[test]
    fn rebalance_steals_longest_held_lease_for_idle_workers() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_rebalance_after(Duration::from_millis(300)),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let serve = std::thread::spawn(move || coord.serve());

        // A slow worker: takes a lease and sits on it. Once the healthy
        // worker has drained the rest of the queue and idles, the
        // rebalancer must steal this lease (cutting the connection) so the
        // sweep finishes without waiting on the straggler.
        let slow = std::thread::spawn(move || {
            let mut stream = connect_handshake(addr, &fingerprint);
            write_frame(&mut stream, &msg("request")).unwrap();
            let reply = read_frame_opt(&mut stream).unwrap().unwrap();
            assert_eq!(msg_type(&reply).unwrap(), "lease");
            assert!(matches!(read_frame_opt(&mut stream), Ok(None) | Err(_)));
        });

        let report = run_worker(addr, quick_config(), Duration::from_secs(10)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        slow.join().unwrap();
        assert_eq!(outcome.executed, outcome.planned, "every cell ran");
        assert_eq!(report.completed, outcome.planned);
        assert!(outcome.rebalanced >= 1, "the straggler's lease was stolen");
        assert_eq!(outcome.reissued, 0, "rebalance never charges the cap");
    }

    #[test]
    fn resumed_result_lands_after_reconnect() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let serve = std::thread::spawn(move || coord.serve());

        // Session one: lease a cell, then lose the connection mid-cell.
        let mut stream = connect_handshake(addr, &fingerprint);
        write_frame(&mut stream, &msg("request")).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&reply).unwrap(), "lease");
        let cell = CellKey::from_json(reply.get("cell").unwrap()).unwrap();
        drop(stream);

        // Session two: the same logical worker reconnects and re-submits
        // the result it computed under the lost lease, flagged `resume`.
        // It must be accepted, not rejected as a forgery.
        let mut stream = connect_handshake(addr, &fingerprint);
        let mut result = msg("result");
        result.set("cell", cell.to_json());
        result.set("outcome", CellOutcome::Unsupported.to_json());
        result.set("resume", Json::Bool(true));
        write_frame(&mut stream, &result).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_ne!(
            msg_type(&reply).unwrap(),
            "reject",
            "resume-flagged result must settle: {reply:?}"
        );
        // Hand back whatever the reply leased so nothing is charged.
        if msg_type(&reply).unwrap() == "lease" {
            write_frame(&mut stream, &msg("leave")).unwrap();
            let bye = read_frame_opt(&mut stream).unwrap().unwrap();
            assert_eq!(msg_type(&bye).unwrap(), "bye");
        }
        drop(stream);

        run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(outcome.resumed, 1, "the reconnect resume was counted");
        assert_eq!(outcome.executed, outcome.planned, "no double counting");
    }

    #[test]
    fn status_snapshot_reports_sweep_state() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default().with_auth_token("sweep-secret"),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let planned = coord.plan.len();
        let serve = std::thread::spawn(move || coord.serve());

        // Status polls authenticate like workers...
        let err = fetch_status(addr, None, Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("auth token mismatch"), "{err}");
        // ...but skip the config fingerprint: monitoring needs no flags.
        let snap = fetch_status(addr, Some("sweep-secret"), Duration::from_secs(5)).unwrap();
        assert_eq!(
            snap.get("planned").and_then(Json::as_u64),
            Some(planned as u64)
        );
        assert_eq!(
            snap.get("pending").and_then(Json::as_u64),
            Some(planned as u64)
        );
        assert_eq!(snap.get("done").and_then(Json::as_u64), Some(0));
        assert_eq!(snap.get("workers").and_then(Json::as_u64), Some(0));
        assert!(snap.get("leases").and_then(Json::as_arr).is_some());
        assert!(snap.get("throughput").and_then(Json::as_arr).is_some());

        let report = run_worker_jobs(
            addr,
            quick_config(),
            Duration::from_secs(5),
            1,
            Some("sweep-secret".into()),
        )
        .unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
        assert_eq!(outcome.workers, 1, "the status poll is not a worker");
    }

    #[test]
    fn result_for_unleased_cell_is_a_protocol_error() {
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            quick_config(),
            &[FigureId::Fig1],
            SizeClass::Small,
            CoordOptions::default(),
        )
        .unwrap();
        let addr = coord.local_addr().unwrap();
        let fingerprint = config_fingerprint(coord.config());
        let forged = coord.plan[0].clone();
        let serve = std::thread::spawn(move || coord.serve());

        let mut stream = connect_handshake(addr, &fingerprint);
        let mut result = msg("result");
        result.set("cell", forged.to_json());
        result.set("outcome", CellOutcome::Unsupported.to_json());
        write_frame(&mut stream, &result).unwrap();
        let reply = read_frame_opt(&mut stream).unwrap().unwrap();
        assert_eq!(msg_type(&reply).unwrap(), "reject");
        drop(stream);

        // The forged outcome must not have entered the grid: a real worker
        // still executes every cell.
        let report = run_worker(addr, quick_config(), Duration::from_secs(5)).unwrap();
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(report.completed, outcome.planned);
    }
}
