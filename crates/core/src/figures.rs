//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each exhibit is described twice, deliberately:
//! - [`plan`] decomposes it into independent [`CellKey`] work units in a
//!   fixed order (what the scheduler executes, serially or sharded);
//! - [`render`] turns a [`ReportGrid`] of cell outcomes back into the
//!   paper's rows/series as a **pure function of the grid**.
//!
//! Because rendering never looks at how or where cells ran, the sharded
//! scheduler's output is byte-identical to the serial path's. The classic
//! `figure1(&harness)`-style wrappers below run their own plan serially
//! and render it — same code path, one cell in flight.
//!
//! Figures 1–4 come out as text tables (rows = x-axis, columns = systems);
//! Figure 5 and Table 1 compare SciDB against the modeled Xeon Phi
//! configuration.

use crate::engine::Engine;
use crate::engines;
use crate::harness::Harness;
use crate::query::Query;
use crate::sched::{run_cells_serial, CellKey, CellOutcome, FigureId, ReportGrid};
use genbase_accel::{Coprocessor, OpProfile};
use genbase_datagen::SizeClass;
use genbase_util::table::{Align, TextTable};
use genbase_util::{fmt_secs, Error, Result};

/// A rendered figure: a title plus one or more captioned tables.
#[derive(Debug)]
pub struct Figure {
    /// Figure title (matches the paper).
    pub title: String,
    /// `(caption, table)` pairs.
    pub tables: Vec<(String, TextTable)>,
}

impl Figure {
    /// Render to plain text.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} ===\n", self.title);
        for (caption, table) in &self.tables {
            out.push_str(&format!("\n--- {caption} ---\n"));
            out.push_str(&table.render());
        }
        out
    }
}

/// The four queries Figure 5 / Table 1 cover (regression offload was
/// unsupported in the paper's MKL release).
pub const PHI_QUERIES: [Query; 4] = [
    Query::Biclustering,
    Query::Svd,
    Query::Covariance,
    Query::Statistics,
];

/// Table 1's row order.
const TABLE1_QUERIES: [Query; 4] = [
    Query::Covariance,
    Query::Svd,
    Query::Statistics,
    Query::Biclustering,
];

fn cell(
    figure: FigureId,
    query: Query,
    size: SizeClass,
    nodes: usize,
    engine: &dyn Engine,
) -> CellKey {
    CellKey {
        figure,
        query,
        size,
        nodes,
        engine: engine.name().to_string(),
    }
}

/// Decompose one exhibit into its cell list, in the serial harness's
/// historical execution order. `mn_size` selects the dataset for the
/// multi-node exhibits (fig3/fig4/table1).
pub fn plan(
    figure: FigureId,
    cfg: &crate::harness::HarnessConfig,
    mn_size: SizeClass,
) -> Vec<CellKey> {
    let mut cells = Vec::new();
    match figure {
        FigureId::Fig1 => {
            let engines = engines::single_node_engines();
            for query in Query::ALL {
                for &size in &cfg.sizes {
                    for engine in &engines {
                        cells.push(cell(figure, query, size, 1, engine.as_ref()));
                    }
                }
            }
        }
        FigureId::Fig2 => {
            let engines = engines::single_node_engines();
            for &size in &cfg.sizes {
                for engine in &engines {
                    cells.push(cell(figure, Query::Regression, size, 1, engine.as_ref()));
                }
            }
        }
        FigureId::Fig3 => {
            let engines = engines::multi_node_engines();
            for query in Query::ALL {
                for &nodes in &cfg.node_counts {
                    for engine in &engines {
                        cells.push(cell(figure, query, mn_size, nodes, engine.as_ref()));
                    }
                }
            }
        }
        FigureId::Fig4 => {
            let engines = engines::multi_node_engines();
            for &nodes in &cfg.node_counts {
                for engine in &engines {
                    cells.push(cell(
                        figure,
                        Query::Regression,
                        mn_size,
                        nodes,
                        engine.as_ref(),
                    ));
                }
            }
        }
        FigureId::Fig5 => {
            let scidb = engines::SciDb::new();
            let phi = engines::SciDbPhi::new();
            for query in PHI_QUERIES {
                for &size in &cfg.sizes {
                    cells.push(cell(figure, query, size, 1, &scidb));
                    cells.push(cell(figure, query, size, 1, &phi));
                }
            }
        }
        FigureId::Table1 => {
            let scidb = engines::SciDb::new();
            for query in TABLE1_QUERIES {
                for &nodes in &cfg.node_counts {
                    cells.push(cell(figure, query, mn_size, nodes, &scidb));
                }
            }
        }
    }
    cells
}

/// Render one exhibit from a grid of cell outcomes. Every cell the exhibit
/// plans must be present (a missing cell — e.g. rendering a partial shard —
/// is an error naming the gap).
pub fn render(
    figure: FigureId,
    harness: &Harness,
    mn_size: SizeClass,
    grid: &ReportGrid,
) -> Result<Figure> {
    match figure {
        FigureId::Fig1 => render_fig1(harness, grid),
        FigureId::Fig2 => render_fig2(harness, grid),
        FigureId::Fig3 => render_fig3(harness, mn_size, grid),
        FigureId::Fig4 => render_fig4(harness, mn_size, grid),
        FigureId::Fig5 => render_fig5(harness, grid),
        FigureId::Table1 => render_table1(harness, mn_size, grid),
    }
}

fn lookup<'g>(grid: &'g ReportGrid, key: &CellKey) -> Result<&'g CellOutcome> {
    grid.get(key)
        .ok_or_else(|| Error::invalid(format!("grid missing cell {}", key.id())))
}

fn outcome_columns(engines: &[Box<dyn Engine>]) -> Vec<(String, Align)> {
    let mut cols = vec![("dataset".to_string(), Align::Left)];
    cols.extend(engines.iter().map(|e| (e.name().to_string(), Align::Right)));
    cols
}

fn table_with_columns(cols: &[(String, Align)]) -> TextTable {
    let refs: Vec<(&str, Align)> = cols.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    TextTable::new(&refs)
}

fn node_columns(engines: &[Box<dyn Engine>]) -> Vec<(String, Align)> {
    let mut cols = vec![("nodes".to_string(), Align::Left)];
    cols.extend(engines.iter().map(|e| (e.name().to_string(), Align::Right)));
    cols
}

/// Phase-split cell text pair (dm, an) — "inf"/"-" for failures.
fn phase_cells(outcome: &CellOutcome) -> (String, String) {
    match outcome {
        CellOutcome::Completed { dm, an, .. } => {
            (fmt_secs(dm.total_secs()), fmt_secs(an.total_secs()))
        }
        CellOutcome::Infinite { .. } => ("inf".into(), "inf".into()),
        CellOutcome::Unsupported => ("-".into(), "-".into()),
    }
}

/// Figure 1: overall performance of the single-node systems — one table per
/// query, rows = dataset sizes, columns = systems.
fn render_fig1(harness: &Harness, grid: &ReportGrid) -> Result<Figure> {
    let engines = engines::single_node_engines();
    let cols = outcome_columns(&engines);
    let mut tables = Vec::new();
    for query in Query::ALL {
        let mut table = table_with_columns(&cols);
        for &size in &harness.config().sizes {
            let mut row = vec![size.label().to_string()];
            for engine in &engines {
                let key = cell(FigureId::Fig1, query, size, 1, engine.as_ref());
                row.push(lookup(grid, &key)?.cell());
            }
            table.row(row);
        }
        tables.push((format!("{} Query Performance", query.title()), table));
    }
    Ok(Figure {
        title: "Figure 1: Overall performance of the various systems".into(),
        tables,
    })
}

/// Figure 2: data-management and analytics breakdown for the regression
/// query across the single-node systems.
fn render_fig2(harness: &Harness, grid: &ReportGrid) -> Result<Figure> {
    let engines = engines::single_node_engines();
    let cols = outcome_columns(&engines);
    let mut dm_table = table_with_columns(&cols);
    let mut an_table = table_with_columns(&cols);
    for &size in &harness.config().sizes {
        let mut dm_row = vec![size.label().to_string()];
        let mut an_row = vec![size.label().to_string()];
        for engine in &engines {
            let key = cell(FigureId::Fig2, Query::Regression, size, 1, engine.as_ref());
            let (dm, an) = phase_cells(lookup(grid, &key)?);
            dm_row.push(dm);
            an_row.push(an);
        }
        dm_table.row(dm_row);
        an_table.row(an_row);
    }
    Ok(Figure {
        title: "Figure 2: Data management and analytics performance (regression)".into(),
        tables: vec![
            (
                "Linear Regression Data Management Performance".into(),
                dm_table,
            ),
            ("Linear Regression Analytics Performance".into(), an_table),
        ],
    })
}

/// Figure 3: multi-node overall performance on the large dataset — one
/// table per query, rows = node counts, columns = systems.
fn render_fig3(harness: &Harness, size: SizeClass, grid: &ReportGrid) -> Result<Figure> {
    let engines = engines::multi_node_engines();
    let cols = node_columns(&engines);
    let mut tables = Vec::new();
    for query in Query::ALL {
        let mut table = table_with_columns(&cols);
        for &nodes in &harness.config().node_counts {
            let mut row = vec![nodes.to_string()];
            for engine in &engines {
                let key = cell(FigureId::Fig3, query, size, nodes, engine.as_ref());
                row.push(lookup(grid, &key)?.cell());
            }
            table.row(row);
        }
        tables.push((
            format!(
                "{} Query Performance, {} Dataset",
                query.title(),
                size.label()
            ),
            table,
        ));
    }
    Ok(Figure {
        title: "Figure 3: Overall performance, varying number of nodes".into(),
        tables,
    })
}

/// Figure 4: multi-node regression breakdown on the large dataset.
fn render_fig4(harness: &Harness, size: SizeClass, grid: &ReportGrid) -> Result<Figure> {
    let engines = engines::multi_node_engines();
    let cols = node_columns(&engines);
    let mut dm_table = table_with_columns(&cols);
    let mut an_table = table_with_columns(&cols);
    for &nodes in &harness.config().node_counts {
        let mut dm_row = vec![nodes.to_string()];
        let mut an_row = vec![nodes.to_string()];
        for engine in &engines {
            let key = cell(
                FigureId::Fig4,
                Query::Regression,
                size,
                nodes,
                engine.as_ref(),
            );
            let (dm, an) = phase_cells(lookup(grid, &key)?);
            dm_row.push(dm);
            an_row.push(an);
        }
        dm_table.row(dm_row);
        an_table.row(an_row);
    }
    Ok(Figure {
        title: format!(
            "Figure 4: Multi-node regression breakdown, {} dataset",
            size.label()
        ),
        tables: vec![
            (
                "Linear Regression Data Management Performance".into(),
                dm_table,
            ),
            ("Linear Regression Analytics Performance".into(), an_table),
        ],
    })
}

/// Figure 5: SciDB vs SciDB + Xeon Phi across dataset sizes, one table per
/// accelerable query.
fn render_fig5(harness: &Harness, grid: &ReportGrid) -> Result<Figure> {
    let scidb = engines::SciDb::new();
    let phi = engines::SciDbPhi::new();
    let mut tables = Vec::new();
    for query in PHI_QUERIES {
        let mut table = TextTable::new(&[
            ("dataset", Align::Left),
            ("SciDB", Align::Right),
            ("SciDB + Xeon Phi", Align::Right),
        ]);
        for &size in &harness.config().sizes {
            let base = lookup(grid, &cell(FigureId::Fig5, query, size, 1, &scidb))?;
            let accel = lookup(grid, &cell(FigureId::Fig5, query, size, 1, &phi))?;
            table.row(vec![size.label().to_string(), base.cell(), accel.cell()]);
        }
        tables.push((
            format!(
                "{} Query Performance, SciDB v. SciDB + Xeon Phi",
                query.title()
            ),
            table,
        ));
    }
    Ok(Figure {
        title: "Figure 5: SciDB and SciDB + Intel Xeon Phi coprocessor".into(),
        tables,
    })
}

/// Table 1: analytics speedup of the Phi-based system versus the Xeon
/// system, per benchmark and node count, on the large dataset.
///
/// Multi-node speedups are derived the same way the single-node engine
/// derives them: each node's measured analytics time is scaled through the
/// roofline model for its share of the data (per-node transfer overhead and
/// the unchanged network time shrink the speedup as nodes grow — the
/// paper's observed pattern).
fn render_table1(harness: &Harness, size: SizeClass, grid: &ReportGrid) -> Result<Figure> {
    let co = Coprocessor::phi_on_e5();
    let scidb = engines::SciDb::new();
    let data = harness.dataset(size)?;
    let params = harness.params(size)?;
    let mut cols = vec![("benchmark".to_string(), Align::Left)];
    for &nodes in &harness.config().node_counts {
        cols.push((
            format!("{nodes} node{}", if nodes == 1 { "" } else { "s" }),
            Align::Right,
        ));
    }
    let mut table = table_with_columns(&cols);
    for query in TABLE1_QUERIES {
        let mut row = vec![query.title().to_string()];
        for &nodes in &harness.config().node_counts {
            let key = cell(FigureId::Table1, query, size, nodes, &scidb);
            let Some(phases) = lookup(grid, &key)?.phases() else {
                row.push("-".into());
                continue;
            };
            let an = &phases.analytics;
            // Per-node share of the analytics workload.
            let m = data.n_patients() / nodes;
            let profile = match query {
                Query::Covariance => {
                    let sel = data
                        .patients
                        .iter()
                        .filter(|p| p.disease_id == params.disease_id)
                        .count();
                    OpProfile::covariance((sel / nodes).max(2), data.n_genes())
                }
                Query::Svd => {
                    let sel = data
                        .genes
                        .iter()
                        .filter(|g| g.function < params.function_threshold)
                        .count();
                    OpProfile::svd_lanczos(m.max(2), sel.max(2), params.svd_k.min(sel.max(2)))
                }
                Query::Statistics => OpProfile::statistics(
                    params.sample_count(data.n_patients()) / nodes.max(1) + 1,
                    data.n_genes(),
                    data.ontology.n_terms(),
                ),
                Query::Biclustering => {
                    let sel = data
                        .patients
                        .iter()
                        .filter(|p| p.gender == params.gender && p.age < params.max_age)
                        .count();
                    OpProfile::biclustering((sel / nodes).max(2), data.n_genes(), 40)
                }
                Query::Regression => unreachable!("not in PHI set"),
            };
            let host_total = an.total_secs();
            // Device time: compute scaled through the model; the network
            // component of multi-node analytics is unchanged by the Phi.
            let phi_total = co.scale_measured(an.wall_secs, &profile) + an.sim_secs;
            let speedup = if phi_total > 0.0 {
                host_total / phi_total
            } else {
                1.0
            };
            row.push(format!("{speedup:.2}"));
        }
        table.row(row);
    }
    Ok(Figure {
        title: format!(
            "Table 1: Analytics speedup of the Xeon Phi system vs the Xeon system ({})",
            size.label()
        ),
        tables: vec![("SciDB + ScaLAPACK".into(), table)],
    })
}

/// Plan one exhibit, run it serially (one cell at a time, full thread
/// budget each — the classic path), and render.
fn run_serial_and_render(
    harness: &Harness,
    figure: FigureId,
    mn_size: SizeClass,
) -> Result<Figure> {
    let cells = plan(figure, harness.config(), mn_size);
    let grid = run_cells_serial(harness, &engines::all_engines(), &cells)?;
    render(figure, harness, mn_size, &grid)
}

/// Figure 1 via the serial path (see [`render`] for the grid-based form).
pub fn figure1(harness: &Harness) -> Result<Figure> {
    run_serial_and_render(harness, FigureId::Fig1, SizeClass::Small)
}

/// Figure 2 via the serial path.
pub fn figure2(harness: &Harness) -> Result<Figure> {
    run_serial_and_render(harness, FigureId::Fig2, SizeClass::Small)
}

/// Figure 3 via the serial path, on the `size` dataset.
pub fn figure3(harness: &Harness, size: SizeClass) -> Result<Figure> {
    run_serial_and_render(harness, FigureId::Fig3, size)
}

/// Figure 4 via the serial path, on the `size` dataset.
pub fn figure4(harness: &Harness, size: SizeClass) -> Result<Figure> {
    run_serial_and_render(harness, FigureId::Fig4, size)
}

/// Figure 5 via the serial path.
pub fn figure5(harness: &Harness) -> Result<Figure> {
    run_serial_and_render(harness, FigureId::Fig5, SizeClass::Small)
}

/// Table 1 via the serial path, on the `size` dataset.
pub fn table1(harness: &Harness, size: SizeClass) -> Result<Figure> {
    run_serial_and_render(harness, FigureId::Table1, size)
}

/// Per-operator cost breakdown ("explain") for engine × query pairs: each
/// pair runs once on the `size` dataset over `nodes` simulated nodes, and
/// its plan trace renders as a table of physical operators with per-op
/// costs — the finer-grained decomposition of the Figure 2/4 bars, since
/// each phase is exactly the sum of its trace entries.
///
/// `engine_filter` / `query_filter` narrow the matrix (case-insensitive
/// engine-name match); `None` runs every pair. Unsupported pairs render as
/// a note instead of a table, mirroring the paper's missing bars.
pub fn explain(
    harness: &Harness,
    size: SizeClass,
    nodes: usize,
    engine_filter: Option<&str>,
    query_filter: Option<Query>,
) -> Result<Figure> {
    let mut tables = Vec::new();
    for (engine, query, rec) in explain_matrix(harness, size, nodes, engine_filter, query_filter)? {
        let caption = format!("{engine} / {}", query.title());
        let table = match &rec.outcome {
            crate::report::RunOutcome::Completed(report) => report.trace.table(),
            crate::report::RunOutcome::Infinite { reason } => {
                let mut t = TextTable::new(&[("outcome", Align::Left)]);
                t.row(vec![format!("infinite: {reason}")]);
                t
            }
            crate::report::RunOutcome::Unsupported => {
                let mut t = TextTable::new(&[("outcome", Align::Left)]);
                t.row(vec!["unsupported (no bar in the paper)".to_string()]);
                t
            }
        };
        tables.push((caption, table));
    }
    Ok(Figure {
        title: format!(
            "Explain: per-operator plan cost, {} dataset, {nodes} node{}",
            size.label(),
            if nodes == 1 { "" } else { "s" }
        ),
        tables,
    })
}

/// Machine-readable `explain` (the CLI's `explain --json`): the same
/// engine × query matrix as [`explain`], serialized through the shared
/// [`genbase_util::Json`] writer with the per-op memory columns and the
/// whole-run memory rollup. Deterministic under `--sim-only --threads N`
/// (pinned by the committed `tests/golden/explain_small.json`).
pub fn explain_json(
    harness: &Harness,
    size: SizeClass,
    nodes: usize,
    engine_filter: Option<&str>,
    query_filter: Option<Query>,
) -> Result<String> {
    use genbase_util::Json;
    let mut pairs = Vec::new();
    for (engine, query, rec) in explain_matrix(harness, size, nodes, engine_filter, query_filter)? {
        let mut pair = Json::obj();
        pair.set("engine", Json::from(engine.as_str()));
        pair.set("query", Json::from(query.name()));
        match &rec.outcome {
            crate::report::RunOutcome::Completed(report) => {
                pair.set("status", Json::from("completed"));
                let mem = report.memory();
                let mut rollup = Json::obj();
                rollup.set("bytes_in", Json::from(mem.bytes_in));
                rollup.set("bytes_out", Json::from(mem.bytes_out));
                rollup.set("peak_alloc", Json::from(mem.peak_alloc_bytes));
                rollup.set("rows", Json::from(mem.rows_materialized));
                pair.set("memory", rollup);
                pair.set(
                    "ops",
                    Json::Arr(
                        report
                            .trace
                            .ops
                            .iter()
                            .map(crate::plan::OpTrace::to_json)
                            .collect(),
                    ),
                );
            }
            crate::report::RunOutcome::Infinite { reason } => {
                pair.set("status", Json::from("infinite"));
                pair.set("reason", Json::from(reason.as_str()));
            }
            crate::report::RunOutcome::Unsupported => {
                pair.set("status", Json::from("unsupported"));
            }
        }
        pairs.push(pair);
    }
    let mut doc = Json::obj();
    doc.set("schema", Json::from("genbase-explain-v1"));
    doc.set("size", Json::from(size.slug()));
    doc.set("nodes", Json::from(nodes));
    doc.set("pairs", Json::Arr(pairs));
    Ok(doc.render())
}

/// Shared engine×query matrix runner behind [`explain`] / [`explain_json`].
fn explain_matrix(
    harness: &Harness,
    size: SizeClass,
    nodes: usize,
    engine_filter: Option<&str>,
    query_filter: Option<Query>,
) -> Result<Vec<(String, Query, crate::harness::RunRecord)>> {
    let engines: Vec<Box<dyn Engine>> = engines::all_engines()
        .into_iter()
        .filter(|e| match engine_filter {
            Some(name) => e.name().eq_ignore_ascii_case(name),
            None => true,
        })
        .collect();
    if engines.is_empty() {
        return Err(Error::invalid(format!(
            "no engine matches {engine_filter:?} (names: {})",
            engines::all_engines()
                .iter()
                .map(|e| format!("{:?}", e.name()))
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }
    let queries: Vec<Query> = match query_filter {
        Some(q) => vec![q],
        None => Query::ALL.to_vec(),
    };
    let mut out = Vec::new();
    for engine in &engines {
        for &query in &queries {
            let rec = harness.run_cell(engine.as_ref(), query, size, nodes)?;
            out.push((engine.name().to_string(), query, rec));
        }
    }
    Ok(out)
}

/// Stacked per-operator breakdown of Figure 2 or Figure 4: the same grid
/// cells, but each engine's data-management/analytics bar decomposed by
/// physical operator class (filter/join/restructure/export/group-agg/
/// marshal/analytics), with a second table showing storage-layer bytes
/// moved per class — the paper's headline cost, rendered from the traces
/// the grid already carries.
pub fn render_per_op(
    figure: FigureId,
    harness: &Harness,
    mn_size: SizeClass,
    grid: &ReportGrid,
) -> Result<Figure> {
    use crate::plan::OpKind;
    const KINDS: [OpKind; 7] = [
        OpKind::Filter,
        OpKind::Join,
        OpKind::Restructure,
        OpKind::Export,
        OpKind::GroupAgg,
        OpKind::Marshal,
        OpKind::Analytics,
    ];
    let (engines, title) = match figure {
        FigureId::Fig2 => (
            engines::single_node_engines(),
            "Figure 2 (per-op): regression cost by physical operator".to_string(),
        ),
        FigureId::Fig4 => (
            engines::multi_node_engines(),
            format!(
                "Figure 4 (per-op): multi-node regression cost by physical operator, {} dataset",
                mn_size.label()
            ),
        ),
        other => {
            return Err(Error::invalid(format!(
                "--per-op renders fig2 or fig4, not {}",
                other.name()
            )))
        }
    };
    let mut cols = vec![("op".to_string(), Align::Left)];
    cols.extend(engines.iter().map(|e| (e.name().to_string(), Align::Right)));
    let mut tables = Vec::new();
    let row_keys: Vec<(SizeClass, usize, String)> = match figure {
        FigureId::Fig2 => harness
            .config()
            .sizes
            .iter()
            .map(|&s| (s, 1, format!("{} dataset", s.label())))
            .collect(),
        _ => harness
            .config()
            .node_counts
            .iter()
            .map(|&n| {
                (
                    mn_size,
                    n,
                    format!("{n} node{}", if n == 1 { "" } else { "s" }),
                )
            })
            .collect(),
    };
    for (size, nodes, caption) in row_keys {
        let mut time_table = table_with_columns(&cols);
        let mut bytes_table = table_with_columns(&cols);
        for kind in KINDS {
            let mut time_row = vec![kind.name().to_string()];
            let mut bytes_row = vec![kind.name().to_string()];
            for engine in &engines {
                let key = cell(figure, Query::Regression, size, nodes, engine.as_ref());
                match lookup(grid, &key)? {
                    CellOutcome::Completed { trace, .. } => {
                        let ops = trace.iter().filter(|op| op.kind == kind);
                        let (mut secs, mut bytes) = (0.0f64, 0u64);
                        for op in ops {
                            secs += op.cost.total_secs();
                            bytes += op.cost.bytes_moved();
                        }
                        time_row.push(fmt_secs(secs));
                        bytes_row.push(genbase_util::fmt_bytes(bytes));
                    }
                    CellOutcome::Infinite { .. } => {
                        time_row.push("inf".into());
                        bytes_row.push("inf".into());
                    }
                    CellOutcome::Unsupported => {
                        time_row.push("-".into());
                        bytes_row.push("-".into());
                    }
                }
            }
            time_table.row(time_row);
            bytes_table.row(bytes_row);
        }
        tables.push((format!("{caption}: seconds per operator class"), time_table));
        tables.push((
            format!("{caption}: storage-layer bytes moved per operator class"),
            bytes_table,
        ));
    }
    Ok(Figure { title, tables })
}

/// Weak-scaling experiment — the paper's stated future work ("in reality,
/// the genomics data should scale in size with the number of nodes in the
/// cluster (weak scaling). We intend to run our benchmarks on larger scale
/// clusters using weak scaling"). Each node count runs against a dataset
/// whose patient dimension grows proportionally, so per-node data stays
/// constant; an ideal system would hold total time flat.
pub fn weak_scaling(
    base_genes: usize,
    base_patients: usize,
    node_counts: &[usize],
    query: Query,
) -> Result<Figure> {
    use genbase_datagen::{generate, GeneratorConfig, SizeSpec};
    let engines = engines::multi_node_engines();
    let cols = node_columns(&engines);
    let mut table = table_with_columns(&cols);
    for &nodes in node_counts {
        let spec = SizeSpec::custom(base_genes, base_patients * nodes, (base_genes / 12).max(8));
        let data = generate(&GeneratorConfig::new(spec))?;
        let params = crate::query::QueryParams::for_dataset(&data);
        let ctx = crate::engine::ExecContext::multi_node(nodes);
        let mut row = vec![format!(
            "{nodes} ({}x{} total)",
            base_genes,
            base_patients * nodes
        )];
        for engine in &engines {
            if !engine.supports(query) {
                row.push("-".into());
                continue;
            }
            match engine.run(query, &data, &params, &ctx) {
                Ok(report) => row.push(fmt_secs(report.phases.total_secs())),
                Err(e) if e.is_infinite_result() => row.push("inf".into()),
                Err(e) => return Err(e),
            }
        }
        table.row(row);
    }
    Ok(Figure {
        title: format!(
            "Weak scaling (paper future work): {} query, {base_patients} patients/node",
            query.title()
        ),
        tables: vec![("constant per-node data".into(), table)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::HarnessConfig;
    use std::time::Duration;

    fn micro_harness() -> Harness {
        let cfg = HarnessConfig {
            scale: 0.012,
            sizes: vec![SizeClass::Small],
            cutoff: Duration::from_secs(60),
            r_mem_bytes: u64::MAX,
            node_counts: vec![1, 2],
            ..HarnessConfig::quick()
        };
        Harness::new(cfg).unwrap()
    }

    #[test]
    fn figure5_and_table1_render() {
        let h = micro_harness();
        let f5 = figure5(&h).unwrap();
        assert_eq!(f5.tables.len(), 4);
        let rendered = f5.render();
        assert!(rendered.contains("SciDB + Xeon Phi"));
        let t1 = table1(&h, SizeClass::Small).unwrap();
        let rendered = t1.render();
        assert!(rendered.contains("Covariance"));
        assert!(rendered.contains("Biclustering"));
    }

    #[test]
    fn weak_scaling_renders() {
        let fig = weak_scaling(48, 40, &[1, 2], Query::Regression).unwrap();
        let rendered = fig.render();
        assert!(rendered.contains("Weak scaling"));
        assert!(rendered.contains("pbdR"));
    }

    #[test]
    fn figure2_renders_both_phases() {
        let h = micro_harness();
        let f2 = figure2(&h).unwrap();
        assert_eq!(f2.tables.len(), 2);
        let rendered = f2.render();
        assert!(rendered.contains("Data Management"));
        assert!(rendered.contains("Analytics"));
    }

    #[test]
    fn plans_have_expected_shapes() {
        let cfg = HarnessConfig {
            sizes: vec![SizeClass::Small, SizeClass::Medium],
            node_counts: vec![1, 2],
            ..HarnessConfig::quick()
        };
        // 5 queries x 2 sizes x 7 engines.
        assert_eq!(plan(FigureId::Fig1, &cfg, SizeClass::Small).len(), 70);
        // 2 sizes x 7 engines.
        assert_eq!(plan(FigureId::Fig2, &cfg, SizeClass::Small).len(), 14);
        // 5 queries x 2 node counts x 5 engines.
        assert_eq!(plan(FigureId::Fig3, &cfg, SizeClass::Small).len(), 50);
        // 2 node counts x 5 engines.
        assert_eq!(plan(FigureId::Fig4, &cfg, SizeClass::Small).len(), 10);
        // 4 queries x 2 sizes x 2 engines.
        assert_eq!(plan(FigureId::Fig5, &cfg, SizeClass::Small).len(), 16);
        // 4 queries x 2 node counts.
        assert_eq!(plan(FigureId::Table1, &cfg, SizeClass::Small).len(), 8);
        // Plans are deterministic and duplicate-free.
        let cells = plan(FigureId::Fig1, &cfg, SizeClass::Small);
        assert_eq!(cells, plan(FigureId::Fig1, &cfg, SizeClass::Small));
        let mut ids: Vec<String> = cells.iter().map(CellKey::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn explain_renders_per_op_tables() {
        let h = micro_harness();
        let fig = explain(&h, SizeClass::Small, 1, None, None).unwrap();
        assert_eq!(fig.tables.len(), engines::all_engines().len() * 5);
        let text = fig.render();
        assert!(text.contains("physical step"));
        assert!(text.contains("unsupported"), "Hadoop SVD renders as a note");
        // Filters narrow the matrix; engine match is case-insensitive.
        let one = explain(&h, SizeClass::Small, 1, Some("scidb"), Some(Query::Svd)).unwrap();
        assert_eq!(one.tables.len(), 1);
        assert!(one.tables[0].0.contains("SciDB"));
        assert!(explain(&h, SizeClass::Small, 1, Some("no such engine"), None).is_err());
    }

    #[test]
    fn render_fails_cleanly_on_missing_cells() {
        let h = micro_harness();
        let empty = ReportGrid::default();
        let err = render(FigureId::Fig1, &h, SizeClass::Small, &empty).unwrap_err();
        assert!(err.to_string().contains("missing cell"));
    }
}
